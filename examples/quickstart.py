#!/usr/bin/env python3
"""Quickstart: build a synthetic Web-PKI study and reproduce the paper's
headline findings in under a minute.

Run:  python examples/quickstart.py [scale]

The study is fully deterministic; `scale` (default 0.002) controls the
corpus size relative to the paper's 5.07 M-certificate Leaf Set.
"""

import sys

from repro import MeasurementStudy


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"Building the synthetic ecosystem at scale={scale} ...")
    study = MeasurementStudy(scale=scale)
    eco = study.ecosystem
    end = study.calibration.measurement_end
    print(
        f"  {len(eco.leaves):,} leaf certificates, "
        f"{len(eco.intermediates)} intermediates, {len(eco.crls)} CRLs\n"
    )

    # -- Finding 1 (§4): a surprisingly large fraction is revoked --------
    fresh = eco.fresh_leaves(end)
    alive = eco.alive_leaves(end)
    fresh_revoked = sum(1 for l in fresh if l.is_revoked_by(end)) / len(fresh)
    alive_revoked = sum(1 for l in alive if l.is_revoked_by(end)) / len(alive)
    print("Finding 1 -- website administrators (paper §4):")
    print(f"  fresh certificates revoked:  {fresh_revoked:.1%}   (paper: >8%)")
    print(f"  alive certificates revoked:  {alive_revoked:.2%}   (paper: ~0.6%)")

    # -- Finding 2 (§5): CRLs are expensive for clients ------------------
    from repro.core.stats import weighted_cdf

    sizes = study.crl_sizes()
    crls = {c.url: c for c in eco.crls}
    weighted = weighted_cdf((sizes[u], crls[u].assigned_cert_count) for u in sizes)
    print("\nFinding 2 -- CAs (paper §5):")
    print(
        f"  median certificate's CRL: {weighted.median / 1024:.0f} KB "
        f"(paper: 51 KB); largest: {max(sizes.values()) / 2**20:.0f} MB "
        f"(paper: 76 MB)"
    )

    # -- Finding 3 (§4.3): OCSP Stapling is rare -------------------------
    stapling = study.stapling_summary
    print("\nFinding 3 -- OCSP Stapling (paper §4.3):")
    print(
        f"  servers supporting stapling: {stapling.server_fraction:.1%} "
        f"(paper: 2.6%)"
    )

    # -- Finding 4 (§7): CRLSets barely help -----------------------------
    coverage = study.crlset_coverage()
    print("\nFinding 4 -- CRLSets (paper §7):")
    print(
        f"  revocations covered by the CRLSet: "
        f"{coverage.coverage_fraction:.2%} (paper: 0.35%)"
    )

    # -- And the full Figure 2, regenerated ------------------------------
    from repro import run_experiment

    print()
    print(run_experiment("fig2", study).render())


if __name__ == "__main__":
    main()
