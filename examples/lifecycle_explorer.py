#!/usr/bin/env python3
"""Lifecycle explorer: the paper's Figure 1, over real corpus data.

Classifies every Leaf Set certificate into Figure 1's shapes (typical,
revoked-then-retired, revoked-but-still-advertised, expired-but-still-
advertised, and the fully atypical revoked+expired+alive case), then
draws an actual example of each shape as an ASCII timeline.

Run:  python examples/lifecycle_explorer.py
"""

from repro import MeasurementStudy
from repro.core.lifecycle import (
    LifecycleShape,
    classify,
    lifecycle_census,
    render_lifecycle,
)
from repro.core.report import format_table


def main() -> None:
    study = MeasurementStudy(scale=0.002)
    eco = study.ecosystem
    end = study.calibration.measurement_end

    census = lifecycle_census(eco, end)
    total = sum(census.values())
    print(f"Figure 1 shapes across {total:,} certificates on {end}:\n")
    print(
        format_table(
            ["shape", "certificates", "fraction"],
            [
                (shape.value, count, f"{count / total:.2%}")
                for shape, count in census.most_common()
            ],
        )
    )
    print(
        "\nThe 'revoked but still advertised' population is the paper's §4.1\n"
        "surprise: the administrator went to the trouble of revoking, then\n"
        "kept serving the certificate (e.g. vpn.trade.gov).  The fully\n"
        "atypical shape matches gamespace.adobe.com: revoked AND expired,\n"
        "yet still being served.\n"
    )

    # Draw one real example of each interesting shape.
    wanted = [
        LifecycleShape.TYPICAL,
        LifecycleShape.REVOKED_RETIRED,
        LifecycleShape.REVOKED_STILL_ADVERTISED,
        LifecycleShape.ATYPICAL,
    ]
    for shape in wanted:
        example = next(
            (leaf for leaf in eco.leaves if classify(leaf, end) is shape), None
        )
        if example is None:
            continue
        print(f"--- {shape.value} (cert {example.cert_id}, {example.brand}) ---")
        print(render_lifecycle(example))
        print()


if __name__ == "__main__":
    main()
