#!/usr/bin/env python3
"""CRL bandwidth planner: a CA-operator's what-if tool built on the library.

Given an expected certificate population and revocation rate, compares the
client-side cost of the dissemination options the paper analyses in §5/§9:

* one monolithic CRL,
* sharded CRLs (the GoDaddy approach; sweep of shard counts),
* plain OCSP,
* OCSP Stapling (amortised to ~zero client fetches).

Costs are computed from real DER encodings and the simulated link model,
for both a broadband and a mobile client profile.

Run:  python examples/crl_bandwidth_planner.py [certs] [revoked_fraction]
"""

import datetime
import sys

from repro.ca.crl_publisher import CrlPublisher
from repro.core.report import format_bytes, format_table
from repro.net.transport import LinkProfile
from repro.pki.keys import KeyPair
from repro.pki.name import Name

NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=datetime.timezone.utc)
OCSP_RESPONSE_BYTES = 450  # measured from repro.revocation.ocsp encodings


def shard_cost(certs: int, revoked: int, shards: int) -> int:
    """Bytes a client downloads to check one certificate (its shard)."""
    publisher = CrlPublisher(
        Name.make("Planner CA"),
        KeyPair.generate("planner"),
        "http://crl.planner.example",
        shard_count=shards,
    )
    step = max(1, certs // revoked) if revoked else certs + 1
    for serial in range(certs):
        publisher.assign(serial)
        if revoked and serial % step == 0:
            publisher.record_revocation(
                serial, NOW, None, NOW + datetime.timedelta(days=365)
            )
    sizes = [crl.encoded_size for crl in publisher.encode_all(NOW)]
    return max(sizes)


def main() -> None:
    certs = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    revoked_fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.08
    revoked = int(certs * revoked_fraction)
    print(
        f"Planning for {certs:,} issued certificates, "
        f"{revoked:,} revoked ({revoked_fraction:.0%}, the paper's steady state)\n"
    )

    broadband = LinkProfile()
    mobile = LinkProfile.mobile()

    options: list[tuple[str, int]] = [("single CRL", shard_cost(certs, revoked, 1))]
    for shards in (8, 32, 128):
        options.append((f"{shards} CRL shards", shard_cost(certs, revoked, shards)))
    options.append(("OCSP query", OCSP_RESPONSE_BYTES))
    options.append(("OCSP staple (amortised)", 0))

    rows = []
    for label, nbytes in options:
        rows.append(
            (
                label,
                format_bytes(nbytes),
                f"{broadband.transfer_time(nbytes).total_seconds() * 1000:.0f} ms",
                f"{mobile.transfer_time(nbytes).total_seconds() * 1000:.0f} ms",
            )
        )
    print(
        format_table(
            ["option", "bytes/check", "broadband latency", "mobile latency"],
            rows,
            title="client cost to check ONE certificate's revocation status",
        )
    )
    print(
        "\nTakeaways (paper §5.3/§9): sharding divides CRL cost almost\n"
        "linearly; OCSP is cheap but adds a blocking round-trip and leaks\n"
        "browsing behaviour to the CA; stapling removes the client fetch\n"
        "entirely -- yet only ~3% of certificates were served with it."
    )


if __name__ == "__main__":
    main()
