#!/usr/bin/env python3
"""Heartbleed retrospective: what a mass-revocation event does to the
revocation ecosystem.

The paper's Figure 2 spike comes from April 2014, when Heartbleed forced
administrators to revoke at ~10x the steady-state rate.  This example
walks the same event inside the simulation, measuring each party's load:

* administrators -- how the revocation rate and the revoked-but-still-
  advertised population move;
* CAs -- how much bigger the CRLs get (bytes a client must download);
* clients -- how many users of a never-checking (mobile) browser would
  have accepted a revoked certificate at the peak.

Run:  python examples/heartbleed_retrospective.py
"""

import datetime

from repro import MeasurementStudy
from repro.core.report import format_bytes, format_table, render_series


def main() -> None:
    study = MeasurementStudy(scale=0.002)
    eco = study.ecosystem
    cal = study.calibration
    heartbleed = cal.heartbleed_date

    # -- administrator behaviour around the event ------------------------
    print("Revocations per week around Heartbleed (2014-04-07):")
    weeks = [heartbleed + datetime.timedelta(days=7 * i) for i in range(-4, 9)]
    series = []
    for week_start in weeks:
        week_end = week_start + datetime.timedelta(days=7)
        count = sum(
            1
            for leaf in eco.leaves
            if leaf.revoked_at is not None
            and week_start <= leaf.revoked_at < week_end
        )
        series.append((week_start, float(count)))
    print(render_series(series, value_format="{:,.0f}"))

    # -- CA-side load: CRL bytes before vs after -------------------------
    before = heartbleed - datetime.timedelta(days=14)
    after = heartbleed + datetime.timedelta(days=45)
    size_before = sum(study.crl_sizes(before).values())
    size_after = sum(study.crl_sizes(after).values())
    print("\nTotal bytes a client auditing every CRL would download:")
    print(
        format_table(
            ["date", "all CRLs combined"],
            [
                (before, format_bytes(size_before)),
                (after, format_bytes(size_after)),
                ("growth", f"+{(size_after / size_before - 1):.1%}"),
            ],
        )
    )

    # -- client exposure --------------------------------------------------
    peak = heartbleed + datetime.timedelta(days=30)
    alive_peak = eco.alive_leaves(peak)
    exposed = [leaf for leaf in alive_peak if leaf.is_revoked_by(peak)]
    print(
        f"\nAt the peak ({peak}), {len(exposed)} of {len(alive_peak):,} "
        f"advertised certificates ({len(exposed) / len(alive_peak):.2%}) were "
        "already revoked."
    )
    print(
        "A mobile browser (which never checks revocations, paper §6.4) would\n"
        "have accepted every one of them; so would any desktop browser whose\n"
        "path to the CA was blocked by an attacker (soft-fail, paper §2.3)."
    )

    # How long did the elevated rate last?
    pre_rate = _weekly_rate(eco, heartbleed - datetime.timedelta(days=28), 4)
    for lag_weeks in (4, 8, 12, 20):
        probe = heartbleed + datetime.timedelta(days=7 * lag_weeks)
        rate = _weekly_rate(eco, probe, 2)
        if rate <= 2 * pre_rate:
            print(
                f"\nRevocation volume returned to ~steady state about "
                f"{lag_weeks} weeks after disclosure (paper: owners "
                '"quickly returned to pre-Heartbleed behaviors").'
            )
            break


def _weekly_rate(eco, start: datetime.date, weeks: int) -> float:
    end = start + datetime.timedelta(days=7 * weeks)
    count = sum(
        1
        for leaf in eco.leaves
        if leaf.revoked_at is not None and start <= leaf.revoked_at < end
    )
    return count / weeks


if __name__ == "__main__":
    main()
