#!/usr/bin/env python3
"""CRLSet vs Bloom filter vs Golomb set: the paper's §7.4 proposal, live.

Builds Google's CRLSet over the synthetic ecosystem, then builds the
paper's proposed Bloom-filter replacement (and Langley's GCS refinement)
over the *entire* observed revocation population, and compares coverage,
size, and what each would have done for users.

Run:  python examples/crlset_vs_bloom.py
"""

from repro import MeasurementStudy
from repro.core.report import format_bytes, format_table
from repro.crlset.bloom import BloomFilter, capacity_at_fp_rate
from repro.crlset.format import serial_to_bytes
from repro.crlset.gcs import GolombCompressedSet


def main() -> None:
    study = MeasurementStudy(scale=0.002)
    eco = study.ecosystem
    end = study.calibration.measurement_end

    # 1. The production CRLSet.
    history = study.crlset_history
    snapshot = history.final_snapshot
    total_revocations = eco.total_crl_entries(end)
    print("Google-style CRLSet over the synthetic corpus:")
    print(f"  entries:  {snapshot.entry_count:,}")
    print(f"  size:     {format_bytes(snapshot.size_bytes)} (cap: 250 KB)")
    print(
        f"  coverage: {snapshot.entry_count / total_revocations:.2%} of "
        f"{total_revocations:,} CRL entries (paper: 0.35%)"
    )

    # 2. A Bloom filter over every revoked, scan-observed certificate.
    parent_by_int = {
        rec.intermediate_id: rec.spki_hash for rec in eco.intermediates
    }
    revoked_keys = [
        parent_by_int[leaf.intermediate_id] + serial_to_bytes(leaf.serial_number)
        for leaf in eco.leaves
        if leaf.is_revoked_by(end) and leaf.is_fresh(end)
    ]
    bloom = BloomFilter.for_items(len(revoked_keys), 256 * 1024 * 8)
    bloom.update(revoked_keys)
    gcs = GolombCompressedSet(revoked_keys, fp_rate=0.01)

    fresh_keys = [
        parent_by_int[leaf.intermediate_id] + serial_to_bytes(leaf.serial_number)
        for leaf in eco.leaves
        if leaf.is_fresh(end) and not leaf.is_revoked
    ]
    bloom_fp = bloom.measured_fp_rate(fresh_keys)
    gcs_fp = sum(1 for key in fresh_keys if key in gcs) / len(fresh_keys)

    crlset_caught = sum(
        1
        for leaf in eco.leaves
        if leaf.is_revoked_by(end)
        and leaf.is_fresh(end)
        and snapshot.is_revoked(
            parent_by_int[leaf.intermediate_id], leaf.serial_number
        )
    )
    print()
    print(
        format_table(
            ["structure", "size", "revoked certs caught", "false-positive rate"],
            [
                (
                    "CRLSet (production rules)",
                    format_bytes(snapshot.size_bytes),
                    f"{crlset_caught}/{len(revoked_keys)}",
                    "0 (exact)",
                ),
                (
                    "Bloom filter, 256 KB",
                    format_bytes(bloom.size_bytes),
                    f"{len(revoked_keys)}/{len(revoked_keys)} (no false negatives)",
                    f"{bloom_fp:.3%} (triggers a CRL re-check)",
                ),
                (
                    "Golomb set @1% FP",
                    format_bytes(gcs.size_bytes),
                    f"{len(revoked_keys)}/{len(revoked_keys)}",
                    f"{gcs_fp:.3%}",
                ),
            ],
            title="what would have shipped to every Chrome user",
        )
    )

    # 3. The paper's scaling argument.
    print("\nScaling to the paper's full corpus (analytic, §7.4):")
    for label, m_bits in (("256 KB", 256 * 1024 * 8), ("2 MB", 2 * 1024 * 1024 * 8)):
        capacity = capacity_at_fp_rate(m_bits, 0.01)
        print(
            f"  a {label} Bloom filter at 1% FP holds {capacity:,} revocations "
            f"({capacity / 11_461_935:.0%} of the paper's 11.46 M entries)"
        )
    print(
        "\nConclusion (paper §7.4): within the same 250 KB budget, a Bloom\n"
        "filter covers an order of magnitude more revocations than the\n"
        "CRLSet, with no false negatives and a tunable re-check rate."
    )


if __name__ == "__main__":
    main()
