#!/usr/bin/env python3
"""Browser compliance audit: grade revocation checking like the paper's §6.

Runs the full 244-case certificate test suite against every browser/OS
model, prints a per-browser scorecard (how many of the "should reject"
cases it actually rejects), and regenerates Table 2.

This is also the template for auditing a *new* client: subclass
``repro.browsers.policy.BrowserModel``, encode its policy, and run it
through the same harness.

Run:  python examples/browser_compliance_audit.py
"""

from repro.browsers.registry import all_browsers
from repro.browsers.table2 import compute_table2, diff_against_paper, render_table2
from repro.browsers.testsuite import BrowserTestHarness, generate_test_suite
from repro.core.report import format_table


def main() -> None:
    suite = generate_test_suite()
    harness = BrowserTestHarness()
    print(f"Test suite: {len(suite)} certificate configurations (paper: 244)\n")

    rows = []
    for browser in all_browsers():
        outcomes = harness.run_suite(browser, suite)
        should_reject = [o for o in outcomes if o.case.expected_reject]
        caught = sum(1 for o in should_reject if o.rejected)
        false_blocks = sum(
            1 for o in outcomes if not o.case.expected_reject and o.rejected
        )
        rows.append(
            (
                browser.label,
                f"{caught}/{len(should_reject)}",
                f"{caught / len(should_reject):.0%}",
                false_blocks,
            )
        )
    rows.sort(key=lambda row: -int(row[1].split("/")[0]))
    print(
        format_table(
            ["browser/OS", "revocations caught", "score", "false blocks"],
            rows,
            title="scorecard: how much of the suite each combination gets right",
        )
    )
    print(
        "\nNo combination reaches 100% -- the paper's §6.5 conclusion: "
        '"no browser meets all necessary criteria for revocation checking."'
    )

    print("\nRegenerating Table 2 ...\n")
    matrix = compute_table2(harness=harness, cases=suite)
    print(render_table2(matrix))
    mismatches = diff_against_paper(matrix)
    if mismatches:
        print("\nDifferences vs the paper's Table 2:")
        for mismatch in mismatches:
            print(f"  {mismatch}")
    else:
        print("\nEvery testable cell matches the paper's Table 2.")


if __name__ == "__main__":
    main()
