"""Figure 5 bench: CRL entry-count vs byte-size scatter (real DER sizes)."""

from conftest import emit

from repro import api


def test_bench_fig5_crl_scatter(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig5", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
