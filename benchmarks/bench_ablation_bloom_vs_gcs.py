"""Ablation: Bloom filter vs Golomb Compressed Set vs raw CRLSet bytes.

DESIGN.md §5 / paper §7.4: Langley [25] suggests GCS may beat Bloom
filters on space.  Builds all three structures over the same revocation
set and compares bytes and query cost.
"""

from conftest import emit_text

import time

from repro.api import (
    BloomFilter,
    GolombCompressedSet,
    format_bytes,
    format_table,
)

N = 25_000  # one paper-sized CRLSet worth of revocations
FP = 0.01


def _items():
    return [f"revoked-serial-{i}".encode() for i in range(N)]


def test_bench_bloom_vs_gcs(benchmark):
    items = _items()

    def build_both():
        bloom = BloomFilter.for_items(N, m_bits=N * 10)  # ~1% FP
        bloom.update(items)
        gcs = GolombCompressedSet(items, fp_rate=FP)
        return bloom, gcs

    bloom, gcs = benchmark.pedantic(build_both, rounds=2, iterations=1)

    # Raw CRLSet encoding of the same set: ~4-byte serials + framing.
    raw_bytes = N * (1 + 4) + 36

    probes = [f"probe-{i}".encode() for i in range(5000)]
    t0 = time.perf_counter()
    bloom_hits = sum(1 for p in probes if p in bloom)
    t1 = time.perf_counter()
    gcs_hits = sum(1 for p in probes if p in gcs)
    t2 = time.perf_counter()

    emit_text(
        format_table(
            ["structure", "bytes", "bits/entry", "5k-probe time", "false hits"],
            [
                ("raw CRLSet serials", format_bytes(raw_bytes),
                 f"{raw_bytes * 8 / N:.1f}", "-", "0 (exact)"),
                ("Bloom filter (1% FP)", format_bytes(bloom.size_bytes),
                 f"{bloom.size_bytes * 8 / N:.1f}", f"{(t1 - t0) * 1000:.1f} ms",
                 str(bloom_hits)),
                ("Golomb set (1% FP)", format_bytes(gcs.size_bytes),
                 f"{gcs.size_bytes * 8 / N:.1f}", f"{(t2 - t1) * 1000:.1f} ms",
                 str(gcs_hits)),
            ],
            title=f"ablation: {N:,} revocations at {FP:.0%} false-positive rate",
        )
    )
    # Shape: GCS < Bloom < raw bytes; both approximations stay under 2 B/entry.
    assert gcs.size_bytes < bloom.size_bytes < raw_bytes
    # No false negatives in either structure.
    assert all(item in bloom for item in items[:500])
    assert all(item in gcs for item in items[:500])
