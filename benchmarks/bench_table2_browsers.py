"""Table 2 bench: the 244-case suite against all 30 browser/OS models.

Times a single browser/OS column over the full suite (the unit of work
the paper parallelised across VMs), then regenerates and prints the full
Table 2 matrix and diffs it against the paper.
"""

from conftest import emit

from repro.api import BrowserTestHarness, InternetExplorer, generate_test_suite
from repro import api


def test_bench_one_browser_full_suite(benchmark):
    suite = generate_test_suite()
    harness = BrowserTestHarness()
    browser = InternetExplorer(version="11.0")

    outcomes = benchmark.pedantic(
        lambda: harness.run_suite(browser, suite), rounds=2, iterations=1
    )
    assert len(outcomes) == 244


def test_bench_full_table2(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("table2", study), rounds=1, iterations=1
    )
    emit(result)
    assert not result.data["mismatches"]
