"""Extension bench: short-lived certificates and OneCRL.

The §8/§9 alternatives, quantified: attack windows per regime, and the
bytes-per-protected-certificate of OneCRL vs CRLSet.
"""

from conftest import emit_text, emit  # noqa: F401  (fixture wiring parity)

from repro.api import (
    RevocationRegime,
    attack_window_study,
    blast_radius,
    build_onecrl,
    format_bytes,
    format_table,
)


def test_bench_attack_windows(benchmark, study):
    report = benchmark.pedantic(
        lambda: attack_window_study(study.ecosystem, sample=1500),
        rounds=2,
        iterations=1,
    )
    rows = [
        (
            regime.value,
            f"{report.mean(regime):.1f} d",
            f"{report.median(regime):.1f} d",
        )
        for regime in RevocationRegime
    ]
    emit_text(
        format_table(
            ["client / issuance regime", "mean attack window", "median"],
            rows,
            title="key-compromise attack windows (Monte Carlo over revoked certs)",
        )
    )
    assert report.improvement_factor() > 5


def test_bench_onecrl_vs_crlset(benchmark, crlset_ready):
    study = crlset_ready
    end = study.calibration.measurement_end

    onecrl = benchmark.pedantic(
        lambda: build_onecrl(study.ecosystem, end), rounds=3, iterations=1
    )
    snapshot = study.crlset_history.final_snapshot
    protected = sum(
        blast_radius(study.ecosystem, record.intermediate_id)
        for record in study.ecosystem.intermediates
        if record.revoked_at is not None and record.revoked_at <= end
    )
    emit_text(
        format_table(
            ["structure", "entries", "bytes", "leaf certs protected"],
            [
                ("OneCRL (intermediates)", len(onecrl),
                 format_bytes(onecrl.size_bytes), f"{protected:,} (entire subtrees)"),
                ("CRLSet (leaves)", snapshot.entry_count,
                 format_bytes(snapshot.size_bytes),
                 f"{snapshot.entry_count:,} (one each)"),
            ],
            title="pushed revocation lists: bytes vs protection",
        )
    )
    # OneCRL is >100x smaller yet each entry blocks a whole subtree.
    assert onecrl.size_bytes * 100 < snapshot.size_bytes
    assert protected > len(onecrl) * 10
