"""Benchmark fixtures.

Every figure/table bench shares one session-scoped study so that the
expensive substrate (ecosystem, CRLSet sweep) is built once; each bench
then times its own analysis step and prints the regenerated figure/table.

Set ``REPRO_BENCH_SCALE`` to change the corpus size (default 0.002, i.e.
~10 k leaf certificates; the paper's full scale is 1.0).
"""

from __future__ import annotations

import os

import pytest

from repro import api

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))


@pytest.fixture(scope="session")
def study():
    study = api.study.new_study(scale=BENCH_SCALE)
    # Materialise the substrate outside the timed regions.
    _ = study.ecosystem
    return study


@pytest.fixture(scope="session")
def crlset_ready(study):
    _ = study.crlset_history
    return study


_capture_manager = None


def pytest_configure(config) -> None:
    global _capture_manager
    _capture_manager = config.pluginmanager.getplugin("capturemanager")


def emit(result) -> None:
    """Print a regenerated figure/table beneath the benchmark output.

    Suspends pytest's output capture, so the regenerated rows/series
    appear in ``pytest benchmarks/ --benchmark-only`` output without
    needing ``-s``.
    """
    emit_text(result.render())


def emit_text(text: str) -> None:
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            print("\n" + text)
    else:
        print("\n" + text)
