"""Figure 7 / §7.2 bench: CRLSet coverage analysis."""

from conftest import emit

from repro import api


def test_bench_fig7_coverage(benchmark, crlset_ready):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig7", crlset_ready), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
