"""Extension bench: RFC 6961 multi-stapling vs classic stapling vs none.

Quantifies the §2.2 claim: plain stapling still leaves intermediate
checks on the critical path; the Multiple Certificate Status Request
extension removes them entirely.
"""

from conftest import emit_text

import datetime

from repro.api import (
    MultiStapleServer,
    OcspRequest,
    TestPki,
    chain_check_cost,
    format_table,
)

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)


def _setup(n_intermediates: int):
    pki = TestPki(f"msb{n_intermediates}", n_intermediates, {"ocsp"}, ev=False)
    fetchers = []
    for index in range(len(pki.chain) - 1):
        issuer = pki.issuer_ca_of(index)
        serial = pki.chain[index].serial_number
        fetchers.append(
            lambda at, issuer=issuer, serial=serial: issuer.ocsp_responder.respond(
                OcspRequest(issuer.issuer_key_hash, serial), at
            )
        )
    server = MultiStapleServer(chain=pki.chain, staple_fetchers=fetchers)
    server.warm_all(NOW)
    return pki, server


def test_bench_multistaple_handshake(benchmark):
    pki, server = _setup(2)

    def connect_and_validate():
        result = server.handshake(NOW, status_request_v2=True)
        return chain_check_cost(result.chain, result.staples, pki.checker(), NOW)

    cost = benchmark(connect_and_validate)
    assert cost.fetches == 0


def test_multistaple_fetch_table():
    rows = []
    for n_ints in (1, 2, 3):
        pki, server = _setup(n_ints)
        full = server.handshake(NOW, status_request_v2=True)
        none_cost = chain_check_cost(
            full.chain, (None,) * (len(full.chain) - 1), pki.checker(), NOW
        )
        leaf_only = (full.staples[0],) + (None,) * (len(full.staples) - 1)
        classic_cost = chain_check_cost(full.chain, leaf_only, pki.checker(), NOW)
        multi_cost = chain_check_cost(full.chain, full.staples, pki.checker(), NOW)
        rows.append(
            (
                f"{n_ints} intermediates",
                none_cost.fetches,
                classic_cost.fetches,
                multi_cost.fetches,
            )
        )
    emit_text(
        format_table(
            ["chain", "no stapling", "classic staple (RFC 6066)", "multi staple (RFC 6961)"],
            rows,
            title="blocking OCSP fetches a strict client still performs",
        )
    )
    # Shape: classic removes exactly one fetch; multi removes all of them.
    for _, none_f, classic_f, multi_f in rows:
        assert classic_f == none_f - 1
        assert multi_f == 0
