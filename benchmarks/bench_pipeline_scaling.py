"""End-to-end pipeline scaling benchmark.

Times the two legs the incremental artifact engine replaced -- the naive
per-day CRL-crawl rescans behind Figures 5/6/9 versus the event-timeline
index -- and the full ``run_all`` experiment sweep at increasing corpus
scales, sequential and parallel.  Results land in ``BENCH_pipeline.json``
at the repository root (committed, so regressions are diffable).

Standalone (no pytest, unlike the figure benches)::

    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py           # full run
    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py --smoke   # scale 0.002 only
    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py --check   # CI guard

``--check`` re-times the scale-0.002 legs and fails (exit 1) if the
crawl-path speedup over the naive leg drops below ``MIN_SPEEDUP``, or if
``run_all`` regresses more than ``MAX_REGRESSION`` against the committed
baseline after normalising both runs by the same machine's naive-leg time
(so a slower CI box does not trip the guard).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pipeline import MeasurementStudy  # noqa: E402
from repro.experiments.runner import run_all  # noqa: E402
from repro.scan.calibration import Calibration  # noqa: E402
from repro.scan.crawler import CrlCrawler  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_pipeline.json"
SCALES = (0.002, 0.01, 0.02)
SMOKE_SCALE = 0.002
#: --check fails if the fast crawl path is less than this many times
#: faster than the retained naive implementations.
MIN_SPEEDUP = 3.0
#: --check fails if normalised run_all time regresses more than this.
MAX_REGRESSION = 0.25


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_crawl_figures_path(scale: float) -> dict:
    """Figure 5/6/9 inputs: naive per-day rescans vs the crawl index."""
    study = MeasurementStudy(calibration=Calibration(scale=scale))
    ecosystem = study.ecosystem
    end = study.calibration.measurement_end

    naive_crawler = CrlCrawler(ecosystem)
    naive_seconds, naive_results = _time(
        lambda: (
            naive_crawler.daily_total_additions_naive(),
            naive_crawler.sizes_at_naive(end),
            naive_crawler.entry_counts_at_naive(end),
        )
    )

    # Fast leg pays for its own series builds: invalidate them first.
    for crl in ecosystem.crls:
        crl.invalidate_series()
    fast_crawler = CrlCrawler(ecosystem)
    fast_seconds, fast_results = _time(
        lambda: (
            fast_crawler.daily_total_additions(),
            fast_crawler.sizes_at(end),
            fast_crawler.entry_counts_at(end),
        )
    )

    assert fast_results == naive_results, "fast path diverged from naive path"
    return {
        "scale": scale,
        "naive_seconds": round(naive_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(naive_seconds / fast_seconds, 2),
    }


def bench_run_all(scale: float, parallel: int | None = None) -> dict:
    if parallel:
        # Parallel runs share a warm artifact cache, the intended
        # deployment: workers unpickle the substrate instead of
        # regenerating it per process.
        with tempfile.TemporaryDirectory() as cache_dir:
            study = MeasurementStudy(
                calibration=Calibration(scale=scale), cache_dir=cache_dir
            )
            substrate_seconds, _ = _time(lambda: study.ecosystem)
            sweep_seconds, results = _time(
                lambda: run_all(study, parallel=parallel)
            )
    else:
        study = MeasurementStudy(calibration=Calibration(scale=scale))
        substrate_seconds, _ = _time(lambda: study.ecosystem)
        sweep_seconds, results = _time(lambda: run_all(study, parallel=parallel))
    return {
        "scale": scale,
        "substrate_seconds": round(substrate_seconds, 2),
        "run_all_seconds": round(sweep_seconds, 2),
        "experiments": len(results),
        "parallel": parallel,
    }


#: ``run_all`` wall time measured on the pre-index code (the naive
#: crawl/figures path and per-consumer timeline rebuilds), same machine
#: class as the committed baseline.  The naive leg of
#: ``crawl_figures_path`` re-measures that code's hot path on every run.
PRE_OPTIMIZATION_REFERENCE = {"scale": 0.002, "run_all_seconds": 19.5}


def full_run(scales=SCALES, parallel: int | None = 4) -> dict:
    report = {
        "before": PRE_OPTIMIZATION_REFERENCE,
        "crawl_figures_path": bench_crawl_figures_path(SMOKE_SCALE),
        "run_all": [],
    }
    for scale in scales:
        entry = bench_run_all(scale)
        report["run_all"].append(entry)
        print(
            f"scale {scale}: substrate {entry['substrate_seconds']}s, "
            f"run_all {entry['run_all_seconds']}s"
        )
    if parallel:
        entry = bench_run_all(scales[-1], parallel=parallel)
        report["run_all"].append(entry)
        print(
            f"scale {scales[-1]} (parallel={parallel}): "
            f"run_all {entry['run_all_seconds']}s"
        )
    path = report["crawl_figures_path"]
    print(
        f"crawl/figures path at scale {path['scale']}: "
        f"naive {path['naive_seconds']}s -> fast {path['fast_seconds']}s "
        f"({path['speedup']}x)"
    )
    return report


def check_against_baseline() -> int:
    """CI guard: smoke-bench scale 0.002 and compare with the baseline."""
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run without --check first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())

    crawl = bench_crawl_figures_path(SMOKE_SCALE)
    print(
        f"crawl/figures path: naive {crawl['naive_seconds']}s -> "
        f"fast {crawl['fast_seconds']}s ({crawl['speedup']}x, floor {MIN_SPEEDUP}x)"
    )
    failures = []
    if crawl["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"crawl-path speedup {crawl['speedup']}x below the "
            f"{MIN_SPEEDUP}x floor"
        )

    # Best of two runs knocks down scheduler noise on shared runners.
    current = min(
        (bench_run_all(SMOKE_SCALE) for _ in range(2)),
        key=lambda entry: entry["run_all_seconds"],
    )
    baseline_entry = next(
        (
            entry
            for entry in baseline.get("run_all", [])
            if entry["scale"] == SMOKE_SCALE and not entry.get("parallel")
        ),
        None,
    )
    if baseline_entry is None:
        failures.append(f"baseline has no sequential scale-{SMOKE_SCALE} entry")
    else:
        # Two views of the same regression: raw wall time (right when the
        # machine matches the baseline's) and wall time normalised by this
        # machine's own naive-leg run (right when it doesn't).  Either
        # alone is noisy -- the naive leg is short and jittery, raw time
        # punishes slower hardware -- so only fail when BOTH exceed the
        # limit: a real slowdown moves them together.
        raw = (
            current["run_all_seconds"] / baseline_entry["run_all_seconds"] - 1.0
        )
        normalised = (
            (current["run_all_seconds"] / crawl["naive_seconds"])
            / (
                baseline_entry["run_all_seconds"]
                / baseline["crawl_figures_path"]["naive_seconds"]
            )
            - 1.0
        )
        regression = min(raw, normalised)
        print(
            f"run_all at scale {SMOKE_SCALE}: {current['run_all_seconds']}s "
            f"(raw {raw:+.1%}, normalised {normalised:+.1%}, "
            f"limit +{MAX_REGRESSION:.0%} on min of the two)"
        )
        if regression > MAX_REGRESSION:
            failures.append(
                f"run_all regressed {regression:+.1%} vs committed baseline"
            )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"bench scale {SMOKE_SCALE} only; do not rewrite the baseline",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI guard: fail on regression vs the committed baseline",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BASELINE_PATH,
        help="where to write the JSON report (full runs only)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check_against_baseline()
    if args.smoke:
        report = full_run(scales=(SMOKE_SCALE,), parallel=None)
        print(json.dumps(report, indent=2))
        return 0
    report = full_run()
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
