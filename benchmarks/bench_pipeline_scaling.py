"""End-to-end pipeline scaling benchmark.

Times three things through :mod:`repro.api` (no internals imported):

* the naive per-day CRL-crawl rescans behind Figures 5/6/9 versus the
  event-timeline index (``crawl_figures_path``),
* the full ``run_all`` experiment sweep at increasing corpus scales,
  sequential (cold, substrate generated in-process) and parallel
  (against a warm corpus store, the intended deployment),
* the out-of-core corpus store at large scale: sharded build + persist,
  then reload (``corpus_store``).

Results land in ``BENCH_pipeline.json`` at the repository root
(committed, so regressions are diffable).

Standalone (no pytest, unlike the figure benches)::

    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py           # full run
    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py --smoke   # scale 0.002 only
    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py --check   # CI guard
    PYTHONPATH=src python benchmarks/bench_pipeline_scaling.py --parallel-smoke

``--check`` re-times the scale-0.002 legs and fails (exit 1) if the
crawl-path speedup over the naive leg drops below ``MIN_SPEEDUP``, if
``run_all`` regresses more than ``MAX_REGRESSION`` against the committed
baseline after normalising both runs by the same machine's naive-leg
time (so a slower CI box does not trip the guard), or if the committed
baseline's parallel entries are slower than serial at the same scale.

``--parallel-smoke`` re-measures the serial-cold versus parallel-warm
comparison at a small scale and fails when parallel loses: a parallel
sweep against a warm store must beat the serial cold run end-to-end
(substrate generation included on the serial side -- the store is warm
precisely because the build cost is paid once, not per run).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_pipeline.json"
SCALES = (0.002, 0.01, 0.02)
SMOKE_SCALE = 0.002
#: large enough that substrate generation dominates the store-load +
#: pool overhead even on a single-core runner; multi-core runners win
#: by a wide margin.
PARALLEL_SMOKE_SCALE = 0.02
#: large-scale corpus-store leg (sharded build + persist + reload).
BIG_SCALE = 0.5
BIG_SHARDS = 8
#: --check fails if the fast crawl path is less than this many times
#: faster than the retained naive implementations.
MIN_SPEEDUP = 3.0
#: --check fails if normalised run_all time regresses more than this.
MAX_REGRESSION = 0.25


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_crawl_figures_path(scale: float) -> dict:
    """Figure 5/6/9 inputs: naive per-day rescans vs the crawl index."""
    study = api.study.new_study(scale=scale)
    naive, fast = api.study.crawl_figures_legs(study)
    naive_seconds, naive_results = _time(naive)
    # The fast leg invalidates the series caches itself, so it pays for
    # its own index builds.
    fast_seconds, fast_results = _time(fast)
    assert fast_results == naive_results, "fast path diverged from naive path"
    return {
        "scale": scale,
        "naive_seconds": round(naive_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(naive_seconds / fast_seconds, 2),
    }


def bench_run_all(scale: float, parallel: int | None = None) -> dict:
    """One run_all timing entry.

    Sequential entries are cold: the substrate is generated in-process
    and ``substrate_seconds`` is that generation time.  Parallel entries
    run against a warm corpus store -- ``substrate_seconds`` is the
    sharded build-and-persist time (paid once, amortised across runs)
    and ``run_all_seconds`` includes each worker's out-of-core load.
    """
    gc.collect()  # keep earlier legs' heaps from inflating fork cost
    if parallel:
        with tempfile.TemporaryDirectory() as cache_dir:
            substrate_seconds, _ = _time(
                lambda: api.corpus.build(cache_dir, scale=scale, shards=4)
            )
            # The parent never materialises the ecosystem: run_all sees
            # the warm store and the workers load it themselves.
            study = api.study.new_study(scale=scale, cache_dir=cache_dir)
            sweep_seconds, results = _time(
                lambda: api.study.run_experiments(study, parallel=parallel)
            )
        store_warm = True
    else:
        study = api.study.new_study(scale=scale)
        substrate_seconds, _ = _time(lambda: study.ecosystem)
        sweep_seconds, results = _time(lambda: api.study.run_experiments(study))
        store_warm = False
    return {
        "scale": scale,
        "substrate_seconds": round(substrate_seconds, 2),
        "run_all_seconds": round(sweep_seconds, 2),
        "experiments": len(results),
        "parallel": parallel,
        "store_warm": store_warm,
    }


def bench_corpus_store(scale: float = BIG_SCALE, shards: int = BIG_SHARDS) -> dict:
    """Sharded build + persist, then a fresh out-of-core reload."""
    gc.collect()
    with tempfile.TemporaryDirectory() as cache_dir:
        build_seconds, info = _time(
            lambda: api.corpus.build(cache_dir, scale=scale, shards=shards)
        )
        study = api.study.new_study(scale=scale, cache_dir=cache_dir)
        load_seconds, _ = _time(lambda: study.ecosystem)
    return {
        "scale": scale,
        "shards": shards,
        "build_seconds": round(build_seconds, 2),
        "load_seconds": round(load_seconds, 2),
        "store_bytes": info["bytes"],
        "leaf_count": info["leaf_count"],
        "entry_count": info["entry_count"],
    }


#: ``run_all`` wall time measured on the pre-index code (the naive
#: crawl/figures path and per-consumer timeline rebuilds), same machine
#: class as the committed baseline.  The naive leg of
#: ``crawl_figures_path`` re-measures that code's hot path on every run.
PRE_OPTIMIZATION_REFERENCE = {"scale": 0.002, "run_all_seconds": 19.5}


def _parallel_loses(serial_entry: dict, parallel_entry: dict) -> bool:
    """The gate: a warm-store parallel sweep must beat the serial cold
    run end-to-end (substrate included on the serial side)."""
    serial_total = (
        serial_entry["substrate_seconds"] + serial_entry["run_all_seconds"]
    )
    return parallel_entry["run_all_seconds"] > serial_total


def full_run(
    scales=SCALES, parallel: int | None = 2, big_scale: float | None = BIG_SCALE
) -> dict:
    report = {
        "before": PRE_OPTIMIZATION_REFERENCE,
        "machine": {"cpus": os.cpu_count()},
        "crawl_figures_path": bench_crawl_figures_path(SMOKE_SCALE),
        "run_all": [],
    }
    for scale in scales:
        entry = bench_run_all(scale)
        report["run_all"].append(entry)
        print(
            f"scale {scale}: substrate {entry['substrate_seconds']}s, "
            f"run_all {entry['run_all_seconds']}s"
        )
    if parallel:
        entry = bench_run_all(scales[-1], parallel=parallel)
        report["run_all"].append(entry)
        print(
            f"scale {scales[-1]} (parallel={parallel}, warm store): "
            f"run_all {entry['run_all_seconds']}s "
            f"(store build {entry['substrate_seconds']}s, paid once)"
        )
    if big_scale:
        store = bench_corpus_store(big_scale)
        report["corpus_store"] = store
        print(
            f"corpus store at scale {big_scale}: build {store['build_seconds']}s "
            f"({store['shards']} shards), load {store['load_seconds']}s, "
            f"{store['store_bytes'] / 1e6:.0f} MB, {store['leaf_count']} leaves"
        )
    path = report["crawl_figures_path"]
    print(
        f"crawl/figures path at scale {path['scale']}: "
        f"naive {path['naive_seconds']}s -> fast {path['fast_seconds']}s "
        f"({path['speedup']}x)"
    )
    return report


def parallel_smoke(
    scale: float = PARALLEL_SMOKE_SCALE,
    parallel: int = 2,
    output: Path | None = None,
) -> int:
    """CI guard: serial-cold vs parallel-warm at a small scale."""
    serial = bench_run_all(scale)
    par = bench_run_all(scale, parallel=parallel)
    serial_total = serial["substrate_seconds"] + serial["run_all_seconds"]
    print(
        f"scale {scale}: serial cold {serial_total:.2f}s "
        f"(substrate {serial['substrate_seconds']}s + "
        f"sweep {serial['run_all_seconds']}s) vs parallel={parallel} warm "
        f"{par['run_all_seconds']}s"
    )
    ok = not _parallel_loses(serial, par)
    if output is not None:
        output.write_text(
            json.dumps(
                {
                    "machine": {"cpus": os.cpu_count()},
                    "run_all": [serial, par],
                    "parallel_beats_serial": ok,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {output}")
    if not ok:
        print(
            "FAIL: parallel sweep against a warm store is slower than the "
            "serial cold run"
        )
        return 1
    print("OK: parallel (warm store) beats serial (cold)")
    return 0


def check_against_baseline() -> int:
    """CI guard: smoke-bench scale 0.002 and compare with the baseline."""
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run without --check first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())

    crawl = bench_crawl_figures_path(SMOKE_SCALE)
    print(
        f"crawl/figures path: naive {crawl['naive_seconds']}s -> "
        f"fast {crawl['fast_seconds']}s ({crawl['speedup']}x, floor {MIN_SPEEDUP}x)"
    )
    failures = []
    if crawl["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"crawl-path speedup {crawl['speedup']}x below the "
            f"{MIN_SPEEDUP}x floor"
        )

    # Best of two runs knocks down scheduler noise on shared runners.
    current = min(
        (bench_run_all(SMOKE_SCALE) for _ in range(2)),
        key=lambda entry: entry["run_all_seconds"],
    )
    baseline_entry = next(
        (
            entry
            for entry in baseline.get("run_all", [])
            if entry["scale"] == SMOKE_SCALE and not entry.get("parallel")
        ),
        None,
    )
    if baseline_entry is None:
        failures.append(f"baseline has no sequential scale-{SMOKE_SCALE} entry")
    else:
        # Two views of the same regression: raw wall time (right when the
        # machine matches the baseline's) and wall time normalised by this
        # machine's own naive-leg run (right when it doesn't).  Either
        # alone is noisy -- the naive leg is short and jittery, raw time
        # punishes slower hardware -- so only fail when BOTH exceed the
        # limit: a real slowdown moves them together.
        raw = (
            current["run_all_seconds"] / baseline_entry["run_all_seconds"] - 1.0
        )
        normalised = (
            (current["run_all_seconds"] / crawl["naive_seconds"])
            / (
                baseline_entry["run_all_seconds"]
                / baseline["crawl_figures_path"]["naive_seconds"]
            )
            - 1.0
        )
        regression = min(raw, normalised)
        print(
            f"run_all at scale {SMOKE_SCALE}: {current['run_all_seconds']}s "
            f"(raw {raw:+.1%}, normalised {normalised:+.1%}, "
            f"limit +{MAX_REGRESSION:.0%} on min of the two)"
        )
        if regression > MAX_REGRESSION:
            failures.append(
                f"run_all regressed {regression:+.1%} vs committed baseline"
            )

    # The committed baseline itself must show parallel beating serial at
    # every scale that has both entries: a slower parallel run is exactly
    # the regression this PR's store exists to prevent.
    serial_by_scale = {
        entry["scale"]: entry
        for entry in baseline.get("run_all", [])
        if not entry.get("parallel")
    }
    for entry in baseline.get("run_all", []):
        if not entry.get("parallel"):
            continue
        serial_entry = serial_by_scale.get(entry["scale"])
        if serial_entry is None:
            failures.append(
                f"baseline has a parallel scale-{entry['scale']} entry but "
                "no serial one to compare against"
            )
        elif _parallel_loses(serial_entry, entry):
            failures.append(
                f"baseline parallel run at scale {entry['scale']} "
                f"({entry['run_all_seconds']}s) is slower than the serial "
                "cold run"
            )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"bench scale {SMOKE_SCALE} only; do not rewrite the baseline",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI guard: fail on regression vs the committed baseline",
    )
    parser.add_argument(
        "--parallel-smoke",
        action="store_true",
        help=(
            "CI guard: re-measure serial-cold vs parallel-warm at scale "
            f"{PARALLEL_SMOKE_SCALE}; fail when parallel loses"
        ),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BASELINE_PATH,
        help="where to write the JSON report (full runs only)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check_against_baseline()
    if args.parallel_smoke:
        # Only write a report when --output names somewhere other than
        # the committed baseline (smoke modes never rewrite it).
        output = args.output if args.output != BASELINE_PATH else None
        return parallel_smoke(output=output)
    if args.smoke:
        report = full_run(scales=(SMOKE_SCALE,), parallel=None, big_scale=None)
        print(json.dumps(report, indent=2))
        if args.output != BASELINE_PATH:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
            print(f"wrote {args.output}")
        return 0
    report = full_run()
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
