"""Figure 9 bench: daily CRL vs CRLSet additions."""

from conftest import emit

from repro.experiments import fig9


def test_bench_fig9_daily_additions(benchmark, crlset_ready):
    result = benchmark.pedantic(
        lambda: fig9.run(crlset_ready), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
