"""Figure 9 bench: daily CRL vs CRLSet additions."""

from conftest import emit

from repro import api


def test_bench_fig9_daily_additions(benchmark, crlset_ready):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig9", crlset_ready), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
