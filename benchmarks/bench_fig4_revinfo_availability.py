"""Figure 4 bench: CRL/OCSP pointer inclusion by issue month."""

from conftest import emit

from repro import api


def test_bench_fig4_revocation_info(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig4", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
