"""Figure 4 bench: CRL/OCSP pointer inclusion by issue month."""

from conftest import emit

from repro.experiments import fig4


def test_bench_fig4_revocation_info(benchmark, study):
    result = benchmark.pedantic(
        lambda: fig4.run(study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
