"""Figure 2 bench: fresh/alive revoked-fraction time series."""

from conftest import emit

from repro import api


def test_bench_fig2_revocation_series(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig2", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
