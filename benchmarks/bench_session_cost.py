"""Client session-cost bench: what revocation checking costs a user.

The §5.2/§6 tension made concrete: bytes and blocking latency for a
100-site browsing session, swept over every registered revocation
mechanism (docs/MECHANISMS.md) plus the no-checking baseline, on
broadband and mobile links.
"""

from conftest import emit_text

from repro.api import LINK_PROFILES, SessionCostModel, format_bytes, format_table


def test_bench_session_cost(benchmark, study):
    model = SessionCostModel(study.ecosystem, LINK_PROFILES["broadband"])
    comparison = benchmark.pedantic(
        lambda: model.compare_mechanisms(study.mechanism_suite, site_count=100),
        rounds=3,
        iterations=1,
    )

    mobile_model = SessionCostModel(study.ecosystem, LINK_PROFILES["mobile"])
    mobile = mobile_model.compare_mechanisms(
        study.mechanism_suite, site_count=100
    )

    rows = []
    for name, cost in comparison.items():
        rows.append(
            (
                name,
                cost.checks,
                format_bytes(cost.bytes_downloaded),
                f"{cost.latency_per_site_ms:.0f} ms",
                f"{mobile[name].latency_per_site_ms:.0f} ms",
            )
        )
    emit_text(
        format_table(
            ["mechanism", "fetches", "bytes (100 sites)", "latency/site", "mobile latency/site"],
            rows,
            title="client cost of revocation checking for a 100-site session",
        )
    )
    # The sweep covers the whole registry plus the baseline row.
    assert set(comparison) == {m.name for m in study.mechanism_suite} | {"none"}
    assert comparison["crl"].bytes_downloaded > comparison["ocsp"].bytes_downloaded
    assert comparison["none"].bytes_downloaded == 0
    pushed = [
        comparison[m.name].bytes_downloaded
        for m in study.mechanism_suite
        if not m.uses_network
    ]
    assert pushed and all(cost == 0 for cost in pushed)
