"""Client session-cost bench: what revocation checking costs a user.

The §5.2/§6 tension made concrete: bytes and blocking latency for a
100-site browsing session under each client behaviour, on broadband and
mobile links.
"""

from conftest import emit_text

from repro.api import LinkProfile, SessionCostModel, format_bytes, format_table


def test_bench_session_cost(benchmark, study):
    model = SessionCostModel(study.ecosystem)
    comparison = benchmark.pedantic(
        lambda: model.compare_modes(site_count=100), rounds=3, iterations=1
    )

    mobile_model = SessionCostModel(study.ecosystem, LinkProfile.mobile())
    mobile = mobile_model.compare_modes(site_count=100)

    rows = []
    for mode in ("crl", "ocsp", "staple", "none"):
        cost = comparison[mode]
        rows.append(
            (
                mode,
                cost.checks,
                format_bytes(cost.bytes_downloaded),
                f"{cost.latency_per_site_ms:.0f} ms",
                f"{mobile[mode].latency_per_site_ms:.0f} ms",
            )
        )
    emit_text(
        format_table(
            ["mode", "fetches", "bytes (100 sites)", "latency/site", "mobile latency/site"],
            rows,
            title="client cost of revocation checking for a 100-site session",
        )
    )
    assert comparison["crl"].bytes_downloaded > comparison["ocsp"].bytes_downloaded
    assert comparison["none"].bytes_downloaded == 0
