"""Figure 8 bench: daily CRLSet build sweep (the heavy §7 computation)."""

from conftest import emit

from repro.api import CrlSetBuilder
from repro import api


def test_bench_crlset_daily_sweep(benchmark, study):
    """Times the full ~620-day CRLSet construction sweep."""
    history = benchmark.pedantic(
        lambda: CrlSetBuilder(study.ecosystem).run(), rounds=2, iterations=1
    )
    assert history.daily_entry_counts


def test_bench_fig8_series(benchmark, crlset_ready):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig8", crlset_ready), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
