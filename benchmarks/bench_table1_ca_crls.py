"""Table 1 bench: per-CA CRL statistics."""

from conftest import emit

from repro import api


def test_bench_table1_per_ca(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("table1", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
