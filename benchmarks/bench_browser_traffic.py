"""§6.2 bench: per-browser revocation traffic across the test suite.

The paper's captured network traces, aggregated: what each browser/OS
column of Table 2 *pays* in revocation fetches and bytes, and what that
traffic buys in detected revocations.
"""

from conftest import emit_text

from repro.api import (
    AndroidBrowser,
    Chrome,
    Firefox,
    InternetExplorer,
    MobileSafari,
    Opera12,
    Opera31,
    Safari,
    StrictClient,
    format_bytes,
    format_table,
    generate_test_suite,
    traffic_report,
)


def test_bench_browser_traffic(benchmark):
    suite = generate_test_suite()
    sample = [case for index, case in enumerate(suite) if index % 4 == 0]
    browsers = [
        StrictClient(os="linux"),
        InternetExplorer(version="11.0"),
        Safari(),
        Opera31(os="windows"),
        Opera12(os="osx"),
        Firefox(os="linux"),
        Chrome(os="windows"),
        Chrome(os="osx"),
        AndroidBrowser("Chrome", "5.1"),
        MobileSafari("8"),
    ]

    report = benchmark.pedantic(
        lambda: traffic_report(browsers, sample), rounds=1, iterations=1
    )
    emit_text(
        format_table(
            ["browser", "fetches", "bytes", "B/connection", "revocations caught"],
            [
                (
                    row.browser_label,
                    row.fetches,
                    format_bytes(row.bytes_downloaded),
                    f"{row.bytes_per_connection:,.0f}",
                    row.revocations_caught,
                )
                for row in report
            ],
            title=f"revocation traffic over {len(sample)} suite connections",
        )
    )
    by_label = {row.browser_label: row for row in report}
    mobile = next(v for k, v in by_label.items() if "Mobile" in k)
    strict = next(v for k, v in by_label.items() if "Strict" in k)
    # The §6 trade-off, quantified: zero traffic means zero detections;
    # full checking costs real bandwidth.
    assert mobile.bytes_downloaded == 0 and mobile.revocations_caught == 0
    assert strict.revocations_caught == max(r.revocations_caught for r in report)
    assert strict.bytes_downloaded > 0
