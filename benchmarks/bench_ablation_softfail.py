"""Ablation: soft-fail vs hard-fail under a blocking attacker.

DESIGN.md §5 / paper §2.3: "any attacker who can block access to specific
domains could leverage soft-failures to effectively turn off revocation
checking."  Runs every desktop browser model against a revoked
certificate whose revocation endpoints are blocked and reports who still
accepts it.
"""

from conftest import emit_text

import datetime

from repro.api import ChainContext, TestPki, all_browsers, format_table

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)


def _attack_outcomes():
    """(browser label, accepted under attack) for each browser model."""
    outcomes = []
    for index, browser in enumerate(all_browsers()):
        pki = TestPki(f"sf{index}", 1, {"crl", "ocsp"}, ev=False)
        pki.revoke(0)
        pki.make_unavailable(0, "crl", "no_response")
        pki.make_unavailable(0, "ocsp", "no_response")
        pki.make_unavailable(1, "crl", "no_response")
        pki.make_unavailable(1, "ocsp", "no_response")
        chain, staple = pki.handshake(status_request=browser.requests_staple())
        result = browser.validate(ChainContext(chain, staple, pki.checker(), NOW))
        outcomes.append((browser.label, result.accepted))
    return outcomes


def test_bench_ablate_softfail_attack(benchmark):
    outcomes = benchmark.pedantic(_attack_outcomes, rounds=1, iterations=1)
    accepted = [label for label, ok in outcomes if ok]
    rejected = [label for label, ok in outcomes if not ok]

    emit_text(
        format_table(
            ["outcome under blocking attacker", "browser/OS combinations"],
            [
                ("ACCEPTS revoked cert (soft-fail)", len(accepted)),
                ("rejects (hard-fail)", len(rejected)),
            ],
            title="ablation: revoked cert + blocked revocation endpoints (30 combos)",
        )
    )
    for label in rejected:
        emit_text(f"  hard-fails: {label}")

    # The paper's conclusion: the large majority of deployed combinations
    # soft-fail, so the attacker wins on most clients.
    assert len(accepted) > len(rejected)
    assert len(accepted) + len(rejected) == 30
