"""Ablation: hash-simulated signatures vs real Ed25519.

DESIGN.md §5: quantifies why the corpus generator defaults to the hash
backend -- CRL signing/verification throughput differs by orders of
magnitude, while all consumers only need sign/verify semantics.
"""

from conftest import emit_text

import pytest

from repro.api import Ed25519Backend, KeyPair, SimBackend, format_table

MESSAGES = [f"tbs-certificate-{i}".encode() * 8 for i in range(200)]


def _roundtrips(keys):
    for message in MESSAGES:
        signature = keys.sign(message)
        assert keys.verify(message, signature)


def test_bench_sim_backend(benchmark):
    keys = KeyPair.generate("bench-sim", SimBackend())
    benchmark(_roundtrips, keys)


def test_bench_ed25519_backend(benchmark):
    pytest.importorskip("cryptography")
    keys = KeyPair.generate("bench-ed", Ed25519Backend())
    benchmark(_roundtrips, keys)


def test_backend_interchangeability():
    """Both backends satisfy the semantics the PKI layer needs."""
    rows = []
    for backend in (SimBackend(), Ed25519Backend()):
        keys = KeyPair.generate("interop", backend)
        other = KeyPair.generate("interop-other", backend)
        ok = keys.verify(b"m", keys.sign(b"m"))
        cross = other.verify(b"m", keys.sign(b"m"))
        rows.append((type(backend).__name__, ok, cross))
        assert ok and not cross
    emit_text(
        format_table(
            ["backend", "self-verify", "cross-verify (must be False)"], rows
        )
    )
