"""Figure 3 / §4.3 bench: stapling deployment scan + probe experiment."""

from conftest import emit

from repro import api


def test_bench_fig3_stapling(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig3", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
