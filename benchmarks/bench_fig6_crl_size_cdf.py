"""Figure 6 bench: raw vs certificate-weighted CRL size CDFs."""

from conftest import emit

from repro.experiments import fig6


def test_bench_fig6_crl_cdf(benchmark, study):
    result = benchmark.pedantic(
        lambda: fig6.run(study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
