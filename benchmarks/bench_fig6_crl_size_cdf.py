"""Figure 6 bench: raw vs certificate-weighted CRL size CDFs."""

from conftest import emit

from repro import api


def test_bench_fig6_crl_cdf(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig6", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
