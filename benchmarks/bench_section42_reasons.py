"""§4.2 bench: reason-code distribution across revocations."""

from conftest import emit

from repro import api


def test_bench_section42_reasons(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("section42", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
