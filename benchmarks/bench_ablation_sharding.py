"""Ablation: CRL sharding vs per-client download size.

DESIGN.md §5 / paper §9: "CAs can simply maintain more, smaller CRLs --
in the extreme approximating OCSP."  Sweeps shard counts for a fixed
revocation population and reports the per-certificate CRL size.
"""

from conftest import emit_text

import datetime

from repro.api import CrlPublisher, KeyPair, Name, format_bytes, format_table

NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=datetime.timezone.utc)
REVOCATIONS = 3000


def _max_crl_size(shards: int) -> int:
    publisher = CrlPublisher(
        Name.make("Shard Bench CA"),
        KeyPair.generate("shard-bench"),
        "http://crl.bench.example",
        shard_count=shards,
    )
    for serial in range(REVOCATIONS):
        publisher.assign(serial)
        publisher.record_revocation(
            serial, NOW, None, NOW + datetime.timedelta(days=365)
        )
    return max(crl.encoded_size for crl in publisher.encode_all(NOW))


def test_bench_ablate_crl_sharding(benchmark):
    sweep = (1, 4, 16, 64, 322)
    sizes = {}

    def run_sweep():
        for shards in sweep:
            sizes[shards] = _max_crl_size(shards)
        return sizes

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    emit_text(
        format_table(
            ["CRL shards", "max per-client CRL", "vs 1 shard"],
            [
                (
                    shards,
                    format_bytes(sizes[shards]),
                    f"{sizes[1] / sizes[shards]:.1f}x smaller",
                )
                for shards in sweep
            ],
            title=f"ablation: sharding {REVOCATIONS} revocations (GoDaddy ran 322 shards)",
        )
    )
    # The paper's point: sharding divides client cost almost linearly.
    assert sizes[64] < sizes[1] / 30
