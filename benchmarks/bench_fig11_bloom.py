"""Figure 11 bench: Bloom-filter sweep plus real-filter throughput."""

from conftest import emit

from repro.api import BloomFilter
from repro import api


def test_bench_fig11_analysis(benchmark, crlset_ready):
    result = benchmark.pedantic(
        lambda: api.study.run_one("fig11", crlset_ready), rounds=2, iterations=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)


def test_bench_bloom_insert_throughput(benchmark):
    """Inserting 25 k revocations (one CRLSet's worth) into a 256 KB filter."""
    items = [f"serial-{i}".encode() for i in range(25_000)]

    def build():
        bloom = BloomFilter.for_items(len(items), 256 * 1024 * 8)
        bloom.update(items)
        return bloom

    bloom = benchmark(build)
    assert bloom.count == 25_000


def test_bench_bloom_query_throughput(benchmark):
    bloom = BloomFilter.for_items(25_000, 256 * 1024 * 8)
    bloom.update(f"serial-{i}".encode() for i in range(25_000))
    probes = [f"probe-{i}".encode() for i in range(10_000)]

    def query():
        return sum(1 for probe in probes if probe in bloom)

    hits = benchmark(query)
    assert hits < 1000
