"""Substrate micro-benchmarks: DER, certificates, CRL encode/parse.

Not a paper figure -- these bound the simulator's own throughput, which
determines how large a corpus the scan experiments can afford.
"""

import datetime

from repro.api import (
    Certificate,
    CertificateBuilder,
    CertificateRevocationList,
    KeyPair,
    Name,
    RevokedEntry,
)

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)
THIS = datetime.datetime(2015, 3, 1, tzinfo=UTC)


def _build_cert() -> Certificate:
    keys = KeyPair.generate("bench-der")
    return (
        CertificateBuilder()
        .subject(Name.make("bench.example"))
        .issuer(Name.make("Bench CA"))
        .serial_number(1234567)
        .public_key(keys.public_key)
        .validity(NB, NA)
        .crl_urls(["http://crl.bench.example/0.crl"])
        .ocsp_urls(["http://ocsp.bench.example/q"])
        .sign(keys)
    )


def test_bench_certificate_issue(benchmark):
    cert = benchmark(_build_cert)
    assert cert.serial_number == 1234567


def test_bench_certificate_parse(benchmark):
    der = _build_cert().to_der()
    cert = benchmark(Certificate.from_der, der)
    assert cert.serial_number == 1234567


def test_bench_crl_encode_10k_entries(benchmark):
    keys = KeyPair.generate("bench-crl")
    entries = [
        RevokedEntry(1000 + i, THIS - datetime.timedelta(days=1))
        for i in range(10_000)
    ]
    crl = CertificateRevocationList.build(
        issuer=Name.make("Bench CRL CA"),
        issuer_keys=keys,
        entries=entries,
        this_update=THIS,
        next_update=THIS + datetime.timedelta(days=1),
    )
    der = benchmark(crl.to_der)
    # ~38 bytes/entry, as in the paper's Figure 5.
    assert 20 * 10_000 < len(der) < 50 * 10_000


def test_bench_crl_parse_10k_entries(benchmark):
    keys = KeyPair.generate("bench-crl2")
    entries = [
        RevokedEntry(1000 + i, THIS - datetime.timedelta(days=1))
        for i in range(10_000)
    ]
    der = CertificateRevocationList.build(
        issuer=Name.make("Bench CRL CA"),
        issuer_keys=keys,
        entries=entries,
        this_update=THIS,
        next_update=THIS + datetime.timedelta(days=1),
    ).to_der()
    crl = benchmark(CertificateRevocationList.from_der, der)
    assert len(crl) == 10_000
