"""Ablation: which CRLSet construction rule costs how much coverage?

DESIGN.md §5.  The baseline and the reason-filter ablation run the real
daily builder; the threshold/cap ablations are computed analytically over
the crawled corpus (the dropped CRLs' populations are bulk-modelled, so
"what if Google admitted them" is a counting question), quantifying why
the production CRLSet covers well under 1% of revocations.
"""

from conftest import emit_text

from repro.api import (
    CrlSetBuilder,
    analyze_coverage,
    format_table,
    is_crlset_eligible,
)


def _built_coverage(study, **builder_kwargs) -> float:
    builder = CrlSetBuilder(study.ecosystem, **builder_kwargs)
    history = builder.run()
    return analyze_coverage(study.ecosystem, history).coverage_fraction


def _analytic_coverage(study, max_entries: float, reason_filter: bool) -> float:
    """Upper-bound coverage if every crawled CRL under ``max_entries``
    were admitted in full (no byte cap)."""
    eco = study.ecosystem
    end = study.calibration.measurement_end
    total = eco.total_crl_entries(end)
    admitted = 0
    for crl in eco.crls:
        if not crl.covered:
            continue
        count = crl.entry_count(end)
        if count > max_entries:
            continue
        if reason_filter:
            visible = crl.visible_entries(end)
            eligible = sum(1 for e in visible if is_crlset_eligible(e.reason))
            hidden = count - len(visible)
            # Hidden entries share the corpus-wide reason mix (~87% eligible).
            admitted += eligible + int(hidden * 0.87)
        else:
            admitted += count
    return admitted / total


def test_bench_ablate_crlset_rules(benchmark, study):
    baseline = benchmark.pedantic(
        lambda: _built_coverage(study), rounds=1, iterations=1
    )
    no_reason_filter = _built_coverage(study, apply_reason_filter=False)
    cal = study.calibration
    threshold_only = _analytic_coverage(
        study, cal.crlset_max_entries_per_crl, reason_filter=True
    )
    no_threshold = _analytic_coverage(study, float("inf"), reason_filter=True)
    no_rules_at_all = _analytic_coverage(study, float("inf"), reason_filter=False)

    rows = [
        ("production rules (baseline, built)", f"{baseline:.3%}"),
        ("without reason-code filter (built)", f"{no_reason_filter:.3%}"),
        ("no 250 KB cap (analytic bound)", f"{threshold_only:.3%}"),
        ("no entry threshold either (analytic)", f"{no_threshold:.3%}"),
        ("no rules at all (analytic)", f"{no_rules_at_all:.3%}"),
    ]
    emit_text(
        format_table(
            ["configuration", "fraction of all revocations covered"],
            rows,
            title="ablation: CRLSet construction rules vs coverage",
        )
    )

    # Dropping the reason filter admits more entries.
    assert no_reason_filter >= baseline
    # The entry threshold (rule 3) is the coverage killer: without it the
    # big CAs' CRLs would lift coverage by an order of magnitude.
    assert no_threshold > 5 * baseline
    assert no_rules_at_all >= no_threshold
