"""§3 dataset composition bench: scans + summary statistics."""

from conftest import emit

from repro import api


def test_bench_section3_dataset(benchmark, study):
    result = benchmark.pedantic(
        lambda: api.study.run_one("section3", study), rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result)
    assert all(c.shape_holds for c in result.comparisons)
