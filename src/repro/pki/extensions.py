"""X.509v3 extensions used by the study.

Each extension knows how to encode itself to DER and how to decode from a
DER node.  The set covers what the paper's pipeline inspects:

* BasicConstraints -- distinguishes CA (intermediate/root) from leaf certs.
* CrlDistributionPoints -- where clients fetch CRLs (§3.2; only http[s]
  URLs count as "potentially reachable", ldap:// and file:// are ignored).
* AuthorityInfoAccess -- OCSP responder URLs.
* CertificatePolicies -- carries EV policy OIDs (§6.1 test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asn1 import der
from repro.asn1.oid import OID

__all__ = [
    "AuthorityInfoAccess",
    "BasicConstraints",
    "CertificatePolicies",
    "CrlDistributionPoints",
    "Extension",
    "is_reachable_url",
]

_TAG_URI = 6  # GeneralName uniformResourceIdentifier [6] IA5String
# RFC 5280 DistributionPoint context tags: distributionPoint [0] and,
# within DistributionPointName, fullName [0].
_CTX_DISTRIBUTION_POINT = 0
_CTX_FULL_NAME = 0


def is_reachable_url(url: str) -> bool:
    """True for http[s]:// URLs; the paper ignores ldap:// and file://."""
    return url.startswith("http://") or url.startswith("https://")


@dataclass(frozen=True)
class Extension:
    """A raw extension: (OID, criticality, DER-encoded extnValue)."""

    oid: str
    critical: bool
    value: bytes

    def to_der(self) -> bytes:
        parts = [der.encode_oid(self.oid)]
        if self.critical:
            parts.append(der.encode_boolean(True))
        parts.append(der.encode_octet_string(self.value))
        return der.encode_sequence(*parts)

    @classmethod
    def from_der_node(cls, node: der.DecodedValue) -> "Extension":
        children = node.children
        oid = children[0].as_oid()
        critical = False
        index = 1
        if index < len(children) and children[index].tag == der.Tag.BOOLEAN:
            critical = children[index].as_boolean()
            index += 1
        value = children[index].value
        return cls(oid=oid, critical=critical, value=value)


@dataclass(frozen=True)
class BasicConstraints:
    """RFC 5280 4.2.1.9."""

    is_ca: bool = False
    path_length: int | None = None

    OID = OID.BASIC_CONSTRAINTS

    def to_extension(self) -> Extension:
        parts = []
        if self.is_ca:
            parts.append(der.encode_boolean(True))
            if self.path_length is not None:
                parts.append(der.encode_integer(self.path_length))
        return Extension(self.OID, critical=True, value=der.encode_sequence(*parts))

    @classmethod
    def from_extension(cls, ext: Extension) -> "BasicConstraints":
        node = der.decode_all(ext.value)
        is_ca = False
        path_length = None
        for child in node.children:
            if child.tag == der.Tag.BOOLEAN:
                is_ca = child.as_boolean()
            elif child.tag == der.Tag.INTEGER:
                path_length = child.as_integer()
        return cls(is_ca=is_ca, path_length=path_length)


@dataclass(frozen=True)
class CrlDistributionPoints:
    """RFC 5280 4.2.1.13 -- a list of CRL distribution point URLs."""

    urls: tuple[str, ...] = field(default_factory=tuple)

    OID = OID.CRL_DISTRIBUTION_POINTS

    @property
    def reachable_urls(self) -> tuple[str, ...]:
        return tuple(url for url in self.urls if is_reachable_url(url))

    def to_extension(self) -> Extension:
        points = []
        for url in self.urls:
            general_name = der.encode_tlv(
                der.Tag.CONTEXT | _TAG_URI, url.encode("ascii")
            )
            full_name = der.encode_context(_CTX_FULL_NAME, general_name)
            dp_name = der.encode_context(_CTX_DISTRIBUTION_POINT, full_name)
            points.append(der.encode_sequence(dp_name))
        return Extension(self.OID, critical=False, value=der.encode_sequence(*points))

    @classmethod
    def from_extension(cls, ext: Extension) -> "CrlDistributionPoints":
        node = der.decode_all(ext.value)
        urls: list[str] = []
        for point in node.children:
            for dp_name in point.children:
                if dp_name.context_number != 0:
                    continue
                for full_name in dp_name.children:
                    if full_name.context_number != 0:
                        continue
                    for general_name in full_name.children:
                        if general_name.context_number == _TAG_URI:
                            urls.append(general_name.value.decode("ascii"))
        return cls(tuple(urls))


@dataclass(frozen=True)
class AuthorityInfoAccess:
    """RFC 5280 4.2.2.1 -- OCSP responder and caIssuers URLs."""

    ocsp_urls: tuple[str, ...] = field(default_factory=tuple)
    ca_issuer_urls: tuple[str, ...] = field(default_factory=tuple)

    OID = OID.AUTHORITY_INFO_ACCESS

    @property
    def reachable_ocsp_urls(self) -> tuple[str, ...]:
        return tuple(url for url in self.ocsp_urls if is_reachable_url(url))

    def to_extension(self) -> Extension:
        descriptions = []
        for method_oid, urls in (
            (OID.AD_OCSP, self.ocsp_urls),
            (OID.AD_CA_ISSUERS, self.ca_issuer_urls),
        ):
            for url in urls:
                general_name = der.encode_tlv(
                    der.Tag.CONTEXT | _TAG_URI, url.encode("ascii")
                )
                descriptions.append(
                    der.encode_sequence(der.encode_oid(method_oid), general_name)
                )
        return Extension(
            self.OID, critical=False, value=der.encode_sequence(*descriptions)
        )

    @classmethod
    def from_extension(cls, ext: Extension) -> "AuthorityInfoAccess":
        node = der.decode_all(ext.value)
        ocsp: list[str] = []
        issuers: list[str] = []
        for desc in node.children:
            method = desc.children[0].as_oid()
            location = desc.children[1]
            if location.context_number != _TAG_URI:
                continue
            url = location.value.decode("ascii")
            if method == OID.AD_OCSP:
                ocsp.append(url)
            elif method == OID.AD_CA_ISSUERS:
                issuers.append(url)
        return cls(tuple(ocsp), tuple(issuers))


@dataclass(frozen=True)
class CertificatePolicies:
    """RFC 5280 4.2.1.4 -- policy OIDs; EV status is signalled here."""

    policy_oids: tuple[str, ...] = field(default_factory=tuple)

    OID = OID.CERTIFICATE_POLICIES

    @property
    def is_ev(self) -> bool:
        return any(oid in OID.EV_POLICY_OIDS for oid in self.policy_oids)

    def to_extension(self) -> Extension:
        infos = [
            der.encode_sequence(der.encode_oid(policy))
            for policy in self.policy_oids
        ]
        return Extension(self.OID, critical=False, value=der.encode_sequence(*infos))

    @classmethod
    def from_extension(cls, ext: Extension) -> "CertificatePolicies":
        node = der.decode_all(ext.value)
        return cls(tuple(info.children[0].as_oid() for info in node.children))
