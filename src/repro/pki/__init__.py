"""X.509-style PKI data model.

Provides certificates, distinguished names, extensions, serial-number
policies, signature key pairs with pluggable backends, and chain
verification -- the substrate on which the paper's CAs, scans, and browser
models operate.
"""

from repro.pki.certificate import Certificate, CertificateBuilder, TbsCertificate
from repro.pki.extensions import (
    AuthorityInfoAccess,
    BasicConstraints,
    CertificatePolicies,
    CrlDistributionPoints,
    Extension,
)
from repro.pki.keys import (
    Ed25519Backend,
    KeyPair,
    SignatureBackend,
    SimBackend,
    default_backend,
)
from repro.pki.name import Name
from repro.pki.serial import (
    RandomLongSerialPolicy,
    SequentialSerialPolicy,
    SerialNumberPolicy,
)
from repro.pki.verify import (
    ChainVerificationError,
    VerificationStatus,
    verify_certificate,
    verify_chain,
)

__all__ = [
    "AuthorityInfoAccess",
    "BasicConstraints",
    "Certificate",
    "CertificateBuilder",
    "CertificatePolicies",
    "ChainVerificationError",
    "CrlDistributionPoints",
    "Ed25519Backend",
    "Extension",
    "KeyPair",
    "Name",
    "RandomLongSerialPolicy",
    "SequentialSerialPolicy",
    "SerialNumberPolicy",
    "SignatureBackend",
    "SimBackend",
    "TbsCertificate",
    "VerificationStatus",
    "default_backend",
    "verify_certificate",
    "verify_chain",
]
