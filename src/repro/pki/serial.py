"""Serial-number assignment policies.

The paper (footnote 11) attributes the variance in CRL byte size at equal
entry counts to CA serial-number policies: "some CAs use serial numbers of
up to 49 decimal digits, which results in larger CRL file sizes."  We model
the two families observed in the wild:

* :class:`SequentialSerialPolicy` -- small monotonically increasing
  serials (a few bytes each).
* :class:`RandomLongSerialPolicy` -- long random serials (e.g. 160-bit,
  ~ 49 decimal digits), as used by CAs that embed entropy in serials.
"""

from __future__ import annotations

import random

__all__ = [
    "RandomLongSerialPolicy",
    "SequentialSerialPolicy",
    "SerialNumberPolicy",
]


class SerialNumberPolicy:
    """Interface: yields a fresh serial number per call."""

    def next_serial(self) -> int:
        raise NotImplementedError

    @property
    def approx_encoded_bytes(self) -> int:
        """Approximate DER INTEGER content size, for size modelling."""
        raise NotImplementedError


class SequentialSerialPolicy(SerialNumberPolicy):
    """Monotonically increasing serial numbers starting at ``start``."""

    def __init__(self, start: int = 1) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        self._next = start

    def next_serial(self) -> int:
        serial = self._next
        self._next += 1
        return serial

    @property
    def approx_encoded_bytes(self) -> int:
        return max(1, (self._next.bit_length() + 8) // 8)


class RandomLongSerialPolicy(SerialNumberPolicy):
    """Uniform random serials of ``bits`` bits (default 160 ~= 49 digits).

    Deterministic given the ``rng`` so simulations are reproducible.
    Collisions are avoided by tracking issued serials.
    """

    def __init__(self, rng: random.Random, bits: int = 160) -> None:
        if bits < 8:
            raise ValueError("bits must be >= 8")
        self._rng = rng
        self._bits = bits
        self._issued: set[int] = set()

    def next_serial(self) -> int:
        while True:
            serial = self._rng.getrandbits(self._bits)
            if serial not in self._issued:
                self._issued.add(serial)
                return serial

    @property
    def approx_encoded_bytes(self) -> int:
        return (self._bits + 8) // 8
