"""Certificates: the X.509-shaped core object of the study.

A :class:`Certificate` wraps a :class:`TbsCertificate` ("to be signed")
plus a signature.  Encoding follows RFC 5280's Certificate ::= SEQUENCE
{ tbsCertificate, signatureAlgorithm, signatureValue } so that byte sizes
are realistic; decoding round-trips everything the pipeline needs.

Construction goes through :class:`CertificateBuilder`, which is how the
CA machinery (:mod:`repro.ca`) and the browser test suite
(:mod:`repro.browsers.certgen`) mint certificates.
"""

from __future__ import annotations

import datetime
import hashlib
from dataclasses import dataclass, field

from repro.asn1 import der
from repro.asn1.oid import OID
from repro.pki.extensions import (
    AuthorityInfoAccess,
    BasicConstraints,
    CertificatePolicies,
    CrlDistributionPoints,
    Extension,
)
from repro.pki.keys import KeyPair, SignatureBackend, default_backend
from repro.pki.name import Name

__all__ = ["Certificate", "CertificateBuilder", "TbsCertificate"]

_UTC = datetime.timezone.utc

# RFC 5280 TBSCertificate context tags: version [0], extensions [3].
_CTX_VERSION = 0
_CTX_EXTENSIONS = 3


def _encode_time(when: datetime.datetime) -> bytes:
    """RFC 5280: UTCTime through 2049, GeneralizedTime after."""
    if when.year <= 2049:
        return der.encode_utc_time(when)
    return der.encode_generalized_time(when)


@dataclass(frozen=True)
class TbsCertificate:
    """The signed portion of a certificate."""

    serial_number: int
    issuer: Name
    subject: Name
    not_before: datetime.datetime
    not_after: datetime.datetime
    public_key: bytes
    signature_algorithm_oid: str
    extensions: tuple[Extension, ...] = field(default_factory=tuple)

    def to_der(self) -> bytes:
        version = der.encode_context(_CTX_VERSION, der.encode_integer(2))  # v3
        algorithm = der.encode_sequence(
            der.encode_oid(self.signature_algorithm_oid), der.encode_null()
        )
        validity = der.encode_sequence(
            _encode_time(self.not_before), _encode_time(self.not_after)
        )
        spki = der.encode_sequence(algorithm, der.encode_bit_string(self.public_key))
        parts = [
            version,
            der.encode_integer(self.serial_number),
            algorithm,
            self.issuer.to_der(),
            validity,
            self.subject.to_der(),
            spki,
        ]
        if self.extensions:
            ext_seq = der.encode_sequence(*(ext.to_der() for ext in self.extensions))
            parts.append(der.encode_context(_CTX_EXTENSIONS, ext_seq))
        return der.encode_sequence(*parts)


@dataclass(frozen=True)
class Certificate:
    """A signed certificate plus convenience accessors used by analyses."""

    tbs: TbsCertificate
    signature: bytes

    def to_der(self) -> bytes:
        algorithm = der.encode_sequence(
            der.encode_oid(self.tbs.signature_algorithm_oid), der.encode_null()
        )
        return der.encode_sequence(
            self.tbs.to_der(), algorithm, der.encode_bit_string(self.signature)
        )

    @classmethod
    def from_der(cls, data: bytes) -> "Certificate":
        try:
            return cls._from_der(data)
        except der.Asn1Error:
            raise
        except (IndexError, ValueError, KeyError, TypeError) as exc:
            raise der.Asn1Error(f"malformed certificate: {exc}") from exc

    @classmethod
    def _from_der(cls, data: bytes) -> "Certificate":
        node = der.decode_all(data)
        tbs_node, _algorithm, signature_node = node.children
        children = tbs_node.children
        index = 0
        if children[index].context_number == 0:
            index += 1  # version
        serial = children[index].as_integer()
        index += 1
        algorithm_oid = children[index].children[0].as_oid()
        index += 1
        issuer = Name.from_der_node(children[index])
        index += 1
        validity = children[index]
        not_before = validity.children[0].as_datetime()
        not_after = validity.children[1].as_datetime()
        index += 1
        subject = Name.from_der_node(children[index])
        index += 1
        spki = children[index]
        public_key = spki.children[1].as_bit_string()
        index += 1
        extensions: list[Extension] = []
        while index < len(children):
            child = children[index]
            if child.context_number == 3:
                ext_seq = child.children[0]
                extensions = [Extension.from_der_node(e) for e in ext_seq.children]
            index += 1
        tbs = TbsCertificate(
            serial_number=serial,
            issuer=issuer,
            subject=subject,
            not_before=not_before,
            not_after=not_after,
            public_key=public_key,
            signature_algorithm_oid=algorithm_oid,
            extensions=tuple(extensions),
        )
        return cls(tbs=tbs, signature=signature_node.as_bit_string())

    # -- identity ----------------------------------------------------------

    @property
    def serial_number(self) -> int:
        return self.tbs.serial_number

    @property
    def issuer(self) -> Name:
        return self.tbs.issuer

    @property
    def subject(self) -> Name:
        return self.tbs.subject

    @property
    def not_before(self) -> datetime.datetime:
        return self.tbs.not_before

    @property
    def not_after(self) -> datetime.datetime:
        return self.tbs.not_after

    @property
    def public_key(self) -> bytes:
        return self.tbs.public_key

    @property
    def fingerprint(self) -> bytes:
        """SHA-256 over the DER encoding; the unique certificate identity."""
        return hashlib.sha256(self.to_der()).digest()

    @property
    def spki_hash(self) -> bytes:
        """SHA-256 of the public key -- the CRLSet "parent" key (§7.1)."""
        return hashlib.sha256(self.public_key).digest()

    @property
    def is_self_signed(self) -> bool:
        return self.tbs.issuer == self.tbs.subject

    # -- extensions --------------------------------------------------------

    def extension(self, oid: str) -> Extension | None:
        for ext in self.tbs.extensions:
            if ext.oid == oid:
                return ext
        return None

    @property
    def basic_constraints(self) -> BasicConstraints:
        ext = self.extension(OID.BASIC_CONSTRAINTS)
        if ext is None:
            return BasicConstraints(is_ca=False)
        return BasicConstraints.from_extension(ext)

    @property
    def is_ca(self) -> bool:
        return self.basic_constraints.is_ca

    @property
    def crl_distribution_points(self) -> CrlDistributionPoints:
        ext = self.extension(OID.CRL_DISTRIBUTION_POINTS)
        if ext is None:
            return CrlDistributionPoints()
        return CrlDistributionPoints.from_extension(ext)

    @property
    def authority_info_access(self) -> AuthorityInfoAccess:
        ext = self.extension(OID.AUTHORITY_INFO_ACCESS)
        if ext is None:
            return AuthorityInfoAccess()
        return AuthorityInfoAccess.from_extension(ext)

    @property
    def certificate_policies(self) -> CertificatePolicies:
        ext = self.extension(OID.CERTIFICATE_POLICIES)
        if ext is None:
            return CertificatePolicies()
        return CertificatePolicies.from_extension(ext)

    @property
    def is_ev(self) -> bool:
        return self.certificate_policies.is_ev

    @property
    def crl_urls(self) -> tuple[str, ...]:
        """Potentially reachable (http[s]) CRL distribution points."""
        return self.crl_distribution_points.reachable_urls

    @property
    def ocsp_urls(self) -> tuple[str, ...]:
        """Potentially reachable OCSP responder URLs."""
        return self.authority_info_access.reachable_ocsp_urls

    @property
    def has_revocation_info(self) -> bool:
        """False for the 0.09% of leaves the paper calls "never revocable"."""
        return bool(self.crl_urls or self.ocsp_urls)

    def is_fresh(self, when: datetime.datetime) -> bool:
        """Paper §3.3: within [notBefore, notAfter]."""
        return self.not_before <= when <= self.not_after

    def verify_signature(
        self, issuer_public_key: bytes, backend: SignatureBackend | None = None
    ) -> bool:
        backend = backend or default_backend()
        return backend.verify(issuer_public_key, self.tbs.to_der(), self.signature)

    def __hash__(self) -> int:
        return hash((self.tbs.serial_number, self.tbs.issuer, self.tbs.subject,
                     self.tbs.not_before, self.tbs.not_after, self.tbs.public_key))


class CertificateBuilder:
    """Fluent builder; ``sign`` with the issuer's key pair produces the cert.

    Example::

        cert = (CertificateBuilder()
                .subject(Name.make("example.com"))
                .issuer(ca_name)
                .serial_number(42)
                .public_key(leaf_keys.public_key)
                .validity(start, end)
                .crl_urls(["http://crl.ca.example/r0.crl"])
                .sign(ca_keys))
    """

    def __init__(self) -> None:
        self._subject: Name | None = None
        self._issuer: Name | None = None
        self._serial: int | None = None
        self._public_key: bytes | None = None
        self._not_before: datetime.datetime | None = None
        self._not_after: datetime.datetime | None = None
        self._extensions: list[Extension] = []

    def subject(self, name: Name) -> "CertificateBuilder":
        self._subject = name
        return self

    def issuer(self, name: Name) -> "CertificateBuilder":
        self._issuer = name
        return self

    def serial_number(self, serial: int) -> "CertificateBuilder":
        if serial < 0:
            raise ValueError("serial numbers must be non-negative")
        self._serial = serial
        return self

    def public_key(self, key: bytes) -> "CertificateBuilder":
        self._public_key = key
        return self

    def validity(
        self, not_before: datetime.datetime, not_after: datetime.datetime
    ) -> "CertificateBuilder":
        if not_after <= not_before:
            raise ValueError("notAfter must follow notBefore")
        self._not_before = not_before.astimezone(_UTC)
        self._not_after = not_after.astimezone(_UTC)
        return self

    def add_extension(self, extension: Extension) -> "CertificateBuilder":
        self._extensions.append(extension)
        return self

    def ca(self, path_length: int | None = None) -> "CertificateBuilder":
        return self.add_extension(
            BasicConstraints(is_ca=True, path_length=path_length).to_extension()
        )

    def crl_urls(self, urls: list[str]) -> "CertificateBuilder":
        if urls:
            self.add_extension(CrlDistributionPoints(tuple(urls)).to_extension())
        return self

    def ocsp_urls(self, urls: list[str]) -> "CertificateBuilder":
        if urls:
            self.add_extension(AuthorityInfoAccess(ocsp_urls=tuple(urls)).to_extension())
        return self

    def policies(self, policy_oids: list[str]) -> "CertificateBuilder":
        if policy_oids:
            self.add_extension(CertificatePolicies(tuple(policy_oids)).to_extension())
        return self

    def ev(self, policy_oid: str = OID.EV_VERISIGN) -> "CertificateBuilder":
        return self.policies([policy_oid])

    def sign(self, issuer_keys: KeyPair) -> Certificate:
        missing = [
            name
            for name, value in (
                ("subject", self._subject),
                ("issuer", self._issuer),
                ("serial_number", self._serial),
                ("public_key", self._public_key),
                ("validity", self._not_before),
            )
            if value is None
        ]
        if missing:
            raise ValueError(f"builder is missing: {', '.join(missing)}")
        tbs = TbsCertificate(
            serial_number=self._serial,
            issuer=self._issuer,
            subject=self._subject,
            not_before=self._not_before,
            not_after=self._not_after,
            public_key=self._public_key,
            signature_algorithm_oid=issuer_keys.backend.algorithm_oid,
            extensions=tuple(self._extensions),
        )
        return Certificate(tbs=tbs, signature=issuer_keys.sign(tbs.to_der()))
