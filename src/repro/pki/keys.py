"""Key pairs and pluggable signature backends.

The paper's analyses never depend on cryptographic strength, only on
signature *semantics*: a signature made with key A must verify under A's
public key and fail under any other key.  Two backends provide this:

* :class:`SimBackend` -- the default.  Deterministic and very fast; a
  signature is ``SHA-256(public_key || message)``.  Within a closed
  simulation (no adversarial signers) this gives exactly the required
  semantics.  It is of course forgeable by anyone holding the public key;
  this substitution is documented in DESIGN.md.
* :class:`Ed25519Backend` -- real asymmetric signatures via the
  ``cryptography`` package, for small-scale tests that want genuine
  unforgeability.  Optional; importing it without ``cryptography`` raises.

Signature byte lengths are padded to realistic X.509 sizes (default 256
bytes, matching RSA-2048) so that encoded certificate and CRL sizes line up
with the paper's measurements (~38 bytes per CRL entry plus fixed signature
overhead).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = [
    "Ed25519Backend",
    "KeyPair",
    "SignatureBackend",
    "SimBackend",
    "default_backend",
]


class SignatureBackend:
    """Interface for signature schemes."""

    #: dotted OID advertised in signatureAlgorithm fields.
    algorithm_oid: str = "1.2.840.113549.1.1.11"
    #: byte length of produced signatures (for realistic DER sizes).
    signature_size: int = 256

    def generate(self, seed: bytes) -> "KeyPair":
        raise NotImplementedError

    def sign(self, private_key: bytes, message: bytes) -> bytes:
        raise NotImplementedError

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        raise NotImplementedError


class SimBackend(SignatureBackend):
    """Deterministic hash-based simulation of an asymmetric scheme.

    ``public_key = SHA-256("pub" || seed)``; a signature binds the public
    key and the message.  Verification never needs the private key, so it
    behaves like an asymmetric scheme from the verifier's point of view.
    """

    algorithm_oid = "1.2.840.113549.1.1.11"

    def __init__(self, signature_size: int = 256) -> None:
        if signature_size < 32:
            raise ValueError("signature_size must be >= 32 (SHA-256 digest)")
        self.signature_size = signature_size

    def generate(self, seed: bytes) -> "KeyPair":
        private = hashlib.sha256(b"priv" + seed).digest()
        public = hashlib.sha256(b"pub" + seed).digest()
        return KeyPair(public_key=public, private_key=private, backend=self)

    def _core(self, public_key: bytes, message: bytes) -> bytes:
        return hashlib.sha256(b"sig" + public_key + message).digest()

    def sign(self, private_key: bytes, message: bytes) -> bytes:
        # The simulated private key deterministically yields the public key
        # so the signer does not have to carry both around.
        public = self._public_from_private(private_key)
        digest = self._core(public, message)
        # Pad deterministically to the configured signature size.
        pad = hashlib.sha256(b"pad" + digest).digest()
        while len(digest) + len(pad) < self.signature_size:
            pad += hashlib.sha256(pad).digest()
        return (digest + pad)[: self.signature_size]

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        if len(signature) < 32:
            return False
        expected = self._core(public_key, message)
        return hmac.compare_digest(signature[:32], expected)

    @staticmethod
    def _public_from_private(private_key: bytes) -> bytes:
        return hashlib.sha256(b"pub-from" + private_key).digest()

    def generate_pair(self, seed: bytes) -> "KeyPair":
        """Generate a key pair whose private key maps to its public key."""
        private = hashlib.sha256(b"priv" + seed).digest()
        public = self._public_from_private(private)
        return KeyPair(public_key=public, private_key=private, backend=self)


class Ed25519Backend(SignatureBackend):
    """Real Ed25519 signatures via the ``cryptography`` package."""

    algorithm_oid = "1.3.101.112"
    signature_size = 64

    def __init__(self) -> None:
        try:
            from cryptography.hazmat.primitives.asymmetric import ed25519
        except ImportError as exc:  # pragma: no cover - env dependent
            raise ImportError(
                "Ed25519Backend requires the 'cryptography' package"
            ) from exc
        self._ed25519 = ed25519

    def generate(self, seed: bytes) -> "KeyPair":
        material = hashlib.sha256(b"ed25519" + seed).digest()
        private = self._ed25519.Ed25519PrivateKey.from_private_bytes(material)
        from cryptography.hazmat.primitives import serialization

        public = private.public_key().public_bytes(
            serialization.Encoding.Raw, serialization.PublicFormat.Raw
        )
        return KeyPair(public_key=public, private_key=material, backend=self)

    def sign(self, private_key: bytes, message: bytes) -> bytes:
        key = self._ed25519.Ed25519PrivateKey.from_private_bytes(private_key)
        return key.sign(message)

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        from cryptography.exceptions import InvalidSignature

        key = self._ed25519.Ed25519PublicKey.from_public_bytes(public_key)
        try:
            key.verify(signature, message)
        except InvalidSignature:
            return False
        return True


_DEFAULT = SimBackend()


def default_backend() -> SignatureBackend:
    """The process-wide default signature backend (the hash simulator)."""
    return _DEFAULT


@dataclass(frozen=True)
class KeyPair:
    """A signing key pair bound to the backend that created it."""

    public_key: bytes
    private_key: bytes
    backend: SignatureBackend

    def sign(self, message: bytes) -> bytes:
        return self.backend.sign(self.private_key, message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.backend.verify(self.public_key, message, signature)

    @property
    def key_id(self) -> bytes:
        """SHA-256 of the public key; used as SubjectKeyIdentifier and as
        the CRLSet "parent" key (§7.1 of the paper)."""
        return hashlib.sha256(self.public_key).digest()

    @classmethod
    def generate(
        cls, seed: bytes | str, backend: SignatureBackend | None = None
    ) -> "KeyPair":
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        backend = backend or default_backend()
        if isinstance(backend, SimBackend):
            return backend.generate_pair(seed)
        return backend.generate(seed)
