"""Certificate and chain verification.

Mirrors the paper's §3.1 pre-processing: chains are verified relative to a
set of trusted roots, iteratively admitting intermediates; date errors can
be ignored (the paper's scans span 1.5 years, so they configure OpenSSL to
ignore expiry), and revocation is checked separately by the client models.
"""

from __future__ import annotations

import datetime
import enum

from repro.pki.certificate import Certificate
from repro.pki.keys import SignatureBackend, default_backend

__all__ = [
    "ChainVerificationError",
    "VerificationStatus",
    "verify_certificate",
    "verify_chain",
]


class ChainVerificationError(Exception):
    """Raised when a chain cannot be verified and errors are not collected."""


class VerificationStatus(enum.Enum):
    OK = "ok"
    BAD_SIGNATURE = "bad_signature"
    EXPIRED = "expired"
    NOT_YET_VALID = "not_yet_valid"
    ISSUER_MISMATCH = "issuer_mismatch"
    NOT_A_CA = "not_a_ca"
    EMPTY_CHAIN = "empty_chain"
    UNTRUSTED_ROOT = "untrusted_root"


def verify_certificate(
    certificate: Certificate,
    issuer: Certificate,
    at: datetime.datetime | None = None,
    check_dates: bool = True,
    backend: SignatureBackend | None = None,
) -> VerificationStatus:
    """Verify one link: ``certificate`` was signed by ``issuer``.

    Returns the first failing status, or ``OK``.
    """
    backend = backend or default_backend()
    if certificate.issuer != issuer.subject:
        return VerificationStatus.ISSUER_MISMATCH
    if not certificate.is_self_signed and not issuer.is_ca:
        return VerificationStatus.NOT_A_CA
    if not certificate.verify_signature(issuer.public_key, backend):
        return VerificationStatus.BAD_SIGNATURE
    if check_dates and at is not None:
        if at < certificate.not_before:
            return VerificationStatus.NOT_YET_VALID
        if at > certificate.not_after:
            return VerificationStatus.EXPIRED
    return VerificationStatus.OK


def verify_chain(
    chain: list[Certificate],
    trusted_roots: set[bytes] | frozenset[bytes],
    at: datetime.datetime | None = None,
    check_dates: bool = False,
    backend: SignatureBackend | None = None,
) -> VerificationStatus:
    """Verify ``chain`` = [leaf, intermediate..., root-or-last-intermediate].

    ``trusted_roots`` holds fingerprints of trusted root certificates.  As
    in the paper's pipeline, ``check_dates`` defaults to False (scans span
    1.5 years); set ``at`` and ``check_dates=True`` for live validation.

    The chain's last certificate must either be a trusted root itself or be
    directly signed by one present in the chain.
    """
    if not chain:
        return VerificationStatus.EMPTY_CHAIN
    for child, parent in zip(chain, chain[1:]):
        status = verify_certificate(
            child, parent, at=at, check_dates=check_dates, backend=backend
        )
        if status is not VerificationStatus.OK:
            return status
    anchor = chain[-1]
    if anchor.fingerprint not in trusted_roots:
        return VerificationStatus.UNTRUSTED_ROOT
    if check_dates and at is not None:
        # The anchor itself must also be within its validity period.
        if at < anchor.not_before:
            return VerificationStatus.NOT_YET_VALID
        if at > anchor.not_after:
            return VerificationStatus.EXPIRED
    return VerificationStatus.OK
