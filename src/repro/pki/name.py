"""X.501 distinguished names (the subset used by web certificates)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asn1 import der
from repro.asn1.oid import OID, REGISTRY

__all__ = ["Name"]


@dataclass(frozen=True)
class Name:
    """A distinguished name as an ordered tuple of (attribute OID, value).

    Equality is structural, which is what chain building needs: a leaf's
    issuer name must equal the intermediate's subject name byte-for-byte.
    """

    rdns: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def make(
        cls,
        common_name: str,
        organization: str | None = None,
        country: str | None = None,
    ) -> "Name":
        rdns: list[tuple[str, str]] = []
        if country:
            rdns.append((OID.COUNTRY, country))
        if organization:
            rdns.append((OID.ORGANIZATION, organization))
        rdns.append((OID.COMMON_NAME, common_name))
        return cls(tuple(rdns))

    @property
    def common_name(self) -> str | None:
        for oid, value in self.rdns:
            if oid == OID.COMMON_NAME:
                return value
        return None

    @property
    def organization(self) -> str | None:
        for oid, value in self.rdns:
            if oid == OID.ORGANIZATION:
                return value
        return None

    def to_der(self) -> bytes:
        """Encode as RDNSequence (each RDN a single-attribute SET)."""
        rdn_encodings = []
        for oid, value in self.rdns:
            attr = der.encode_sequence(
                der.encode_oid(oid), der.encode_utf8_string(value)
            )
            rdn_encodings.append(der.encode_set(attr))
        return der.encode_sequence(*rdn_encodings)

    @classmethod
    def from_der_node(cls, node: der.DecodedValue) -> "Name":
        rdns: list[tuple[str, str]] = []
        for rdn in node.children:
            for attr in rdn.children:
                oid = attr.children[0].as_oid()
                value = attr.children[1].as_string()
                rdns.append((oid, value))
        return cls(tuple(rdns))

    def __str__(self) -> str:
        return ", ".join(
            f"{REGISTRY.name(oid)}={value}" for oid, value in self.rdns
        )
