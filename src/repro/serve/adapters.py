"""Simulation adapters behind the service core's ports.

The core (:mod:`repro.serve.core`) is sans-io; these adapters plug the
simulation into its three ports:

* :class:`TickClock` -- tick arithmetic over a fixed epoch (ClockPort);
* :class:`MechanismStorage` -- signs deterministic synthetic bodies
  sized from the mechanism's :meth:`serve_model` and the ecosystem's
  exact CRL sizing, and accounts every origin signing (StoragePort);
* :class:`FleetTransport` -- applies the seeded fault plan
  (:mod:`repro.net.faults`) and the cohort's :class:`LinkProfile` to
  each batched delivery, accounting costs into a transport-level
  :class:`~repro.net.fetcher.FetchStats` plus a latency histogram
  (TransportPort).

Fault draws are taken per sub-batch (at most :data:`FAULT_SUBBATCHES`
per request) in request order, and the request stream itself is
fault-independent -- so the per-URL fault streams line up across runs
and the triggered fault sets nest as probability rises, which is what
makes the conformance harness's monotone-p99 check meaningful.
"""

from __future__ import annotations

import datetime
import hashlib

from repro.mechanisms.base import OCSP_RESPONSE_BYTES, RevocationMechanism
from repro.net.faults import FaultPlan
from repro.net.fetcher import FetchStats
from repro.net.transport import LINK_PROFILES, FailureMode, LinkProfile
from repro.serve.core import ServeRequest
from repro.serve.report import LatencyHistogram

__all__ = [
    "FAULT_SUBBATCHES",
    "FleetTransport",
    "MechanismStorage",
    "TickClock",
    "split_batch",
    "synth_body",
]

#: fault decisions sampled per batched request: one decision per
#: sub-batch keeps the per-URL stream consumption bounded and
#: independent of how many clients the batch stands for.
FAULT_SUBBATCHES = 8

_MS = datetime.timedelta(milliseconds=1)


class TickClock:
    """Fixed-epoch tick clock; ``tick_seconds`` per tick."""

    def __init__(
        self, epoch: datetime.datetime, tick_seconds: int = 900
    ) -> None:
        if tick_seconds < 1:
            raise ValueError("tick_seconds must be positive")
        self.epoch = epoch
        self.tick_seconds = tick_seconds

    def at(self, tick: int) -> datetime.datetime:
        return self.epoch + datetime.timedelta(seconds=tick * self.tick_seconds)

    def ticks_for_days(self, days: float) -> int:
        return max(1, round(days * 86_400 / self.tick_seconds))


def synth_body(tag: str, size: int) -> bytes:
    """A deterministic pseudo-body of exactly ``size`` bytes."""
    if size < 0:
        raise ValueError("size must be non-negative")
    if size == 0:
        return b""
    seed = hashlib.sha256(tag.encode("utf-8")).digest()
    reps = -(-size // len(seed))
    return (seed * reps)[:size]


class MechanismStorage:
    """StoragePort over one mechanism's :class:`ServeModel`.

    Every ``body`` call is one origin signing (a cache miss reached the
    signer); ``sign_offline`` accounts signings with no online endpoint
    (short-lived re-issuance).
    """

    def __init__(
        self, mechanism: RevocationMechanism, clock: TickClock
    ) -> None:
        self.mechanism = mechanism
        self.model = mechanism.serve_model()
        self.clock = clock
        self.signings = 0
        self.signed_bytes = 0

    def body(self, endpoint: str, key: str, at: datetime.datetime) -> bytes:
        size = self._size(endpoint, key, at.date())
        self.signings += 1
        self.signed_bytes += size
        return synth_body(f"{self.mechanism.name}/{endpoint}/{key}", size)

    def expiry_tick(self, endpoint: str, tick: int) -> int:
        return tick + self.clock.ticks_for_days(self.model.presign_interval_days)

    def sign_offline(self, signings: int, bytes_each: int) -> None:
        if signings < 0 or bytes_each < 0:
            raise ValueError("offline signing counts must be non-negative")
        self.signings += signings
        self.signed_bytes += signings * bytes_each

    def _size(self, endpoint: str, key: str, on: datetime.date) -> int:
        if endpoint == "crl":
            return self.mechanism.ecosystem.crl_for_url(key).size_bytes(on)
        if endpoint == "aggregate":
            full = self.mechanism.payload_bytes(on)
            if key == "full":
                return max(1, full)
            return max(64, int(full * self.model.delta_fraction))
        if self.model.response_bytes is not None:
            return self.model.response_bytes
        if endpoint == "ocsp":
            # OCSP fallback traffic from non-OCSP models (e.g. the CRL
            # mechanism on CRL-less leaves) is always one pre-signed
            # response, never the mechanism's own artifact.
            return OCSP_RESPONSE_BYTES
        # staple with unsized model: the mechanism's artifact
        # (postcertificate inclusion proofs).
        return max(1, self.mechanism.payload_bytes(on))


def split_batch(count: int, parts: int) -> list[int]:
    """Split ``count`` into ``parts`` near-equal positive chunks
    (largest-remainder; deterministic)."""
    parts = max(1, min(parts, count))
    base, extra = divmod(count, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


class FleetTransport:
    """TransportPort applying faults and link cost to each delivery.

    Each batched request is split into at most :data:`FAULT_SUBBATCHES`
    sub-batches; each sub-batch consumes exactly one fault decision for
    the request's synthetic URL
    (``http://<endpoint>.<mechanism>.serving/<key>``), so per-URL
    streams advance purely with request count.
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        links: dict[str, LinkProfile] | None = None,
        timeout: datetime.timedelta = datetime.timedelta(seconds=10),
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.links = dict(links) if links is not None else dict(LINK_PROFILES)
        self.timeout = timeout
        self.stats = FetchStats()
        self.latency = LatencyHistogram()

    def deliver(
        self,
        request: ServeRequest,
        body: bytes,
        at: datetime.datetime,
        source: str,
    ) -> None:
        link = self.links[request.link]
        url = (
            f"http://{request.endpoint}.{request.mechanism}.serving"
            f"/{request.key}"
        )
        for sub in split_batch(request.count, FAULT_SUBBATCHES):
            decision = self.plan.decide(url, at)
            self.stats.fetches += sub
            self.stats.attempts += sub
            if decision.mode is FailureMode.NO_RESPONSE:
                self.stats.failures += sub
                self.stats.timeouts += sub
                self._observe(self.timeout + decision.extra_latency, sub)
            elif decision.mode is FailureMode.NXDOMAIN:
                self.stats.failures += sub
                self.stats.dns_failures += sub
                self._observe(link.rtt, sub)
            elif decision.mode is FailureMode.HTTP_404:
                self.stats.failures += sub
                self.stats.http_errors += sub
                self._observe(link.rtt + decision.extra_latency, sub)
            else:
                delivered = decision.edit_body(body)
                if len(delivered) < len(body):
                    # truncated mid-transfer: the client downloaded the
                    # prefix but cannot parse it.
                    self.stats.parse_errors += sub
                self.stats.successes += sub
                self.stats.bytes_downloaded += len(delivered) * sub
                self._observe(
                    link.transfer_time(len(delivered)) + decision.extra_latency,
                    sub,
                )

    def _observe(self, latency: datetime.timedelta, count: int) -> None:
        self.stats.latency_total += latency * count
        self.latency.observe(latency / _MS, count)
