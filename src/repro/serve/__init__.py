"""The revocation-status serving layer (docs/SERVING.md).

A deterministic, sans-io request/response service -- pre-signed OCSP
responder, CRL shard endpoints, aggregate (CRLSet/CRLite/OneCRL) delta
distribution -- built as hexagonal ports/adapters:

* :mod:`repro.serve.core` -- the pure protocol core
  (:class:`StatusService`) and its three ports;
* :mod:`repro.serve.caches` -- nextUpdate-aware cache tiers;
* :mod:`repro.serve.adapters` -- simulation adapters (tick clock,
  mechanism-backed storage, fault/link-aware fleet transport);
* :mod:`repro.serve.fleet` -- the million-session synthetic client
  fleet replaying browser cohorts as traffic generators;
* :mod:`repro.serve.report` -- latency quantiles and the per-mechanism
  serving report the ``serving`` experiment digests.

Determinism contract: a serving report is a pure function of
``(corpus, mechanism, FleetConfig)`` -- same seed, byte-identical
report, traffic, and trace.
"""

from __future__ import annotations

from repro.mechanisms.registry import create
from repro.net.faults import FaultPlan
from repro.obs import NULL_OBS, Observability
from repro.serve.adapters import FleetTransport, MechanismStorage, TickClock
from repro.serve.caches import CacheStats, CacheTiers, NextUpdateCache
from repro.serve.core import (
    ServeRequest,
    ServiceStats,
    StatusService,
)
from repro.serve.fleet import (
    ClientFleet,
    Cohort,
    FleetConfig,
    apportion,
    default_cohorts,
)
from repro.serve.report import (
    LatencyHistogram,
    MechanismServingReport,
    render_serving_report,
)

__all__ = [
    "CacheStats",
    "CacheTiers",
    "ClientFleet",
    "Cohort",
    "FleetConfig",
    "FleetTransport",
    "LatencyHistogram",
    "MechanismServingReport",
    "MechanismStorage",
    "NextUpdateCache",
    "ServeRequest",
    "ServiceStats",
    "StatusService",
    "TickClock",
    "apportion",
    "build_service",
    "default_cohorts",
    "render_serving_report",
    "run_fleet",
]


def build_service(
    host,
    mechanism: str,
    *,
    config: FleetConfig | None = None,
    fault_plan: FaultPlan | None = None,
    obs: Observability = NULL_OBS,
) -> ClientFleet:
    """A ready-to-drive fleet (service + adapters) for one mechanism.

    The returned :class:`ClientFleet` exposes the assembled hexagon
    (``.service``, ``.storage``, ``.transport``, ``.caches``); call
    :meth:`~ClientFleet.run` to replay the configured traffic, or drive
    ``.service.handle`` directly with your own requests.
    """
    config = config or FleetConfig()
    if fault_plan is not None:
        from dataclasses import replace

        config = replace(config, fault_plan=fault_plan)
    return ClientFleet(host, create(mechanism, host), config, obs=obs)


def run_fleet(
    host,
    mechanism: str,
    *,
    config: FleetConfig | None = None,
    fault_plan: FaultPlan | None = None,
    obs: Observability = NULL_OBS,
) -> MechanismServingReport:
    """Run one mechanism's fleet end to end and return its report."""
    return build_service(
        host, mechanism, config=config, fault_plan=fault_plan, obs=obs
    ).run()
