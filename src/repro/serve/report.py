"""Serving-side measurement: latency quantiles and per-mechanism report.

The metrics registry's summary instrument tracks count/total/min/max
only; tail latency (p99/p999) needs a distribution, so
:class:`LatencyHistogram` keeps weighted counts in fixed geometric
buckets -- deterministic, mergeable, and O(1) per batched observation
regardless of how many clients the batch stands for.

:class:`MechanismServingReport` is the unit the ``serving`` experiment
renders and digests (one ``render_block`` per registered mechanism,
mirroring the ``mechanisms`` experiment's golden layout).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro.core.report import format_bytes, format_table
from repro.net.fetcher import FetchStats
from repro.serve.caches import CacheStats

__all__ = [
    "LatencyHistogram",
    "MechanismServingReport",
    "render_serving_report",
]


def _bucket_bounds() -> tuple[float, ...]:
    """Geometric upper bounds in ms: 0.5 ms to ~2 min, ~19% steps."""
    bounds = []
    upper = 0.5
    while upper < 120_000.0:
        bounds.append(upper)
        upper *= 2 ** 0.25
    bounds.append(float("inf"))
    return tuple(bounds)


class LatencyHistogram:
    """Weighted latency distribution in fixed geometric buckets."""

    BOUNDS: tuple[float, ...] = _bucket_bounds()

    def __init__(self) -> None:
        self.counts = [0] * len(self.BOUNDS)
        self.total = 0
        self.sum_ms = 0.0

    def observe(self, ms: float, count: int = 1) -> None:
        if ms < 0:
            raise ValueError("latency must be non-negative")
        if count < 1:
            raise ValueError("count must be positive")
        self.counts[bisect.bisect_left(self.BOUNDS, ms)] += count
        self.total += count
        self.sum_ms += ms * count

    def merge(self, other: "LatencyHistogram") -> None:
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum_ms += other.sum_ms

    def quantile(self, q: float) -> float:
        """Upper bound (ms) of the bucket holding the q-quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for bound, count in zip(self.BOUNDS, self.counts):
            seen += count
            if seen >= target and count:
                return bound
        return self.BOUNDS[-2]  # only reachable via rounding at q=1.0

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.quantile(0.50), 3),
            "p99_ms": round(self.quantile(0.99), 3),
            "p999_ms": round(self.quantile(0.999), 3),
        }


def _fmt_ms(ms: float) -> str:
    if math.isinf(ms):
        return "inf"
    if ms >= 1000.0:
        return f"{ms / 1000.0:.2f} s"
    return f"{ms:.1f} ms"


@dataclass
class MechanismServingReport:
    """Everything one fleet run measured for one mechanism."""

    mechanism: str
    title: str
    endpoint: str
    sessions: int
    ticks: int
    tick_seconds: int
    service: dict
    cache_stats: dict[str, CacheStats]
    fetch: FetchStats
    latency: LatencyHistogram
    origin_signings: int
    origin_bytes: int
    notes: dict = field(default_factory=dict)

    @property
    def sim_seconds(self) -> float:
        return float(self.ticks * self.tick_seconds)

    @property
    def requests(self) -> int:
        return self.service.get("requests", 0)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.sim_seconds if self.sim_seconds else 0.0

    @property
    def bytes_per_client(self) -> float:
        return (
            self.fetch.bytes_downloaded / self.sessions if self.sessions else 0.0
        )

    @property
    def availability(self) -> float:
        return (
            self.fetch.successes / self.fetch.fetches if self.fetch.fetches else 1.0
        )

    def render_block(self) -> str:
        """The golden-digest unit for this mechanism."""
        lines = [f"--- {self.mechanism}: {self.title} ---"]
        lines.append(
            f"endpoint {self.endpoint} | sessions {self.sessions:,} | "
            f"ticks {self.ticks} x {self.tick_seconds}s"
        )
        lines.append(
            f"requests {self.requests:,} "
            f"({self.throughput_rps:,.1f} rps sustained)"
        )
        if self.fetch.fetches:
            lines.append(
                f"delivered {self.fetch.successes:,} / {self.fetch.fetches:,} "
                f"({self.availability:.2%}); "
                f"timeouts {self.fetch.timeouts:,}, "
                f"dns {self.fetch.dns_failures:,}, "
                f"http {self.fetch.http_errors:,}, "
                f"parse {self.fetch.parse_errors:,}"
            )
            lines.append(
                f"latency p50 {_fmt_ms(self.latency.quantile(0.50))}, "
                f"p99 {_fmt_ms(self.latency.quantile(0.99))}, "
                f"p999 {_fmt_ms(self.latency.quantile(0.999))}"
            )
            lines.append(
                f"bytes {format_bytes(self.fetch.bytes_downloaded)} total, "
                f"{self.bytes_per_client:,.1f} B/client"
            )
        else:
            lines.append("no online requests (no serving endpoint traffic)")
        lines.append(
            f"origin signings {self.origin_signings:,} "
            f"({format_bytes(self.origin_bytes)} signed)"
        )
        for name, stats in sorted(self.cache_stats.items()):
            if stats.lookups == 0:
                continue
            lines.append(
                f"cache[{name}] hits {stats.hits:,} / {stats.lookups:,} "
                f"({stats.hit_rate:.2%}); evictions {stats.evictions:,}, "
                f"expired {stats.expirations:,}"
            )
        for key in sorted(self.notes):
            lines.append(f"{key}: {self.notes[key]}")
        return "\n".join(lines)


def render_serving_report(reports: list[MechanismServingReport]) -> str:
    """The full serve-bench report: summary table + per-mechanism blocks."""
    rows = []
    for report in reports:
        rows.append(
            [
                report.mechanism,
                report.endpoint,
                f"{report.requests:,}",
                f"{report.throughput_rps:,.1f}",
                f"{_fmt_ms(report.latency.quantile(0.99))}",
                f"{report.bytes_per_client:,.1f}",
                f"{report.origin_signings:,}",
            ]
        )
    table = format_table(
        [
            "mechanism",
            "endpoint",
            "requests",
            "rps",
            "p99",
            "B/client",
            "signings",
        ],
        rows,
    )
    blocks = "\n\n".join(report.render_block() for report in reports)
    return f"{table}\n\n{blocks}"
