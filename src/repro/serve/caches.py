"""Server-side caching tiers with nextUpdate-aware eviction.

A revocation responder's cache is unusual: every entry carries an
explicit expiry (the pre-signed response's nextUpdate), and an entry
past its nextUpdate is *worse* than a miss -- clients reject stale
proofs.  :class:`NextUpdateCache` therefore evicts the soonest-expiring
entry first (the one with the least remaining useful life), instead of
LRU, and never serves an expired body.

Everything here is tick-clocked and allocation-order free: eviction
order is a pure function of ``(expiry_tick, key)``, so two runs with the
same request stream produce byte-identical cache statistics
(``tests/serve/test_caches.py`` locks the invariants down with seeded
hypothesis properties).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["CacheStats", "CacheTiers", "NextUpdateCache"]


@dataclass
class CacheStats:
    """Running totals for one cache tier."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    bytes_served: int = 0
    bytes_inserted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "bytes_served": self.bytes_served,
            "bytes_inserted": self.bytes_inserted,
        }


@dataclass(frozen=True)
class _Entry:
    body: bytes
    expires_tick: int


class NextUpdateCache:
    """A bounded cache keyed by artifact, evicting soonest-expiring first.

    ``max_entries`` and/or ``max_bytes`` bound the cache; both ``None``
    means unbounded.  Expiry is in ticks: an entry with
    ``expires_tick <= now_tick`` is never served -- it is dropped on
    access and counted as an expiration plus a miss.

    Eviction uses a lazy heap keyed ``(expires_tick, key)``: stale heap
    records (overwritten or already-removed entries) are skipped on pop,
    and the key tie-break keeps eviction order deterministic.
    """

    def __init__(
        self,
        name: str,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.name = name
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: dict[str, _Entry] = {}
        self._heap: list[tuple[int, str]] = []
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str, now_tick: int) -> bytes | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.expires_tick <= now_tick:
            self._remove(key, entry)
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_served += len(entry.body)
        return entry.body

    def put(self, key: str, body: bytes, expires_tick: int) -> None:
        old = self._entries.get(key)
        if old is not None:
            self._remove(key, old)
        entry = _Entry(body=body, expires_tick=expires_tick)
        self._entries[key] = entry
        self._bytes += len(body)
        heapq.heappush(self._heap, (expires_tick, key))
        self.stats.insertions += 1
        self.stats.bytes_inserted += len(body)
        self._evict()

    def _remove(self, key: str, entry: _Entry) -> None:
        del self._entries[key]
        self._bytes -= len(entry.body)

    def _over_capacity(self) -> bool:
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_bytes is not None and self._bytes > self.max_bytes:
            return True
        return False

    def _evict(self) -> None:
        while self._over_capacity() and self._heap:
            expires_tick, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry.expires_tick != expires_tick:
                continue  # stale heap record (overwritten or removed)
            self._remove(key, entry)
            self.stats.evictions += 1


class CacheTiers:
    """The named cache tiers one :class:`~repro.serve.core.StatusService`
    runs: one tier per endpoint class that benefits from caching
    (``issuance`` endpoints never cache -- every signing is fresh)."""

    def __init__(self, tiers: dict[str, NextUpdateCache]) -> None:
        self.tiers = dict(tiers)

    @classmethod
    def default(cls) -> "CacheTiers":
        return cls(
            {
                # pre-signed OCSP responses: many small bodies.
                "ocsp": NextUpdateCache("ocsp", max_entries=65_536),
                # CRL shards: few large bodies, bounded by size.
                "crl": NextUpdateCache("crl", max_bytes=64 * 1024 * 1024),
                # nginx-style staple reuse: one staple per certificate.
                "staple": NextUpdateCache("staple", max_entries=65_536),
                # aggregate blobs + deltas: a handful of artifacts.
                "aggregate": NextUpdateCache("aggregate", max_entries=64),
            }
        )

    def for_endpoint(self, endpoint: str) -> NextUpdateCache | None:
        return self.tiers.get(endpoint)

    def stats(self) -> dict[str, CacheStats]:
        return {name: tier.stats for name, tier in sorted(self.tiers.items())}
