"""The synthetic client fleet: browser populations as traffic generators.

Millions of sessions cannot be simulated one by one, so the fleet drives
the service with *batched representative sessions*: sessions are
apportioned over browser cohorts (derived from the §6 browser matrix:
one cohort per engine, mobile engines on the constrained link and --
per the paper's headline -- checking nothing), then over simulated
ticks by a seeded activity curve, and each ``(cohort, tick)`` cell is
played by a few representative sessions whose request stream is scaled
by the number of clients the representative stands for.

Every random draw comes from :func:`repro.scan.streams.substream` keyed
``(seed, "serve", mechanism, cohort, tick, rep)``, so the traffic --
and therefore the serving report -- is a pure function of
``(corpus, mechanism, FleetConfig)``: same seed, byte-identical report.

Apportionment is largest-remainder (:func:`apportion`), the same
deterministic scheme the shard generator uses for shard sizing: exact
totals, no drift, no float accumulation order dependence.
"""

from __future__ import annotations

import datetime
import itertools
from dataclasses import dataclass, field, replace

from repro.browsers.registry import all_browsers
from repro.mechanisms.base import (
    MechanismHost,
    RevocationMechanism,
    SessionState,
)
from repro.net.faults import FaultPlan
from repro.obs import NULL_OBS, Observability
from repro.scan.records import LeafRecord
from repro.scan.streams import substream
from repro.serve.adapters import FleetTransport, MechanismStorage, TickClock
from repro.serve.caches import CacheTiers
from repro.serve.core import ServeRequest, StatusService
from repro.serve.report import MechanismServingReport

__all__ = [
    "ClientFleet",
    "Cohort",
    "FleetConfig",
    "ISSUED_CERT_BYTES",
    "apportion",
    "default_cohorts",
]

#: encoded size of one issued certificate -- the unit of short-lived
#: re-issuance signing load (typical DER leaf, ~1.2 KB).
ISSUED_CERT_BYTES = 1200


def apportion(total: int, weights: list[float]) -> list[int]:
    """Split ``total`` into integer shares proportional to ``weights``.

    Largest-remainder: exact sum, deterministic ties (earlier index
    wins), zero weights get zero.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    scale = sum(weights)
    if total == 0 or scale == 0 or not weights:
        return [0] * len(weights)
    quotas = [total * w / scale for w in weights]
    shares = [int(q) for q in quotas]
    order = sorted(
        range(len(weights)), key=lambda i: (shares[i] - quotas[i], i)
    )
    for i in order[: total - sum(shares)]:
        shares[i] += 1
    return shares


@dataclass(frozen=True)
class Cohort:
    """One client population: an engine family on one link profile."""

    name: str
    #: relative share of the fleet's sessions.
    share: float
    #: named :data:`~repro.net.transport.LINK_PROFILES` entry.
    link: str = "broadband"
    #: site visits per browsing session.
    sites_per_session: int = 10
    #: does this population perform revocation checks at all?  Mobile
    #: cohorts default to False -- the paper's §6.4 headline.
    checking: bool = True


def default_cohorts() -> tuple[Cohort, ...]:
    """Cohorts derived from the §6 browser matrix: one per engine
    family, weighted by how many (version, OS) combinations the matrix
    carries, mobile families on the constrained link and non-checking."""
    counts: dict[str, int] = {}
    mobile: dict[str, bool] = {}
    for browser in all_browsers():
        counts[browser.name] = counts.get(browser.name, 0) + 1
        mobile[browser.name] = browser.is_mobile
    cohorts = []
    for name, count in counts.items():  # dict preserves matrix order
        if mobile[name]:
            cohorts.append(
                Cohort(
                    name=name,
                    share=float(count),
                    link="mobile",
                    sites_per_session=6,
                    checking=False,
                )
            )
        else:
            cohorts.append(Cohort(name=name, share=float(count)))
    return tuple(cohorts)


@dataclass(frozen=True)
class FleetConfig:
    """Everything that shapes one fleet run (hashable by value, so two
    equal configs against the same corpus give byte-identical reports)."""

    sessions: int = 1_000_000
    ticks: int = 48
    tick_seconds: int = 900
    #: representative sessions played per (cohort, tick) cell.
    representatives: int = 3
    #: popularity catalog: the top-N alive certificates by Alexa rank.
    catalog_size: int = 4096
    seed: int = 20151028
    fault_plan: FaultPlan | None = None
    cohorts: tuple[Cohort, ...] = field(default_factory=default_cohorts)

    def __post_init__(self) -> None:
        if self.sessions < 0:
            raise ValueError("sessions must be non-negative")
        if self.ticks < 1 or self.tick_seconds < 1:
            raise ValueError("ticks and tick_seconds must be positive")
        if self.representatives < 1:
            raise ValueError("representatives must be positive")
        if self.catalog_size < 1:
            raise ValueError("catalog_size must be positive")
        if not self.cohorts:
            raise ValueError("at least one cohort required")

    @property
    def sim_days(self) -> float:
        return self.ticks * self.tick_seconds / 86_400

    def with_sessions(self, sessions: int) -> "FleetConfig":
        return replace(self, sessions=sessions)


class ClientFleet:
    """Drives one mechanism's service with the configured populations."""

    def __init__(
        self,
        host: MechanismHost,
        mechanism: RevocationMechanism,
        config: FleetConfig,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.host = host
        self.mechanism = mechanism
        self.config = config
        self.obs = obs
        self.model = mechanism.serve_model()
        end = host.calibration.measurement_end
        self.clock = TickClock(
            epoch=datetime.datetime.combine(end, datetime.time()),
            tick_seconds=config.tick_seconds,
        )
        self.storage = MechanismStorage(mechanism, self.clock)
        self.transport = FleetTransport(plan=config.fault_plan)
        self.caches = CacheTiers.default()
        self.service = StatusService(
            storage=self.storage,
            clock=self.clock,
            transport=self.transport,
            caches=self.caches,
        )

    # -- traffic shape -----------------------------------------------------

    def _catalog(self) -> tuple[list[LeafRecord], list[float]]:
        """The popularity catalog and its cumulative sampling weights."""
        end = self.host.calibration.measurement_end
        alive = self.host.ecosystem.alive_leaves(end)
        ranked = [leaf for leaf in alive if leaf.alexa_rank is not None]
        ranked.sort(key=lambda leaf: (leaf.alexa_rank, leaf.cert_id))
        catalog = ranked[: self.config.catalog_size]
        if not catalog:
            catalog = sorted(alive, key=lambda leaf: leaf.cert_id)
            catalog = catalog[: self.config.catalog_size]
            weights = [1.0] * len(catalog)
        else:
            weights = [1.0 / leaf.alexa_rank for leaf in catalog]
        return catalog, list(itertools.accumulate(weights))

    def _tick_shares(self, cohort: Cohort, sessions: int) -> list[int]:
        """Sessions per tick: a seeded activity curve, exact total."""
        rng = substream(
            self.config.seed, "serve", self.mechanism.name, cohort.name,
            "activity",
        )
        weights = [0.5 + rng.random() for _ in range(self.config.ticks)]
        return apportion(sessions, weights)

    def _visit_requests(
        self, leaf: LeafRecord, cost
    ) -> tuple[tuple[str, str], ...]:
        """Map one client-side check onto the server-side requests it
        causes -- the byte-parity seam the conformance harness pins."""
        if not cost.fetched:
            if (
                self.model.endpoint == "staple"
                and not cost.cache_hit
                and self.mechanism.covers(leaf)
            ):
                # the web server replays its cached staple/proof into
                # the handshake; refreshing it hits the staple tier.
                return (("staple", f"cert/{leaf.cert_id}"),)
            return ()
        if self.model.endpoint == "crl" and leaf.crl_url is not None:
            return (("crl", leaf.crl_url),)
        # every other fetch is one pre-signed OCSP response (including
        # the CRL and stapling mechanisms' OCSP fallbacks).
        return (("ocsp", f"cert/{leaf.cert_id}"),)

    # -- the run -----------------------------------------------------------

    def run(self) -> MechanismServingReport:
        config = self.config
        with self.obs.tracer.span(
            "serve_fleet",
            mechanism=self.mechanism.name,
            sessions=config.sessions,
            ticks=config.ticks,
        ):
            cohort_sessions = apportion(
                config.sessions, [c.share for c in config.cohorts]
            )
            if self.model.endpoint in ("ocsp", "crl", "staple"):
                self._run_request_driven(cohort_sessions)
            elif self.model.endpoint == "aggregate":
                self._run_aggregate(cohort_sessions)
            elif self.model.endpoint == "issuance":
                self._run_issuance()
            self.transport.stats.publish(
                self.obs.metrics,
                component="serve",
                mechanism=self.mechanism.name,
            )
            self.obs.metrics.counter(
                "serve.requests", mechanism=self.mechanism.name
            ).inc(self.service.stats.requests)
        return self._report()

    def _run_request_driven(self, cohort_sessions: list[int]) -> None:
        catalog, cum_weights = self._catalog()
        if not catalog:
            return
        for cohort, sessions in zip(self.config.cohorts, cohort_sessions):
            if not cohort.checking or sessions == 0:
                continue
            for tick, clients in enumerate(self._tick_shares(cohort, sessions)):
                if clients == 0:
                    continue
                reps = min(clients, self.config.representatives)
                for rep, stands_for in enumerate(
                    apportion(clients, [1.0] * reps)
                ):
                    self._play_session(
                        cohort, tick, rep, stands_for, catalog, cum_weights
                    )

    def _play_session(
        self,
        cohort: Cohort,
        tick: int,
        rep: int,
        stands_for: int,
        catalog: list[LeafRecord],
        cum_weights: list[float],
    ) -> None:
        rng = substream(
            self.config.seed, "serve", self.mechanism.name, cohort.name,
            tick, rep,
        )
        sites = rng.choices(
            catalog, cum_weights=cum_weights, k=cohort.sites_per_session
        )
        session = SessionState()
        for leaf in sites:
            cost = self.mechanism.check_cost(leaf, session)
            for endpoint, key in self._visit_requests(leaf, cost):
                self.service.handle(
                    ServeRequest(
                        endpoint=endpoint,
                        key=key,
                        tick=tick,
                        mechanism=self.mechanism.name,
                        count=stands_for,
                        link=cohort.link,
                    )
                )

    def _run_aggregate(self, cohort_sessions: list[int]) -> None:
        pull_interval = self.model.pull_interval_days or 1.0
        for cohort, sessions in zip(self.config.cohorts, cohort_sessions):
            if not cohort.checking or sessions == 0:
                continue
            pulls = round(sessions * self.config.sim_days / pull_interval)
            tick_pulls = apportion(pulls, [1.0] * self.config.ticks)
            # one bootstrap fetch of the full artifact per cohort ...
            self.service.handle(
                ServeRequest(
                    endpoint="aggregate",
                    key="full",
                    tick=0,
                    mechanism=self.mechanism.name,
                    count=1,
                    link=cohort.link,
                )
            )
            # ... then periodic delta pulls on the updater cadence.
            for tick, count in enumerate(tick_pulls):
                if count == 0:
                    continue
                self.service.handle(
                    ServeRequest(
                        endpoint="aggregate",
                        key="delta",
                        tick=tick,
                        mechanism=self.mechanism.name,
                        count=count,
                        link=cohort.link,
                    )
                )

    def _run_issuance(self) -> None:
        """Short-lived certificates: no endpoint, pure signing load --
        every alive certificate re-issued once per lifetime."""
        end = self.host.calibration.measurement_end
        alive = len(self.host.ecosystem.alive_ids(end))
        lifetime = self.model.presign_interval_days
        signings = round(alive * self.config.sim_days / lifetime)
        self.storage.sign_offline(signings, ISSUED_CERT_BYTES)

    def _report(self) -> MechanismServingReport:
        return MechanismServingReport(
            mechanism=self.mechanism.name,
            title=self.mechanism.title,
            endpoint=self.model.endpoint,
            sessions=self.config.sessions,
            ticks=self.config.ticks,
            tick_seconds=self.config.tick_seconds,
            service=self.service.stats.as_dict(),
            cache_stats=self.caches.stats(),
            fetch=self.transport.stats,
            latency=self.transport.latency,
            origin_signings=self.storage.signings,
            origin_bytes=self.storage.signed_bytes,
        )
