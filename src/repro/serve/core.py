"""The sans-io protocol core of the revocation-status service.

:class:`StatusService` is a pure request/response function: it maps
``(request, sim_tick)`` to response bytes using three ports it never
looks behind --

* :class:`ClockPort` turns ticks into simulated instants,
* :class:`StoragePort` signs/loads response bodies and knows their
  nextUpdate horizon,
* :class:`TransportPort` delivers the bytes to the requesting clients
  (and is where links, faults, and latency live).

The core itself performs no I/O, reads no clock, and draws no
randomness, so any transport (the fleet driver, a unit test, a future
ASGI adapter) can drive it and two equal request streams produce
byte-identical responses and statistics.  Adapters for the simulation
live in :mod:`repro.serve.adapters`.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Protocol

from repro.serve.caches import CacheTiers

__all__ = [
    "ClockPort",
    "ServeRequest",
    "ServiceStats",
    "StatusService",
    "StoragePort",
    "TransportPort",
]


@dataclass(frozen=True)
class ServeRequest:
    """One batched request: ``count`` identical lookups from one client
    cohort in one simulated tick."""

    #: endpoint class ("ocsp", "crl", "staple", "aggregate").
    endpoint: str
    #: artifact key within the endpoint (cert id, CRL URL, blob name).
    key: str
    #: simulated tick the requests arrive in.
    tick: int
    #: registry name of the mechanism being served.
    mechanism: str
    #: how many identical client lookups this request stands for.
    count: int = 1
    #: named link profile of the requesting cohort.
    link: str = "broadband"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be positive")
        if self.tick < 0:
            raise ValueError("tick must be non-negative")


class ClockPort(Protocol):
    """Ticks -> simulated instants."""

    def at(self, tick: int) -> datetime.datetime: ...


class StoragePort(Protocol):
    """Signs (or loads) response bodies and knows their expiry."""

    def body(self, endpoint: str, key: str, at: datetime.datetime) -> bytes: ...

    def expiry_tick(self, endpoint: str, tick: int) -> int: ...


class TransportPort(Protocol):
    """Delivers response bytes to the requesting clients."""

    def deliver(
        self,
        request: ServeRequest,
        body: bytes,
        at: datetime.datetime,
        source: str,
    ) -> None: ...


@dataclass
class ServiceStats:
    """What the service core itself observed (transport-independent)."""

    requests: int = 0
    presigned_hits: int = 0
    origin_misses: int = 0
    by_endpoint: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "presigned_hits": self.presigned_hits,
            "origin_misses": self.origin_misses,
            "by_endpoint": dict(sorted(self.by_endpoint.items())),
        }


class StatusService:
    """The hexagon: cache tiers in front of origin signing.

    ``handle`` looks the artifact up in the endpoint's cache tier,
    falls back to the storage port (one origin signing) on a miss,
    inserts the fresh body with its nextUpdate expiry, and hands the
    bytes to the transport.  All branching is on request content and
    tick arithmetic -- nothing else.
    """

    def __init__(
        self,
        storage: StoragePort,
        clock: ClockPort,
        transport: TransportPort,
        caches: CacheTiers | None = None,
    ) -> None:
        self.storage = storage
        self.clock = clock
        self.transport = transport
        self.caches = caches if caches is not None else CacheTiers.default()
        self.stats = ServiceStats()

    def handle(self, request: ServeRequest) -> bytes:
        at = self.clock.at(request.tick)
        self.stats.requests += request.count
        self.stats.by_endpoint[request.endpoint] = (
            self.stats.by_endpoint.get(request.endpoint, 0) + request.count
        )
        tier = self.caches.for_endpoint(request.endpoint)
        body = tier.get(request.key, request.tick) if tier is not None else None
        if body is None:
            body = self.storage.body(request.endpoint, request.key, at)
            if tier is not None:
                tier.put(
                    request.key,
                    body,
                    self.storage.expiry_tick(request.endpoint, request.tick),
                )
            self.stats.origin_misses += request.count
            source = "origin"
        else:
            self.stats.presigned_hits += request.count
            source = "presigned"
        self.transport.deliver(request, body, at, source)
        return body
