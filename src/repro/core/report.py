"""Plain-text rendering of tables, series, and CDFs.

Every experiment prints its figure/table through these helpers so bench
output is uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "render_cdf", "render_series", "format_bytes"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """A simple aligned ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    points: Iterable[tuple[object, float]],
    title: str = "",
    value_format: str = "{:.4f}",
    width: int = 40,
) -> str:
    """A labelled value series with a proportional ASCII bar."""
    points = list(points)
    if not points:
        return title + "\n(empty series)"
    peak = max(value for _, value in points) or 1.0
    lines = [title] if title else []
    for label, value in points:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label!s:>12}  {value_format.format(value):>10}  {bar}")
    return "\n".join(lines)


def render_cdf(
    cdf,
    title: str = "",
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
    value_format: str = "{:.1f}",
) -> str:
    """Key quantiles of a :class:`repro.core.stats.Cdf`."""
    lines = [title] if title else []
    if len(cdf) == 0:
        lines.append("  (empty population)")
        return "\n".join(lines)
    for q in quantiles:
        lines.append(f"  p{int(q * 100):>2}: {value_format.format(cdf.quantile(q))}")
    return "\n".join(lines)


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (B / KB / MB)."""
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.1f} MB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.1f} KB"
    return f"{nbytes:.0f} B"
