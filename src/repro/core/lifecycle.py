"""Certificate lifecycle classification (paper §3.3, Figure 1).

The paper defines two interleaved timelines per certificate -- *fresh*
(between the validity dates) and *alive* (advertised by hosts) -- and
sketches three shapes in Figure 1: the typical certificate (lifetime
inside the fresh period), the revoked certificate that stops being
advertised, and the atypical certificate still advertised after it was
revoked *and* expired (e.g. ``gamespace.adobe.com``, §4.1).

:func:`classify` names a leaf's shape; :func:`lifecycle_census` counts
them over an ecosystem; :func:`render_lifecycle` draws one certificate's
Figure 1-style timeline in ASCII.
"""

from __future__ import annotations

import datetime
import enum
from collections import Counter

from repro.scan.ecosystem import Ecosystem
from repro.scan.records import LeafRecord

__all__ = ["LifecycleShape", "classify", "lifecycle_census", "render_lifecycle"]


class LifecycleShape(enum.Enum):
    """Figure 1's certificate shapes."""

    TYPICAL = "typical"  # alive period inside the fresh period
    REVOKED_RETIRED = "revoked, then retired"
    REVOKED_STILL_ADVERTISED = "revoked but still advertised"
    EXPIRED_STILL_ADVERTISED = "expired but still advertised"
    #: the paper's gamespace.adobe.com case: revoked AND expired AND alive.
    ATYPICAL = "revoked and expired, still advertised"


def classify(leaf: LeafRecord, on: datetime.date) -> LifecycleShape:
    """Name the leaf's Figure 1 shape as observed on date ``on``."""
    alive = leaf.is_alive(on)
    expired = on > leaf.not_after
    revoked = leaf.is_revoked_by(on)
    if alive and revoked and expired:
        return LifecycleShape.ATYPICAL
    if alive and revoked:
        return LifecycleShape.REVOKED_STILL_ADVERTISED
    if alive and expired:
        return LifecycleShape.EXPIRED_STILL_ADVERTISED
    if revoked:
        return LifecycleShape.REVOKED_RETIRED
    return LifecycleShape.TYPICAL


def lifecycle_census(
    ecosystem: Ecosystem, on: datetime.date | None = None
) -> Counter:
    """Count Figure 1 shapes across the Leaf Set on date ``on``."""
    on = on or ecosystem.calibration.measurement_end
    return Counter(classify(leaf, on) for leaf in ecosystem.leaves)


def render_lifecycle(leaf: LeafRecord, width: int = 60) -> str:
    """ASCII rendering of one certificate's two timelines (Figure 1)."""
    events = [leaf.not_before, leaf.not_after, leaf.birth, leaf.death]
    if leaf.revoked_at is not None:
        events.append(leaf.revoked_at)
    start = min(events)
    end = max(events)
    span = max(1, (end - start).days)

    def column(day: datetime.date) -> int:
        return min(width - 1, round((day - start).days / span * (width - 1)))

    def bar(from_day: datetime.date, to_day: datetime.date, glyph: str) -> str:
        cells = [" "] * width
        lo, hi = column(from_day), column(to_day)
        for i in range(lo, hi + 1):
            cells[i] = glyph
        return "".join(cells)

    lines = [
        f"fresh  |{bar(leaf.not_before, leaf.not_after, '=')}|  "
        f"{leaf.not_before} .. {leaf.not_after}",
        f"alive  |{bar(leaf.birth, leaf.death, '#')}|  "
        f"{leaf.birth} .. {leaf.death}",
    ]
    if leaf.revoked_at is not None:
        cells = [" "] * width
        cells[column(leaf.revoked_at)] = "R"
        lines.append(f"revoked|{''.join(cells)}|  {leaf.revoked_at}")
    return "\n".join(lines)
