"""The end-to-end measurement study.

:class:`MeasurementStudy` is the public façade: it owns one ecosystem and
lazily builds each measurement artefact (scans, CRL crawl, handshake scan,
CRLSet history and analyses) exactly once.  The experiment modules and the
examples all drive it.

Typical use::

    from repro import MeasurementStudy
    study = MeasurementStudy(scale=0.002)
    series = study.revocation_series()     # Figure 2
    report = study.crlset_coverage()       # §7.2
"""

from __future__ import annotations

import datetime
import os
from functools import cached_property
from pathlib import Path

from repro.core.timelines import RevocationSeries, revocation_series
from repro.crlset.builder import CrlSetBuilder, CrlSetHistory
from repro.crlset.coverage import CoverageReport, analyze_coverage
from repro.crlset.dynamics import DynamicsReport, analyze_dynamics
from repro.obs import Observability, obs_from_env
from repro.scan.calibration import Calibration, PaperTargets
from repro.scan.crawl_index import CrawlIndex
from repro.scan.crawler import CrlCrawler
from repro.scan.ecosystem import Ecosystem
from repro.scan.scanner import Rapid7Scanner, ScanSnapshot
from repro.scan.tls_scanner import (
    StaplingProbeResult,
    StaplingSummary,
    TlsHandshakeScanner,
)

__all__ = ["MeasurementStudy"]


class MeasurementStudy:
    """Reproduces the paper's measurements over a synthetic ecosystem.

    ``cache_dir`` opts into the on-disk corpus store: the generated
    ecosystem is persisted keyed on the calibration digest, so repeated
    runs with the same scale/seed/calibration load out-of-core instead of
    regenerating.  ``shards``/``gen_workers`` control sharded substrate
    generation (corpus bytes are identical for any shard/worker count).
    """

    def __init__(
        self,
        scale: float = 0.002,
        seed: int = 20151028,
        calibration: Calibration | None = None,
        cache_dir: str | Path | None = None,
        fault_profile: str | None = None,
        fault_seed: int | None = None,
        obs: Observability | None = None,
        shards: int = 1,
        gen_workers: int | None = None,
        exec_fault_profile: str | None = None,
        exec_fault_seed: int | None = None,
        mechanisms: tuple[str, ...] | list[str] | None = None,
    ) -> None:
        self.calibration = calibration or Calibration(scale=scale, seed=seed)
        self.targets: PaperTargets = self.calibration.targets
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.shards = shards
        self.gen_workers = gen_workers
        # Observability (docs/OBSERVABILITY.md).  Defaults to the shared
        # disabled instance unless REPRO_TRACE is set; like fault settings
        # it never enters the calibration digest -- tracing must not change
        # a single report byte.
        self.obs = obs if obs is not None else obs_from_env()
        # Fault injection (docs/ROBUSTNESS.md).  The profile names an
        # entry in repro.net.faults.PROFILES; REPRO_FAULT_PROFILE lets CI
        # run the whole suite degraded without touching call sites.  The
        # settings deliberately do not enter the calibration digest: the
        # generated ecosystem is identical, only the simulated clients'
        # network weather changes.
        if fault_profile is None:
            fault_profile = os.environ.get("REPRO_FAULT_PROFILE", "none")
        self.fault_profile = fault_profile
        self.fault_seed = (
            fault_seed if fault_seed is not None else self.calibration.seed
        )
        # Process/storage fault injection (repro.exec.faults): worker
        # kills, hangs, parent aborts, corrupt store writes.  Honoured
        # only by the supervised execution paths (run_supervised and the
        # supervised corpus build); like the network-fault settings it
        # stays out of the calibration digest -- and unlike them it never
        # changes results at all, only how the run executes.
        if exec_fault_profile is None:
            exec_fault_profile = os.environ.get(
                "REPRO_EXEC_FAULT_PROFILE", "none"
            )
        self.exec_fault_profile = exec_fault_profile
        self.exec_fault_seed = (
            exec_fault_seed
            if exec_fault_seed is not None
            else self.calibration.seed
        )
        # Restricts (and re-orders) the revocation-mechanism sweep
        # (repro.mechanisms); None sweeps the whole registry.  Like the
        # fault settings this never enters the calibration digest -- the
        # substrate is identical, only which mechanisms get measured
        # changes.
        self.mechanism_names = tuple(mechanisms) if mechanisms else None

    # -- substrate ----------------------------------------------------------

    @cached_property
    def ecosystem(self) -> Ecosystem:
        with self.obs.tracer.span(
            "substrate.ecosystem", shards=self.shards
        ) as span:
            if self.cache_dir is not None:
                from repro.scan.datastore import ArtifactCache

                cache = ArtifactCache(self.cache_dir, obs=self.obs)
                cached = cache.load_ecosystem(self.calibration)
                if cached is not None:
                    span.set("source", "store")
                    return cached
                ecosystem = Ecosystem(
                    self.calibration,
                    shards=self.shards,
                    workers=self.gen_workers,
                )
                cache.store_ecosystem(self.calibration, ecosystem)
                span.set("source", "generated")
                return ecosystem
            span.set("source", "generated")
            return Ecosystem(
                self.calibration, shards=self.shards, workers=self.gen_workers
            )

    @cached_property
    def crawl_index(self) -> CrawlIndex:
        """One set of per-CRL event timelines, shared by the crawler, the
        CRLSet builder, and the dynamics analysis."""
        return CrawlIndex(self.ecosystem)

    @cached_property
    def scanner(self) -> Rapid7Scanner:
        return Rapid7Scanner(self.ecosystem, obs=self.obs)

    @cached_property
    def crawler(self) -> CrlCrawler:
        return CrlCrawler(self.ecosystem, index=self.crawl_index)

    @cached_property
    def tls_scanner(self) -> TlsHandshakeScanner:
        return TlsHandshakeScanner(self.ecosystem, obs=self.obs)

    # -- §3: dataset --------------------------------------------------------

    @cached_property
    def scans(self) -> list[ScanSnapshot]:
        return self.scanner.run_all()

    def dataset_summary(self) -> dict[str, float]:
        """§3's composition statistics (scaled counts and fractions)."""
        eco = self.ecosystem
        leaves = eco.leaves
        last_scan = self.scans[-1]
        n = len(leaves)
        with_crl = sum(1 for leaf in leaves if leaf.has_crl)
        with_ocsp = sum(1 for leaf in leaves if leaf.has_ocsp)
        neither = sum(1 for leaf in leaves if not leaf.has_revocation_info)
        int_crl = sum(1 for rec in eco.intermediates if rec.has_crl)
        int_ocsp = sum(1 for rec in eco.intermediates if rec.has_ocsp)
        int_neither = sum(
            1 for rec in eco.intermediates if not rec.has_revocation_info
        )
        ocsp_urls = {leaf.ocsp_url for leaf in leaves if leaf.ocsp_url}
        return {
            "leaf_set_size": n,
            "unique_certs_seen": n + eco.invalid_cert_count,
            "alive_in_last_scan": len(last_scan),
            "alive_in_last_scan_fraction": len(last_scan) / n,
            "intermediate_set_size": len(eco.intermediates),
            "root_store_size": len(eco.roots),
            "leaf_with_crl": with_crl / n,
            "leaf_with_ocsp": with_ocsp / n,
            "leaf_with_neither": neither / n,
            "intermediate_with_crl": int_crl / len(eco.intermediates),
            "intermediate_with_ocsp": int_ocsp / len(eco.intermediates),
            "intermediate_with_neither": int_neither / len(eco.intermediates),
            "unique_crls": len(eco.crls),
            "unique_ocsp_responders": len(ocsp_urls),
        }

    # -- §4: website administrators ------------------------------------------

    def revocation_series(
        self,
        start: datetime.date = datetime.date(2014, 1, 1),
        end: datetime.date | None = None,
        step_days: int = 7,
    ) -> RevocationSeries:
        """Figure 2."""
        end = end or self.calibration.measurement_end
        eco = self.ecosystem
        return revocation_series(
            eco.leaves,
            start,
            end,
            step_days,
            arrays=eco.leaf_index.timeline_arrays(),
        )

    @cached_property
    def stapling_summary(self) -> StaplingSummary:
        """§4.3's deployment statistics."""
        return self.tls_scanner.summary()

    def stapling_probes(
        self, server_sample: int = 20_000, probes: int = 10
    ) -> StaplingProbeResult:
        """Figure 3."""
        return self.tls_scanner.probe_experiment(server_sample, probes)

    def revocation_info_by_issue_month(self) -> dict[datetime.date, dict[str, float]]:
        """Figure 4: fraction of new certs with CRL / OCSP pointers."""
        buckets: dict[datetime.date, list] = {}
        for leaf in self.ecosystem.leaves:
            month = leaf.not_before.replace(day=1)
            buckets.setdefault(month, []).append(leaf)
        series: dict[datetime.date, dict[str, float]] = {}
        for month in sorted(buckets):
            leaves = buckets[month]
            series[month] = {
                "crl": sum(1 for l in leaves if l.has_crl) / len(leaves),
                "ocsp": sum(1 for l in leaves if l.has_ocsp) / len(leaves),
                "count": len(leaves),
            }
        return series

    # -- §5: CAs --------------------------------------------------------------

    def crl_sizes(self, at: datetime.date | None = None) -> dict[str, int]:
        at = at or self.calibration.measurement_end
        return self.crawler.sizes_at(at)

    def crl_entry_counts(self, at: datetime.date | None = None) -> dict[str, int]:
        at = at or self.calibration.measurement_end
        return self.crawler.entry_counts_at(at)

    # -- revocation mechanisms (docs/MECHANISMS.md) ---------------------------

    @cached_property
    def mechanism_suite(self):
        """Registered revocation mechanisms bound to this study, in
        sweep order (restricted by the ``mechanisms`` constructor
        argument).  The study satisfies
        :class:`repro.mechanisms.MechanismHost`."""
        from repro.mechanisms import create_suite

        return create_suite(self, names=self.mechanism_names)

    # -- §7: CRLSets ------------------------------------------------------------

    @cached_property
    def crlset_history(self) -> CrlSetHistory:
        return CrlSetBuilder(self.ecosystem, index=self.crawl_index).run()

    def crlset_coverage(self) -> CoverageReport:
        return analyze_coverage(self.ecosystem, self.crlset_history)

    def crlset_dynamics(self) -> DynamicsReport:
        return analyze_dynamics(
            self.ecosystem, self.crlset_history, crawler=self.crawler
        )
