"""Client-side cost of revocation checking for a browsing session.

Quantifies the §5.2 trade-off browsers face: a user who visits N HTTPS
sites pays bytes and blocking latency for every revocation check their
browser performs.  The model combines the ecosystem's real CRL sizes,
OCSP response sizes, the link profile, and a cache with CRL/OCSP
expiry -- the exact levers the paper argues over.

Per-check accounting is delegated to the pluggable revocation
mechanisms (:mod:`repro.mechanisms`, docs/MECHANISMS.md):
:meth:`SessionCostModel.session_for` prices a session under any
registered mechanism, and the legacy ``"crl"``/``"ocsp"``/``"staple"``
modes are thin aliases onto the corresponding mechanism, byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mechanisms import RevocationMechanism, SessionState, create
from repro.mechanisms.base import OCSP_RESPONSE_BYTES  # noqa: F401  (re-export)
from repro.net.transport import LinkProfile
from repro.scan.ecosystem import Ecosystem
from repro.scan.records import LeafRecord

__all__ = ["SessionCost", "SessionCostModel"]

#: legacy mode name -> registered mechanism name.
_MODE_MECHANISMS = {
    "crl": "crl",
    "ocsp": "ocsp",
    "staple": "ocsp-stapling",
}


@dataclass(frozen=True)
class SessionCost:
    """Totals for one simulated browsing session."""

    sites: int
    checks: int
    bytes_downloaded: int
    blocking_latency_s: float
    cache_hits: int

    @property
    def bytes_per_site(self) -> float:
        return self.bytes_downloaded / self.sites if self.sites else 0.0

    @property
    def latency_per_site_ms(self) -> float:
        return 1000.0 * self.blocking_latency_s / self.sites if self.sites else 0.0


class SessionCostModel:
    """Estimates a browsing session's revocation-checking overhead.

    ``mode`` selects the client behaviour:

    * ``"crl"``   -- download the leaf's CRL (cacheable ~24 h);
    * ``"ocsp"``  -- one OCSP query per leaf (cacheable ~4 days);
    * ``"staple"``-- zero fetches when the site staples, else fall back
      to OCSP (the paper's recommended end state);
    * ``"none"``  -- the mobile-browser regime: no checks at all.

    The model itself satisfies :class:`repro.mechanisms.MechanismHost`
    for the pull/handshake mechanisms, so it can price them without a
    full measurement study.
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        profile: LinkProfile | None = None,
        seed: int = 3,
    ) -> None:
        self.ecosystem = ecosystem
        self.profile = profile or LinkProfile()
        self._rng = random.Random(seed)
        self._mechanisms: dict[str, RevocationMechanism] = {}

    @property
    def calibration(self):
        """MechanismHost: the ecosystem's calibration."""
        return self.ecosystem.calibration

    def _mechanism(self, name: str) -> RevocationMechanism:
        mechanism = self._mechanisms.get(name)
        if mechanism is None:
            mechanism = create(name, self)
            self._mechanisms[name] = mechanism
        return mechanism

    def sample_sites(self, count: int) -> list[LeafRecord]:
        """Popularity-weighted site sample (Alexa-ranked sites repeat)."""
        end = self.ecosystem.calibration.measurement_end
        ranked = [
            leaf
            for leaf in self.ecosystem.leaves
            if leaf.alexa_rank is not None and leaf.is_alive(end)
        ]
        if not ranked:
            ranked = self.ecosystem.alive_leaves(end)
        weights = [1.0 / leaf.alexa_rank if leaf.alexa_rank else 1.0 for leaf in ranked]
        return self._rng.choices(ranked, weights=weights, k=count)

    def session_for(
        self, sites: list[LeafRecord], mechanism: RevocationMechanism
    ) -> SessionCost:
        """Price one session under any registered mechanism."""
        checks = 0
        nbytes = 0
        latency = 0.0
        cache_hits = 0
        state = SessionState()
        for leaf in sites:
            cost = mechanism.check_cost(leaf, state)
            if cost.cache_hit:
                cache_hits += 1
                continue
            for size in cost.fetched:
                checks += 1
                nbytes += size
                latency += self.profile.transfer_time(size).total_seconds()
        return SessionCost(
            sites=len(sites),
            checks=checks,
            bytes_downloaded=nbytes,
            blocking_latency_s=latency,
            cache_hits=cache_hits,
        )

    def session(self, sites: list[LeafRecord], mode: str) -> SessionCost:
        if mode == "none":
            return SessionCost(
                sites=len(sites),
                checks=0,
                bytes_downloaded=0,
                blocking_latency_s=0.0,
                cache_hits=0,
            )
        mechanism_name = _MODE_MECHANISMS.get(mode)
        if mechanism_name is None:
            raise ValueError(f"unknown mode {mode!r}")
        return self.session_for(sites, self._mechanism(mechanism_name))

    def compare_modes(self, site_count: int = 100) -> dict[str, SessionCost]:
        sites = self.sample_sites(site_count)
        return {
            mode: self.session(sites, mode)
            for mode in ("crl", "ocsp", "staple", "none")
        }

    def compare_mechanisms(
        self,
        mechanisms: list[RevocationMechanism],
        site_count: int = 100,
        include_baseline: bool = True,
    ) -> dict[str, SessionCost]:
        """One sampled session priced under every given mechanism.

        Pass ``study.mechanism_suite`` to sweep the registry; the
        ``"none"`` baseline row (no checks at all) is appended unless
        disabled.
        """
        sites = self.sample_sites(site_count)
        costs = {
            mechanism.name: self.session_for(sites, mechanism)
            for mechanism in mechanisms
        }
        if include_baseline:
            costs["none"] = SessionCost(
                sites=len(sites),
                checks=0,
                bytes_downloaded=0,
                blocking_latency_s=0.0,
                cache_hits=0,
            )
        return costs
