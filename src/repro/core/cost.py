"""Client-side cost of revocation checking for a browsing session.

Quantifies the §5.2 trade-off browsers face: a user who visits N HTTPS
sites pays bytes and blocking latency for every revocation check their
browser performs.  The model combines the ecosystem's real CRL sizes,
OCSP response sizes, the link profile, and a cache with CRL/OCSP
expiry -- the exact levers the paper argues over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.transport import LinkProfile
from repro.scan.ecosystem import Ecosystem
from repro.scan.records import LeafRecord

__all__ = ["SessionCost", "SessionCostModel"]

#: typical encoded size of one OCSP response (paper: "typically <1 KB").
OCSP_RESPONSE_BYTES = 450


@dataclass(frozen=True)
class SessionCost:
    """Totals for one simulated browsing session."""

    sites: int
    checks: int
    bytes_downloaded: int
    blocking_latency_s: float
    cache_hits: int

    @property
    def bytes_per_site(self) -> float:
        return self.bytes_downloaded / self.sites if self.sites else 0.0

    @property
    def latency_per_site_ms(self) -> float:
        return 1000.0 * self.blocking_latency_s / self.sites if self.sites else 0.0


class SessionCostModel:
    """Estimates a browsing session's revocation-checking overhead.

    ``mode`` selects the client behaviour:

    * ``"crl"``   -- download the leaf's CRL (cacheable ~24 h);
    * ``"ocsp"``  -- one OCSP query per leaf (cacheable ~4 days);
    * ``"staple"``-- zero fetches when the site staples, else fall back
      to OCSP (the paper's recommended end state);
    * ``"none"``  -- the mobile-browser regime: no checks at all.
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        profile: LinkProfile | None = None,
        seed: int = 3,
    ) -> None:
        self.ecosystem = ecosystem
        self.profile = profile or LinkProfile()
        self._rng = random.Random(seed)
        self._crl_sizes: dict[str, int] = {}

    def _crl_size(self, url: str) -> int:
        size = self._crl_sizes.get(url)
        if size is None:
            size = self.ecosystem.crl_for_url(url).size_bytes(
                self.ecosystem.calibration.measurement_end
            )
            self._crl_sizes[url] = size
        return size

    def sample_sites(self, count: int) -> list[LeafRecord]:
        """Popularity-weighted site sample (Alexa-ranked sites repeat)."""
        end = self.ecosystem.calibration.measurement_end
        ranked = [
            leaf
            for leaf in self.ecosystem.leaves
            if leaf.alexa_rank is not None and leaf.is_alive(end)
        ]
        if not ranked:
            ranked = self.ecosystem.alive_leaves(end)
        weights = [1.0 / leaf.alexa_rank if leaf.alexa_rank else 1.0 for leaf in ranked]
        return self._rng.choices(ranked, weights=weights, k=count)

    def session(self, sites: list[LeafRecord], mode: str) -> SessionCost:
        if mode not in ("crl", "ocsp", "staple", "none"):
            raise ValueError(f"unknown mode {mode!r}")
        checks = 0
        nbytes = 0
        latency = 0.0
        cache_hits = 0
        crl_cache: set[str] = set()
        ocsp_cache: set[int] = set()
        for leaf in sites:
            if mode == "none":
                continue
            if mode == "staple" and leaf.stapling_servers == leaf.server_count > 0:
                continue  # staple arrived in the handshake: no extra cost
            use_crl = mode == "crl" and leaf.crl_url is not None
            if use_crl:
                if leaf.crl_url in crl_cache:
                    cache_hits += 1
                    continue
                size = self._crl_size(leaf.crl_url)
                crl_cache.add(leaf.crl_url)
            elif leaf.ocsp_url is not None:
                if leaf.cert_id in ocsp_cache:
                    cache_hits += 1
                    continue
                size = OCSP_RESPONSE_BYTES
                ocsp_cache.add(leaf.cert_id)
            else:
                continue  # never-revocable certificate
            checks += 1
            nbytes += size
            latency += self.profile.transfer_time(size).total_seconds()
        return SessionCost(
            sites=len(sites),
            checks=checks,
            bytes_downloaded=nbytes,
            blocking_latency_s=latency,
            cache_hits=cache_hits,
        )

    def compare_modes(self, site_count: int = 100) -> dict[str, SessionCost]:
        sites = self.sample_sites(site_count)
        return {
            mode: self.session(sites, mode)
            for mode in ("crl", "ocsp", "staple", "none")
        }
