"""The paper's end-to-end measurement pipeline.

This is the primary contribution being reproduced: the analysis machinery
that takes scan corpora, CRL crawls, TLS handshake scans, browser test
results, and CRLSet builds, and turns them into the paper's tables and
figures.
"""

from repro.core.chain import ChainSets, build_chain_sets
from repro.core.stats import (
    Cdf,
    describe,
    median,
    percentile,
    weighted_cdf,
)
from repro.core.timelines import RevocationSeries, revocation_series
from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table, render_cdf, render_series

__all__ = [
    "Cdf",
    "ChainSets",
    "MeasurementStudy",
    "RevocationSeries",
    "build_chain_sets",
    "describe",
    "format_table",
    "median",
    "percentile",
    "render_cdf",
    "render_series",
    "revocation_series",
    "weighted_cdf",
]
