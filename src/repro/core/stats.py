"""Distribution statistics used across the experiments.

Implements the raw and certificate-weighted CDFs of Figure 6, generic
percentiles, and summary descriptions.  Weighted CDFs weight each value by
a count (e.g. a CRL's size weighted by the number of certificates that
point at it), which is how the paper exposes the gap between "most CRLs
are tiny" and "the median certificate's CRL is 51 KB".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Cdf", "describe", "median", "percentile", "weighted_cdf"]


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF as parallel (value, cumulative fraction) arrays."""

    values: tuple[float, ...]
    fractions: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.values)

    def quantile(self, q: float) -> float:
        """Smallest value whose cumulative fraction reaches ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.values:
            raise ValueError("empty CDF")
        index = bisect.bisect_left(self.fractions, q)
        index = min(index, len(self.values) - 1)
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def fraction_at_or_below(self, value: float) -> float:
        index = bisect.bisect_right(self.values, value)
        if index == 0:
            return 0.0
        return self.fractions[index - 1]

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.values, self.fractions))

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Cdf":
        ordered = sorted(values)
        if not ordered:
            return cls((), ())
        n = len(ordered)
        return cls(
            tuple(ordered), tuple((i + 1) / n for i in range(n))
        )


def weighted_cdf(pairs: Iterable[tuple[float, float]]) -> Cdf:
    """CDF of values where each carries a non-negative weight."""
    ordered = sorted((value, weight) for value, weight in pairs if weight > 0)
    if not ordered:
        return Cdf((), ())
    total = sum(weight for _, weight in ordered)
    values = []
    fractions = []
    running = 0.0
    for value, weight in ordered:
        running += weight
        values.append(value)
        fractions.append(running / total)
    return Cdf(tuple(values), tuple(fractions))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 1]."""
    if not values:
        raise ValueError("empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, round(q * len(ordered)))
    return ordered[rank - 1]


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def describe(values: Sequence[float]) -> dict[str, float]:
    """min / p25 / median / p75 / p95 / max / mean summary."""
    if not values:
        raise ValueError("empty sequence")
    ordered = sorted(values)
    return {
        "n": float(len(ordered)),
        "min": float(ordered[0]),
        "p25": percentile(ordered, 0.25),
        "median": median(ordered),
        "p75": percentile(ordered, 0.75),
        "p95": percentile(ordered, 0.95),
        "max": float(ordered[-1]),
        "mean": sum(ordered) / len(ordered),
    }
