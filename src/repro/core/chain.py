"""Chain-set construction (paper §3.1).

The paper pre-processes 38.5 M scanned certificates by (1) iteratively
building the set of intermediates verifiable from the root store (the
Intermediate Set, 1,946 certificates) and then (2) verifying every leaf
against roots + intermediates (the Leaf Set, 5.07 M certificates), with
date errors ignored because the scans span 1.5 years.

:func:`build_chain_sets` implements that algorithm over real
:class:`~repro.pki.certificate.Certificate` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pki.certificate import Certificate
from repro.pki.verify import VerificationStatus, verify_certificate

__all__ = ["ChainSets", "build_chain_sets"]


@dataclass
class ChainSets:
    """Output of the §3.1 pre-processing."""

    roots: list[Certificate]
    intermediate_set: list[Certificate]
    leaf_set: list[Certificate]
    rejected: list[Certificate] = field(default_factory=list)

    @property
    def intermediate_count(self) -> int:
        return len(self.intermediate_set)

    @property
    def leaf_count(self) -> int:
        return len(self.leaf_set)


def build_chain_sets(
    certificates: list[Certificate],
    roots: list[Certificate],
    max_rounds: int = 10,
) -> ChainSets:
    """Partition scanned certificates into Intermediate and Leaf Sets.

    Iterative, as in the paper: "certain intermediates can only be
    verified once other intermediates are verified".  Date validity is
    deliberately not checked.
    """
    trusted: dict[bytes, Certificate] = {root.fingerprint: root for root in roots}
    by_subject: dict[object, list[Certificate]] = {}
    for anchor in list(trusted.values()):
        by_subject.setdefault(anchor.subject, []).append(anchor)

    candidates_ca = [cert for cert in certificates if cert.is_ca]
    candidates_leaf = [cert for cert in certificates if not cert.is_ca]

    intermediate_set: list[Certificate] = []
    admitted: set[bytes] = set()
    for _ in range(max_rounds):
        progress = False
        for cert in candidates_ca:
            if cert.fingerprint in admitted or cert.fingerprint in trusted:
                continue
            if _verifies_against(cert, by_subject):
                intermediate_set.append(cert)
                admitted.add(cert.fingerprint)
                by_subject.setdefault(cert.subject, []).append(cert)
                progress = True
        if not progress:
            break

    leaf_set: list[Certificate] = []
    rejected: list[Certificate] = []
    for cert in candidates_leaf:
        if _verifies_against(cert, by_subject):
            leaf_set.append(cert)
        else:
            rejected.append(cert)
    rejected.extend(
        cert
        for cert in candidates_ca
        if cert.fingerprint not in admitted and cert.fingerprint not in trusted
    )
    return ChainSets(
        roots=list(roots),
        intermediate_set=intermediate_set,
        leaf_set=leaf_set,
        rejected=rejected,
    )


def _verifies_against(
    cert: Certificate, by_subject: dict[object, list[Certificate]]
) -> bool:
    for issuer in by_subject.get(cert.issuer, ()):
        status = verify_certificate(cert, issuer, check_dates=False)
        if status is VerificationStatus.OK:
            return True
    return False
