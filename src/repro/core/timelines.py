"""Fresh/alive/revoked timelines (paper §3.3 and Figure 2).

Vectorised with numpy over date ordinals: for each sample date, the
fraction of *fresh* certificates (within validity) and *alive*
certificates (still advertised) that have been revoked, for all
certificates and for the EV subset.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import numpy as np

from repro.scan.records import LeafRecord

__all__ = ["RevocationSeries", "revocation_series"]

_FAR_FUTURE = datetime.date(9999, 1, 1).toordinal()


@dataclass(frozen=True)
class RevocationSeries:
    """Figure 2's four series on a shared date axis."""

    dates: tuple[datetime.date, ...]
    fresh_revoked_all: tuple[float, ...]
    fresh_revoked_ev: tuple[float, ...]
    alive_revoked_all: tuple[float, ...]
    alive_revoked_ev: tuple[float, ...]

    def at(self, day: datetime.date) -> dict[str, float]:
        index = self.dates.index(day)
        return {
            "fresh_revoked_all": self.fresh_revoked_all[index],
            "fresh_revoked_ev": self.fresh_revoked_ev[index],
            "alive_revoked_all": self.alive_revoked_all[index],
            "alive_revoked_ev": self.alive_revoked_ev[index],
        }

    def peak_fresh_revoked(self) -> tuple[datetime.date, float]:
        index = max(
            range(len(self.dates)), key=lambda i: self.fresh_revoked_all[i]
        )
        return self.dates[index], self.fresh_revoked_all[index]


def _arrays(leaves: list[LeafRecord]):
    n = len(leaves)
    not_before = np.empty(n, dtype=np.int64)
    not_after = np.empty(n, dtype=np.int64)
    birth = np.empty(n, dtype=np.int64)
    death = np.empty(n, dtype=np.int64)
    revoked = np.empty(n, dtype=np.int64)
    is_ev = np.empty(n, dtype=bool)
    for i, leaf in enumerate(leaves):
        not_before[i] = leaf.not_before.toordinal()
        not_after[i] = leaf.not_after.toordinal()
        birth[i] = leaf.birth.toordinal()
        death[i] = leaf.death.toordinal()
        revoked[i] = (
            leaf.revoked_at.toordinal() if leaf.revoked_at is not None else _FAR_FUTURE
        )
        is_ev[i] = leaf.is_ev
    return not_before, not_after, birth, death, revoked, is_ev


def revocation_series(
    leaves: list[LeafRecord],
    start: datetime.date,
    end: datetime.date,
    step_days: int = 7,
    arrays: tuple[np.ndarray, ...] | None = None,
) -> RevocationSeries:
    """Compute Figure 2's series between ``start`` and ``end``.

    ``arrays`` optionally supplies precomputed timeline columns in
    :func:`_arrays` order (e.g. ``Ecosystem.leaf_index.timeline_arrays()``)
    so repeated series over the same corpus skip the per-leaf extraction.
    """
    if end < start:
        raise ValueError("end must not precede start")
    not_before, not_after, birth, death, revoked, is_ev = (
        arrays if arrays is not None else _arrays(leaves)
    )

    dates: list[datetime.date] = []
    day = start
    while day <= end:
        dates.append(day)
        day += datetime.timedelta(days=step_days)

    fresh_all: list[float] = []
    fresh_ev: list[float] = []
    alive_all: list[float] = []
    alive_ev: list[float] = []
    for day in dates:
        ordinal = day.toordinal()
        fresh = (not_before <= ordinal) & (ordinal <= not_after)
        alive = (birth <= ordinal) & (ordinal <= death)
        is_revoked = revoked <= ordinal
        fresh_all.append(_fraction(is_revoked, fresh))
        alive_all.append(_fraction(is_revoked, alive))
        fresh_ev.append(_fraction(is_revoked, fresh & is_ev))
        alive_ev.append(_fraction(is_revoked, alive & is_ev))

    return RevocationSeries(
        dates=tuple(dates),
        fresh_revoked_all=tuple(fresh_all),
        fresh_revoked_ev=tuple(fresh_ev),
        alive_revoked_all=tuple(alive_all),
        alive_revoked_ev=tuple(alive_ev),
    )


def _fraction(numerator_mask: np.ndarray, denominator_mask: np.ndarray) -> float:
    denominator = int(denominator_mask.sum())
    if denominator == 0:
        return 0.0
    return float((numerator_mask & denominator_mask).sum() / denominator)
