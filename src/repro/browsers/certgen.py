"""Per-test PKI fixtures for the browser test suite (§6.1-6.2).

For each test the paper generated a unique chain (root installed as
trusted, intermediates, leaf), a dedicated web server, CRLs, and OCSP
responders.  :class:`TestPki` builds the equivalent inside the simulation:
real signed certificates, a private :class:`~repro.net.transport.Network`
with CRL/OCSP endpoints, failure injection for the four unavailability
modes, and OCSP staples served through an nginx-like cache modified (as
the paper modified nginx) to staple any status.
"""

from __future__ import annotations

import datetime

from repro.ca.authority import CertificateAuthority
from repro.net.cache import ClientCache
from repro.net.endpoints import CrlEndpoint, OcspEndpoint
from repro.net.fetcher import NetworkFetcher
from repro.net.transport import FailureMode, Network
from repro.net.tls import TlsServer
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyPair
from repro.revocation.checker import RevocationChecker
from repro.revocation.ocsp import CertStatus, OcspResponse
from repro.revocation.reason import ReasonCode
from repro.revocation.stapling import StapleCache, StaplePolicy

__all__ = ["TestPki"]

_UTC = datetime.timezone.utc
_NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=_UTC)
_NOT_BEFORE = datetime.datetime(2014, 6, 1, tzinfo=_UTC)
_NOT_AFTER = datetime.datetime(2016, 6, 1, tzinfo=_UTC)

_FAILURE_MODES = {
    "nxdomain": FailureMode.NXDOMAIN,
    "http404": FailureMode.HTTP_404,
    "no_response": FailureMode.NO_RESPONSE,
}


class TestPki:
    """One test's certificates, network, and revocation services.

    ``protocols`` is the chain-wide pointer set (§6.1: "for each chain,
    all certificates contain either CRL distribution points or OCSP
    responders", or both): a subset of {"crl", "ocsp"}.
    """

    __test__ = False  # "Test" prefix is domain naming, not a pytest class

    def __init__(
        self,
        test_id: str,
        n_intermediates: int,
        protocols: frozenset[str] | set[str],
        ev: bool,
        now: datetime.datetime = _NOW,
    ) -> None:
        if not 0 <= n_intermediates <= 5:
            raise ValueError("n_intermediates out of range")
        protocols = frozenset(protocols)
        if not protocols <= {"crl", "ocsp"}:
            raise ValueError(f"unknown protocols: {protocols}")
        self.test_id = test_id
        self.protocols = protocols
        self.now = now
        self.network = Network()
        self._domain = f"test-{test_id}.example"

        # Build the CA hierarchy: root -> intN -> ... -> int1 (signs leaf).
        self.cas: list[CertificateAuthority] = []
        root = CertificateAuthority.create_root(
            common_name=f"Test Root {test_id}",
            seed=f"suite/{test_id}/root",
            not_before=_NOT_BEFORE,
            not_after=_NOT_AFTER,
            **self._channel_kwargs("root"),
        )
        self._wire_endpoints(root, "root")
        self.cas.append(root)
        parent = root
        for depth in range(n_intermediates, 0, -1):
            label = f"int{depth}"
            child = parent.create_intermediate(
                common_name=f"Test Intermediate {depth} {test_id}",
                seed=f"suite/{test_id}/{label}",
                not_before=_NOT_BEFORE,
                not_after=_NOT_AFTER,
                include_crl="crl" in protocols,
                include_ocsp="ocsp" in protocols,
                **self._channel_kwargs(label),
            )
            self._wire_endpoints(child, label)
            self.cas.append(child)
            parent = child

        leaf_keys = KeyPair.generate(f"suite/{test_id}/leaf")
        self.leaf: Certificate = parent.issue_leaf(
            common_name=self._domain,
            public_key=leaf_keys.public_key,
            not_before=_NOT_BEFORE,
            not_after=_NOT_AFTER,
            ev=ev,
            include_crl="crl" in protocols,
            include_ocsp="ocsp" in protocols,
        )
        #: chain as presented in the handshake: [leaf, int1, ..., root].
        self.chain: list[Certificate] = [self.leaf] + [
            ca.certificate for ca in reversed(self.cas)
        ]
        self.trusted_roots = frozenset({root.certificate.fingerprint})
        self._staple: OcspResponse | None = None
        self.tls_server: TlsServer | None = None

    # -- construction helpers ---------------------------------------------

    def _channel_kwargs(self, label: str) -> dict:
        kwargs: dict = {}
        if "crl" in self.protocols:
            kwargs["crl_base_url"] = f"http://crl-{label}.{self._domain}"
        if "ocsp" in self.protocols:
            kwargs["ocsp_url"] = f"http://ocsp-{label}.{self._domain}/q"
        return kwargs

    def _wire_endpoints(self, ca: CertificateAuthority, label: str) -> None:
        if ca.crl_publisher is not None:
            for url in ca.crl_publisher.urls:
                publisher = ca.crl_publisher
                self.network.register(
                    url,
                    CrlEndpoint(
                        lambda at, publisher=publisher, url=url: publisher.encode(
                            url, at
                        ).to_der()
                    ),
                )
        if ca.ocsp_responder is not None:
            responder = ca.ocsp_responder
            self.network.register(ca.ocsp_url, OcspEndpoint(responder.respond))

    # -- element addressing --------------------------------------------------

    def element(self, index: int) -> Certificate:
        """0 = leaf, 1 = int1 (signed the leaf), ..., len-1 = root."""
        return self.chain[index]

    def issuer_ca_of(self, index: int) -> CertificateAuthority:
        """The CA that issued chain element ``index``."""
        if index >= len(self.chain) - 1:
            raise ValueError("the root has no issuer")
        # cas is [root, intN, ..., int1]; element i is issued by the CA
        # whose certificate is chain[i + 1].
        issuer_cert = self.chain[index + 1]
        for ca in self.cas:
            if ca.certificate.fingerprint == issuer_cert.fingerprint:
                return ca
        raise LookupError("issuer CA not found")

    # -- scenario controls ----------------------------------------------------

    def revoke(self, index: int, reason: ReasonCode | None = None) -> None:
        certificate = self.element(index)
        issuer = self.issuer_ca_of(index)
        issuer.revoke(
            certificate.serial_number,
            self.now - datetime.timedelta(days=10),
            reason,
        )

    def make_unavailable(self, index: int, protocol: str, mode: str) -> None:
        """Apply one of §6.1's failure modes to the element's revocation
        URL(s) for ``protocol``."""
        certificate = self.element(index)
        if mode == "unknown":
            self.issuer_ca_of(index).ocsp_responder.force_unknown = True
            return
        failure = _FAILURE_MODES[mode]
        urls = certificate.crl_urls if protocol == "crl" else certificate.ocsp_urls
        for url in urls:
            self.network.set_failure(url, failure)

    def set_staple(
        self, status: CertStatus, firewall_responder: bool = False
    ) -> None:
        """Configure the web server to staple a response with ``status``.

        ``firewall_responder`` blocks the leaf's OCSP responder from the
        client, as in the paper's stapling tests (footnote 15), making the
        staple the only available revocation information.
        """
        issuer = self.issuer_ca_of(0)
        self._staple = OcspResponse.build(
            responder_keys=issuer.keys,
            cert_status=status,
            issuer_key_hash=issuer.issuer_key_hash,
            serial_number=self.leaf.serial_number,
            this_update=self.now - datetime.timedelta(hours=2),
            next_update=self.now + datetime.timedelta(days=3),
            revocation_time=(
                self.now - datetime.timedelta(days=10)
                if status is CertStatus.REVOKED
                else None
            ),
        )
        cache = StapleCache(policy=StaplePolicy.ANY_STATUS)
        cache.warm(self._staple)
        self.tls_server = TlsServer(
            chain=self.chain,
            stapling_enabled=True,
            staple_cache=cache,
        )
        if firewall_responder:
            for url in self.leaf.ocsp_urls:
                self.network.set_failure(url, FailureMode.NO_RESPONSE)

    # -- client side ------------------------------------------------------------

    def handshake(self, status_request: bool):
        """Serve the connection; returns (chain, staple or None)."""
        if self.tls_server is None:
            self.tls_server = TlsServer(chain=self.chain, stapling_enabled=False)
        result = self.tls_server.handshake(self.now, status_request=status_request)
        return result.chain, result.staple

    def checker(self) -> RevocationChecker:
        fetcher = NetworkFetcher(
            self.network, clock_now=lambda: self.now, cache=ClientCache()
        )
        #: kept for trace capture (§6.2: "we also capture network traces").
        self.last_fetcher = fetcher
        return RevocationChecker(fetcher)
