"""Table 2: browser test results.

Computes each cell of the paper's Table 2 by running the browser models
against the generated test suite and classifying the per-case outcomes
into the paper's marks:

* ``yes``  (paper: check mark) -- passes in all cases,
* ``no``   (paper: cross) -- fails in all cases (or a non-EV/OS mixture),
* ``ev``   -- passes exactly for EV certificates,
* ``l/w``  -- passes only on Linux and Windows,
* ``a``    -- pops an alert instead of failing closed,
* ``i``    -- requests OCSP staples but ignores the response,
* ``-``    -- not applicable / never exercised.

``PAPER_TABLE2`` records the marks printed in the paper for comparison;
a paper ``-`` (untestable in their lab, e.g. Chrome/Linux with our root
installed) is treated as a wildcard when diffing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.browsers.policy import BrowserModel
from repro.browsers.registry import table2_columns
from repro.browsers.testsuite import (
    BrowserTestHarness,
    TestCase,
    TestOutcome,
    generate_test_suite,
)

__all__ = ["Mark", "PAPER_TABLE2", "ROWS", "compute_table2", "render_table2"]


class Mark(enum.Enum):
    YES = "yes"
    NO = "no"
    EV = "ev"
    LW = "l/w"
    ALERT = "a"
    IGNORES = "i"
    DASH = "-"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RowSpec:
    key: str
    group: str
    label: str

    def selects(self, case: TestCase) -> bool:
        if self.key.startswith(("crl/", "ocsp/")):
            protocol, position, condition = self.key.split("/")
            if case.family not in ("revoked", "unavailable"):
                return False
            if case.family == "revoked":
                if condition != "revoked":
                    return False
                if protocol == "crl" and case.protocols != frozenset({"crl"}):
                    return False
                if protocol == "ocsp" and case.protocols != frozenset({"ocsp"}):
                    return False
            else:
                if condition != "unavailable":
                    return False
                if case.protocols != frozenset({protocol}):
                    return False
                if case.failure_mode == "unknown":
                    return False  # counted in its own row
            return case.target_position == position
        if self.key == "reject_unknown":
            return case.family == "unavailable" and case.failure_mode == "unknown"
        if self.key == "try_crl_on_failure":
            return case.family == "fallback"
        if self.key in ("request_staple", "respect_revoked_staple"):
            return case.family == "stapling"
        raise AssertionError(f"unknown row key {self.key}")


ROWS: tuple[RowSpec, ...] = (
    RowSpec("crl/int1/revoked", "CRL", "Int. 1 Revoked"),
    RowSpec("crl/int1/unavailable", "CRL", "Int. 1 Unavailable"),
    RowSpec("crl/int2plus/revoked", "CRL", "Int. 2+ Revoked"),
    RowSpec("crl/int2plus/unavailable", "CRL", "Int. 2+ Unavailable"),
    RowSpec("crl/leaf/revoked", "CRL", "Leaf Revoked"),
    RowSpec("crl/leaf/unavailable", "CRL", "Leaf Unavailable"),
    RowSpec("ocsp/int1/revoked", "OCSP", "Int. 1 Revoked"),
    RowSpec("ocsp/int1/unavailable", "OCSP", "Int. 1 Unavailable"),
    RowSpec("ocsp/int2plus/revoked", "OCSP", "Int. 2+ Revoked"),
    RowSpec("ocsp/int2plus/unavailable", "OCSP", "Int. 2+ Unavailable"),
    RowSpec("ocsp/leaf/revoked", "OCSP", "Leaf Revoked"),
    RowSpec("ocsp/leaf/unavailable", "OCSP", "Leaf Unavailable"),
    RowSpec("reject_unknown", "OCSP", "Reject unknown status"),
    RowSpec("try_crl_on_failure", "OCSP", "Try CRL on failure"),
    RowSpec("request_staple", "Stapling", "Request OCSP staple"),
    RowSpec("respect_revoked_staple", "Stapling", "Respect revoked staple"),
)

#: The marks printed in the paper's Table 2, column order as in
#: :func:`repro.browsers.registry.table2_columns`.
PAPER_TABLE2: dict[str, list[str]] = {
    "crl/int1/revoked": ["ev", "yes", "ev", "no", "yes", "yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no"],
    "crl/int1/unavailable": ["ev", "yes", "-", "no", "no", "yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no"],
    "crl/int2plus/revoked": ["ev", "ev", "ev", "no", "yes", "yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no"],
    "crl/int2plus/unavailable": ["no", "no", "-", "no", "no", "no", "no", "no", "no", "no", "no", "no", "no", "no"],
    "crl/leaf/revoked": ["ev", "ev", "ev", "no", "yes", "yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no"],
    "crl/leaf/unavailable": ["no", "no", "-", "no", "no", "no", "no", "no", "a", "yes", "no", "no", "no", "no"],
    "ocsp/int1/revoked": ["ev", "ev", "ev", "ev", "no", "yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no"],
    "ocsp/int1/unavailable": ["no", "no", "-", "no", "no", "l/w", "no", "yes", "yes", "yes", "no", "no", "no", "no"],
    "ocsp/int2plus/revoked": ["ev", "ev", "ev", "ev", "no", "yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no"],
    "ocsp/int2plus/unavailable": ["no", "no", "-", "no", "no", "no", "no", "no", "no", "no", "no", "no", "no", "no"],
    "ocsp/leaf/revoked": ["ev", "ev", "ev", "yes", "yes", "yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no"],
    "ocsp/leaf/unavailable": ["no", "no", "-", "no", "no", "no", "no", "no", "a", "yes", "no", "no", "no", "no"],
    "reject_unknown": ["no", "no", "-", "yes", "yes", "no", "no", "no", "no", "no", "-", "-", "-", "-"],
    "try_crl_on_failure": ["ev", "ev", "-", "no", "no", "l/w", "yes", "yes", "yes", "yes", "-", "-", "-", "-"],
    "request_staple": ["yes", "yes", "yes", "yes", "yes", "yes", "no", "yes", "yes", "yes", "no", "i", "i", "no"],
    "respect_revoked_staple": ["no", "yes", "-", "yes", "yes", "l/w", "-", "yes", "yes", "yes", "-", "-", "-", "-"],
}


def _classify(
    outcomes: list[tuple[BrowserModel, TestOutcome]], row: RowSpec
) -> Mark:
    """Turn per-case pass/fail/warn results into a Table 2 mark."""
    if row.key == "request_staple":
        models = {id(m): m for m, _ in outcomes}.values()
        if all(m.requests_staple() and m.uses_staple() for m in models):
            return Mark.YES
        if all(m.requests_staple() and not m.uses_staple() for m in models):
            return Mark.IGNORES
        if all(not m.requests_staple() for m in models):
            return Mark.NO
        return Mark.NO

    if row.key == "respect_revoked_staple":
        models = list({id(m): m for m, _ in outcomes}.values())
        if all(not (m.requests_staple() and m.uses_staple()) for m in models):
            return Mark.DASH
        relevant = [
            (m, o)
            for m, o in outcomes
            if o.case.staple_status == "revoked" and o.case.responder_firewalled
        ]
        return _pass_fail_mark(relevant)

    if row.key == "reject_unknown":
        exercised = [(m, o) for m, o in outcomes if o.checked_unknown]
        if not exercised:
            return Mark.DASH
        return _pass_fail_mark(exercised)

    if row.key == "try_crl_on_failure":
        if all(not o.performed_any_check for _, o in outcomes):
            return Mark.DASH
        return _pass_fail_mark(outcomes)

    return _pass_fail_mark(outcomes)


def _pass_fail_mark(outcomes: list[tuple[BrowserModel, TestOutcome]]) -> Mark:
    if not outcomes:
        return Mark.DASH
    passes = [(m, o, o.rejected) for m, o in outcomes]
    if all(p for _, _, p in passes):
        return Mark.YES
    if all(not p for _, _, p in passes):
        if all(o.warned for _, o, p in passes if not p):
            return Mark.ALERT
        return Mark.NO
    # Mixed pass/warn with no hard failures -> alert.
    if all(p or o.warned for _, o, p in passes):
        return Mark.ALERT
    # Passes exactly the EV subset?
    if all(p == o.case.ev for _, o, p in passes):
        return Mark.EV
    # Passes exactly on Linux/Windows?
    if all(p == (m.os in ("linux", "windows")) for m, _, p in passes):
        return Mark.LW
    return Mark.NO


def compute_table2(
    harness: BrowserTestHarness | None = None,
    columns: list[tuple[str, list[BrowserModel]]] | None = None,
    cases: list[TestCase] | None = None,
) -> dict[str, list[Mark]]:
    """Run the suite for every column and produce the mark matrix."""
    harness = harness or BrowserTestHarness()
    columns = columns or table2_columns()
    cases = cases if cases is not None else generate_test_suite()

    matrix: dict[str, list[Mark]] = {row.key: [] for row in ROWS}
    for _label, models in columns:
        per_model: list[tuple[BrowserModel, list[TestOutcome]]] = []
        for model in models:
            per_model.append((model, harness.run_suite(model, cases)))
        for row in ROWS:
            cell: list[tuple[BrowserModel, TestOutcome]] = []
            for model, outcomes in per_model:
                cell.extend(
                    (model, outcome)
                    for outcome in outcomes
                    if row.selects(outcome.case)
                )
            matrix[row.key].append(_classify(cell, row))
    return matrix


def render_table2(matrix: dict[str, list[Mark]]) -> str:
    columns = [label for label, _ in table2_columns()]
    width = max(len(label) for label in columns)
    header = " " * 34 + "  ".join(label[:11].rjust(11) for label in columns)
    lines = [header]
    group = ""
    for row in ROWS:
        if row.group != group:
            group = row.group
            lines.append(f"-- {group} " + "-" * (len(header) - len(group) - 4))
        marks = matrix[row.key]
        cells = "  ".join(str(mark).rjust(11) for mark in marks)
        lines.append(f"{row.label:<34}{cells}")
    return "\n".join(lines)


def diff_against_paper(matrix: dict[str, list[Mark]]) -> list[str]:
    """Cells where our computed mark differs from the paper's (paper '-'
    is a wildcard)."""
    mismatches = []
    labels = [label for label, _ in table2_columns()]
    for row in ROWS:
        expected = PAPER_TABLE2[row.key]
        actual = matrix[row.key]
        for column, (want, got) in enumerate(zip(expected, actual)):
            if want == "-":
                continue
            if want != got.value:
                mismatches.append(
                    f"{row.group}/{row.label} @ {labels[column]}: "
                    f"paper={want} ours={got.value}"
                )
    return mismatches
