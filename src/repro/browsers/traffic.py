"""Per-browser revocation traffic analysis (§6.2's network traces).

The paper captured network traces while running its test suite "to
examine the SSL handshake and communication with revocation servers".
This module aggregates the harness's trace capture into a per-browser
traffic report: how many revocation fetches and bytes each browser/OS
combination generates across the suite -- making the security/cost
trade-off of Table 2 explicit (checking browsers pay; mobile browsers
pay nothing and learn nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browsers.policy import BrowserModel
from repro.browsers.testsuite import BrowserTestHarness, TestCase, TestOutcome

__all__ = ["BrowserTraffic", "traffic_report"]


@dataclass(frozen=True)
class BrowserTraffic:
    """Aggregate revocation traffic for one browser over a case set."""

    browser_label: str
    cases: int
    fetches: int
    bytes_downloaded: int
    revocations_caught: int

    @property
    def bytes_per_connection(self) -> float:
        return self.bytes_downloaded / self.cases if self.cases else 0.0

    @property
    def bytes_per_catch(self) -> float:
        """The cost of each revocation actually detected."""
        if not self.revocations_caught:
            return float("inf") if self.bytes_downloaded else 0.0
        return self.bytes_downloaded / self.revocations_caught


def traffic_report(
    browsers: list[BrowserModel],
    cases: list[TestCase],
    harness: BrowserTestHarness | None = None,
) -> list[BrowserTraffic]:
    """Run the suite per browser and aggregate the captured traces."""
    harness = harness or BrowserTestHarness()
    report: list[BrowserTraffic] = []
    for browser in browsers:
        outcomes: list[TestOutcome] = harness.run_suite(browser, cases)
        caught = sum(
            1
            for outcome in outcomes
            if outcome.case.family in ("revoked", "fallback") and outcome.rejected
        )
        report.append(
            BrowserTraffic(
                browser_label=browser.label,
                cases=len(outcomes),
                fetches=sum(o.revocation_fetches for o in outcomes),
                bytes_downloaded=sum(o.bytes_downloaded for o in outcomes),
                revocations_caught=caught,
            )
        )
    report.sort(key=lambda row: -row.bytes_downloaded)
    return report
