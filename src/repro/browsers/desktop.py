"""Desktop browser models, encoded from the paper's §6.3.

Every behavioural sentence in §6.3 maps to a hook override here; Table 2
is *derived* by running these models against the generated test suite, so
an encoding mistake shows up as a Table 2 mismatch.
"""

from __future__ import annotations

from repro.browsers.policy import BrowserModel, Position, UnavailableAction
from repro.pki.certificate import Certificate

__all__ = ["Chrome", "Firefox", "InternetExplorer", "Opera12", "Opera31", "Safari"]


class Chrome(BrowserModel):
    """Chrome 44.  Platform-specific validation libraries make its
    behaviour OS-dependent (§6.3 "Chrome")."""

    name = "Chrome"
    version = "44"

    def requests_staple(self) -> bool:
        return True

    def respects_revoked_staple(self) -> bool:
        # On OS X Chrome ignores a revoked staple and re-queries the
        # responder; on Windows it respects it.  (Linux untestable in the
        # paper; we model it like OS X.)
        return self.os == "windows"

    def rejects_unknown_ocsp(self) -> bool:
        return False  # incorrectly treats unknown as trusted

    def tries_crl_on_ocsp_failure(self, is_ev: bool) -> bool:
        return is_ev  # only EV certificates are checked at all

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        if is_ev:
            # EV: all elements, OCSP preferred, CRL otherwise.
            if certificate.ocsp_urls:
                return ["ocsp"]
            if certificate.crl_urls:
                return ["crl"]
            return []
        if self.os == "windows":
            # Non-EV: only the first intermediate, and only if it has
            # *only* a CRL listed (no OCSP responders are checked).
            if (
                position is Position.INT1
                and certificate.crl_urls
                and not certificate.ocsp_urls
            ):
                return ["crl"]
        return []

    def on_unavailable(
        self,
        position: Position,
        protocol: str,
        certificate: Certificate,
        is_ev: bool,
        has_intermediates: bool,
    ) -> UnavailableAction:
        # Rejects only when the *first intermediate's CRL* is unavailable
        # -- for EV leaves on OS X/Linux, for all leaves on Windows.
        if position is Position.INT1 and protocol == "crl":
            if is_ev or self.os == "windows":
                return UnavailableAction.REJECT
        return UnavailableAction.ACCEPT


class Firefox(BrowserModel):
    """Firefox 40 (NSS); identical on all platforms."""

    name = "Firefox"
    version = "40"

    def requests_staple(self) -> bool:
        return True

    def rejects_unknown_ocsp(self) -> bool:
        return True  # the only browser family that gets this right

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        # Never any CRLs.  OCSP: leaf only for non-EV, whole chain for EV.
        if not certificate.ocsp_urls:
            return []
        if position is Position.LEAF or is_ev:
            return ["ocsp"]
        return []


class Opera12(BrowserModel):
    """Opera 12.17 (the pre-Chromium Presto engine)."""

    name = "Opera"
    version = "12.17"

    def requests_staple(self) -> bool:
        return True

    def rejects_unknown_ocsp(self) -> bool:
        return True

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        # CRLs for every element; OCSP for the leaf only.
        if position is Position.LEAF and certificate.ocsp_urls:
            return ["ocsp"]
        if certificate.crl_urls:
            return ["crl"]
        return []


class Opera31(BrowserModel):
    """Opera 31 (Chromium fork); some behaviours are OS-dependent."""

    name = "Opera"
    version = "31.0"

    def requests_staple(self) -> bool:
        return True

    def respects_revoked_staple(self) -> bool:
        # Like Chrome, OS X Opera re-queries the responder instead.
        return self.os in ("linux", "windows")

    def rejects_unknown_ocsp(self) -> bool:
        return False

    def tries_crl_on_ocsp_failure(self, is_ev: bool) -> bool:
        return self.os in ("linux", "windows")

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        if certificate.ocsp_urls:
            return ["ocsp"]
        if certificate.crl_urls:
            return ["crl"]
        return []

    def on_unavailable(
        self,
        position: Position,
        protocol: str,
        certificate: Certificate,
        is_ev: bool,
        has_intermediates: bool,
    ) -> UnavailableAction:
        # Rejects when the first intermediate (or the leaf, if there are
        # no intermediates) lacks revocation information -- for CRLs on
        # every platform, for OCSP only on Linux and Windows.
        first_element = position is Position.INT1 or (
            position is Position.LEAF and not has_intermediates
        )
        if first_element:
            if protocol == "crl":
                return UnavailableAction.REJECT
            if protocol == "ocsp" and self.os in ("linux", "windows"):
                return UnavailableAction.REJECT
        return UnavailableAction.ACCEPT


class Safari(BrowserModel):
    """Safari 6.0-8.0 on OS X."""

    name = "Safari"
    os = "osx"

    def __init__(self, version: str = "8.0") -> None:
        super().__init__(os="osx")
        self.version = version

    def requests_staple(self) -> bool:
        return False

    def rejects_unknown_ocsp(self) -> bool:
        return False

    def tries_crl_on_ocsp_failure(self, is_ev: bool) -> bool:
        return True

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        if certificate.ocsp_urls:
            return ["ocsp"]
        if certificate.crl_urls:
            return ["crl"]
        return []

    def on_unavailable(
        self,
        position: Position,
        protocol: str,
        certificate: Certificate,
        is_ev: bool,
        has_intermediates: bool,
    ) -> UnavailableAction:
        # Rejects only for the first intermediate (or leaf when there are
        # none) and only if the certificate carries a CRL pointer.
        first_element = position is Position.INT1 or (
            position is Position.LEAF and not has_intermediates
        )
        if first_element and certificate.crl_urls:
            return UnavailableAction.REJECT
        return UnavailableAction.ACCEPT


class InternetExplorer(BrowserModel):
    """IE 7.0-11.0; behaviour steps at 10.0 and again at 11.0."""

    name = "IE"
    os = "windows"

    def __init__(self, version: str, os: str = "windows") -> None:
        super().__init__(os=os)
        self.version = version

    @property
    def major(self) -> int:
        return int(self.version.split(".")[0])

    def requests_staple(self) -> bool:
        return True

    def rejects_unknown_ocsp(self) -> bool:
        return False

    def tries_crl_on_ocsp_failure(self, is_ev: bool) -> bool:
        return True

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        if certificate.ocsp_urls:
            return ["ocsp"]
        if certificate.crl_urls:
            return ["crl"]
        return []

    def on_unavailable(
        self,
        position: Position,
        protocol: str,
        certificate: Certificate,
        is_ev: bool,
        has_intermediates: bool,
    ) -> UnavailableAction:
        first_element = position is Position.INT1 or (
            position is Position.LEAF and not has_intermediates
        )
        if first_element and position is not Position.LEAF:
            return UnavailableAction.REJECT
        if position is Position.LEAF:
            if not has_intermediates:
                # "First certificate in the chain" -- IE rejects here on
                # every version.
                return UnavailableAction.REJECT
            if self.major >= 11:
                return UnavailableAction.REJECT
            if self.major == 10:
                return UnavailableAction.WARN
        return UnavailableAction.ACCEPT
