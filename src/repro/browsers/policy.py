"""The browser revocation-checking policy engine.

:class:`BrowserModel` implements the mechanics shared by every browser --
walk the chain, consult CRL/OCSP through a
:class:`~repro.revocation.checker.RevocationChecker`, interpret staples --
while subclasses (one per browser family, in :mod:`repro.browsers.desktop`
and :mod:`repro.browsers.mobile`) override the *policy* hooks:

* which chain positions are checked, with which protocols, for EV vs
  non-EV leaves;
* whether a CRL is tried when the OCSP responder fails;
* whether an OCSP ``unknown`` is rejected (most browsers wrongly trust it);
* what happens when revocation information is unavailable (soft-fail
  accept, hard-fail reject, or a user-facing warning);
* whether OCSP staples are requested, used, and respected when revoked.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, field

from repro.pki.certificate import Certificate
from repro.revocation.checker import CheckOutcome, CheckResult, RevocationChecker
from repro.revocation.ocsp import OcspResponse

__all__ = [
    "BrowserModel",
    "ChainContext",
    "CheckRecord",
    "PROTOCOL_MECHANISMS",
    "Position",
    "UnavailableAction",
    "ValidationResult",
    "mechanism_for_protocol",
]

#: wire-protocol name (as recorded by the policy engine / Table 2) ->
#: registered revocation-mechanism name (repro.mechanisms,
#: docs/MECHANISMS.md).  The glue that lets browser-policy results be
#: priced and swept through the mechanism registry.
PROTOCOL_MECHANISMS = {
    "crl": "crl",
    "ocsp": "ocsp",
    "staple": "ocsp-stapling",
}


def mechanism_for_protocol(protocol: str) -> str:
    """Resolve a policy-engine protocol onto its registry name."""
    try:
        return PROTOCOL_MECHANISMS[protocol]
    except KeyError:
        raise KeyError(
            f"no registered mechanism for protocol {protocol!r}; "
            f"known: {sorted(PROTOCOL_MECHANISMS)}"
        ) from None


class Position(enum.Enum):
    """Chain positions as Table 2 groups them."""

    LEAF = "leaf"
    INT1 = "int1"  # the intermediate that signed the leaf
    INT2PLUS = "int2plus"

    @classmethod
    def of(cls, index: int) -> "Position":
        if index == 0:
            return cls.LEAF
        if index == 1:
            return cls.INT1
        return cls.INT2PLUS


class UnavailableAction(enum.Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    WARN = "warn"


@dataclass(frozen=True)
class ChainContext:
    """One connection, as seen by the browser."""

    chain: tuple[Certificate, ...]  # [leaf, int..., root]
    staple: OcspResponse | None
    checker: RevocationChecker
    at: datetime.datetime

    @property
    def leaf(self) -> Certificate:
        return self.chain[0]

    @property
    def is_ev(self) -> bool:
        return self.leaf.is_ev

    @property
    def has_intermediates(self) -> bool:
        return len(self.chain) > 2

    def issuer_of(self, index: int) -> Certificate:
        return self.chain[min(index + 1, len(self.chain) - 1)]


@dataclass(frozen=True)
class CheckRecord:
    position: Position
    protocol: str
    outcome: CheckOutcome


@dataclass
class ValidationResult:
    """What the browser decided and what it did on the wire."""

    accepted: bool = True
    warned: bool = False
    checks: list[CheckRecord] = field(default_factory=list)
    staple_requested: bool = False
    staple_used: bool = False
    rejection_reason: str = ""

    def record(self, position: Position, protocol: str, outcome: CheckOutcome):
        self.checks.append(CheckRecord(position, protocol, outcome))

    @property
    def performed_any_check(self) -> bool:
        return bool(self.checks) or self.staple_used

    def mechanisms_used(self) -> tuple[str, ...]:
        """Registry names of the mechanisms this validation exercised,
        in first-use order (deduplicated)."""
        seen: list[str] = []
        for check in self.checks:
            name = mechanism_for_protocol(check.protocol)
            if name not in seen:
                seen.append(name)
        return tuple(seen)


class BrowserModel:
    """Base engine; subclasses override the policy hooks."""

    name: str = "abstract"
    version: str = ""
    os: str = ""
    is_mobile: bool = False

    def __init__(self, os: str = "") -> None:
        if os:
            self.os = os

    @property
    def label(self) -> str:
        parts = [self.name]
        if self.version:
            parts.append(self.version)
        if self.os:
            parts.append(f"({self.os})")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------

    def requests_staple(self) -> bool:
        return False

    def uses_staple(self) -> bool:
        """False for browsers that request staples but ignore them."""
        return self.requests_staple()

    def respects_revoked_staple(self) -> bool:
        """If False, a revoked staple is discarded and the responder is
        queried directly (Chrome/Opera on OS X)."""
        return True

    def rejects_unknown_ocsp(self) -> bool:
        """RFC-correct behaviour; most browsers get this wrong."""
        return False

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        """Which protocols ("crl"/"ocsp") this browser consults for this
        chain position, in preference order.  Empty list = no check."""
        return []

    def tries_crl_on_ocsp_failure(self, is_ev: bool) -> bool:
        return False

    def on_unavailable(
        self,
        position: Position,
        protocol: str,
        certificate: Certificate,
        is_ev: bool,
        has_intermediates: bool,
    ) -> UnavailableAction:
        """Soft-fail by default; the crux of §2.3's debate."""
        return UnavailableAction.ACCEPT

    # ------------------------------------------------------------------
    # the engine
    # ------------------------------------------------------------------

    def validate(self, ctx: ChainContext) -> ValidationResult:
        result = ValidationResult()
        result.staple_requested = self.requests_staple()

        leaf_satisfied_by_staple = False
        if (
            result.staple_requested
            and ctx.staple is not None
            and self.uses_staple()
        ):
            staple_check = ctx.checker.check_staple(ctx.staple, ctx.at)
            if staple_check.outcome is CheckOutcome.REVOKED:
                if self.respects_revoked_staple():
                    result.staple_used = True
                    result.record(Position.LEAF, "staple", staple_check.outcome)
                    result.accepted = False
                    result.rejection_reason = "stapled response says revoked"
                    return result
                # Discard the staple; fall through to a live leaf check.
            elif staple_check.outcome is CheckOutcome.GOOD:
                result.staple_used = True
                result.record(Position.LEAF, "staple", staple_check.outcome)
                leaf_satisfied_by_staple = True
            elif staple_check.outcome is CheckOutcome.UNKNOWN:
                result.staple_used = True
                result.record(Position.LEAF, "staple", staple_check.outcome)
                if self.rejects_unknown_ocsp():
                    result.accepted = False
                    result.rejection_reason = "stapled response status unknown"
                    return result
                leaf_satisfied_by_staple = True

        # Walk every non-root element: leaf, int1, int2, ...
        for index in range(len(ctx.chain) - 1):
            certificate = ctx.chain[index]
            position = Position.of(index)
            if position is Position.LEAF and leaf_satisfied_by_staple:
                continue
            protocols = self.protocols_for(position, certificate, ctx.is_ev)
            if not protocols:
                continue
            decision = self._check_element(ctx, index, position, protocols, result)
            if decision is not None:
                return decision
        return result

    def _check_element(
        self,
        ctx: ChainContext,
        index: int,
        position: Position,
        protocols: list[str],
        result: ValidationResult,
    ) -> ValidationResult | None:
        """Run the checks for one chain element; a non-None return is the
        final (rejecting) result."""
        certificate = ctx.chain[index]
        outcome = self._run_protocol(ctx, index, protocols[0])
        result.record(position, protocols[0], outcome.outcome)
        protocol_used = protocols[0]

        if (
            outcome.outcome in (CheckOutcome.UNAVAILABLE, CheckOutcome.NO_INFO)
            and protocol_used == "ocsp"
            and self.tries_crl_on_ocsp_failure(ctx.is_ev)
            and certificate.crl_urls
        ):
            outcome = self._run_protocol(ctx, index, "crl")
            result.record(position, "crl", outcome.outcome)
            protocol_used = "crl"

        if outcome.outcome is CheckOutcome.REVOKED:
            result.accepted = False
            result.rejection_reason = f"{position.value} revoked ({protocol_used})"
            return result
        if outcome.outcome is CheckOutcome.UNKNOWN:
            if self.rejects_unknown_ocsp():
                result.accepted = False
                result.rejection_reason = f"{position.value} status unknown"
                return result
            return None  # incorrectly treated as trusted
        if outcome.outcome in (CheckOutcome.UNAVAILABLE, CheckOutcome.NO_INFO):
            action = self.on_unavailable(
                position,
                protocol_used,
                certificate,
                ctx.is_ev,
                ctx.has_intermediates,
            )
            if action is UnavailableAction.REJECT:
                result.accepted = False
                result.rejection_reason = f"{position.value} info unavailable"
                return result
            if action is UnavailableAction.WARN:
                result.warned = True
        return None

    def _run_protocol(self, ctx: ChainContext, index: int, protocol: str) -> CheckResult:
        certificate = ctx.chain[index]
        if protocol == "crl":
            return ctx.checker.check_crl(certificate, ctx.at)
        issuer = ctx.issuer_of(index)
        return ctx.checker.check_ocsp(certificate, issuer.spki_hash, ctx.at)
