"""A maximally strict reference client.

No 2015 browser implements the paper's §2.3 ideal: check every chain
element, prefer staples, fall back across protocols, treat ``unknown``
and unavailability as fatal.  :class:`StrictClient` is that ideal,
encoded in the same policy framework as the real browsers -- the upper
bound the Table 2 scorecards are measured against, and the client model
used by the extension studies (multi-stapling, hard-fail ablations).
"""

from __future__ import annotations

from repro.browsers.policy import BrowserModel, Position, UnavailableAction
from repro.pki.certificate import Certificate

__all__ = ["StrictClient"]


class StrictClient(BrowserModel):
    """Checks everything, hard-fails on anything less than ``good``."""

    name = "StrictClient"
    version = "reference"

    def requests_staple(self) -> bool:
        return True

    def respects_revoked_staple(self) -> bool:
        return True

    def rejects_unknown_ocsp(self) -> bool:
        return True

    def tries_crl_on_ocsp_failure(self, is_ev: bool) -> bool:
        return True

    def protocols_for(
        self, position: Position, certificate: Certificate, is_ev: bool
    ) -> list[str]:
        if certificate.ocsp_urls:
            return ["ocsp"]
        if certificate.crl_urls:
            return ["crl"]
        return []

    def on_unavailable(
        self,
        position: Position,
        protocol: str,
        certificate: Certificate,
        is_ev: bool,
        has_intermediates: bool,
    ) -> UnavailableAction:
        return UnavailableAction.REJECT
