"""The 30 browser/OS combinations and Table 2's 14 column groups."""

from __future__ import annotations

from repro.browsers.desktop import (
    Chrome,
    Firefox,
    InternetExplorer,
    Opera12,
    Opera31,
    Safari,
)
from repro.browsers.mobile import AndroidBrowser, MobileIE, MobileSafari
from repro.browsers.policy import BrowserModel

__all__ = ["all_browsers", "table2_columns"]


def all_browsers() -> list[BrowserModel]:
    """All 30 combinations the paper tested (§6, "we tested 30 different
    combinations of OS and browser")."""
    browsers: list[BrowserModel] = []
    for os in ("osx", "windows", "linux"):
        browsers.append(Chrome(os=os))
    for os in ("osx", "windows", "linux"):
        browsers.append(Firefox(os=os))
    for os in ("osx", "windows", "linux"):
        browsers.append(Opera12(os=os))
    for os in ("osx", "windows", "linux"):
        browsers.append(Opera31(os=os))
    for version in ("6.0", "7.0", "8.0"):
        browsers.append(Safari(version=version))
    for version in ("7.0", "8.0", "9.0"):
        browsers.append(InternetExplorer(version=version))
    browsers.append(InternetExplorer(version="10.0"))
    for os_label in ("windows7", "windows8.1", "windows10"):
        browsers.append(InternetExplorer(version="11.0", os=os_label))
    for ios in ("6", "7", "8"):
        browsers.append(MobileSafari(ios_version=ios))
    for android in ("4.4", "5.1"):
        browsers.append(AndroidBrowser("Browser", android))
    for android in ("4.4", "5.1"):
        browsers.append(AndroidBrowser("Chrome", android))
    browsers.append(MobileIE())
    assert len(browsers) == 30
    return browsers


def table2_columns() -> list[tuple[str, list[BrowserModel]]]:
    """Table 2's 14 columns; several aggregate multiple combinations."""
    browsers = all_browsers()

    def pick(predicate) -> list[BrowserModel]:
        return [b for b in browsers if predicate(b)]

    return [
        ("Chrome OSX", pick(lambda b: b.name == "Chrome" and b.os == "osx")),
        ("Chrome Win", pick(lambda b: b.name == "Chrome" and b.os == "windows")),
        ("Chrome Lin", pick(lambda b: b.name == "Chrome" and b.os == "linux")),
        ("Firefox 40", pick(lambda b: b.name == "Firefox")),
        ("Opera 12.17", pick(lambda b: isinstance(b, Opera12))),
        ("Opera 31.0", pick(lambda b: isinstance(b, Opera31))),
        ("Safari 6-8", pick(lambda b: b.name == "Safari")),
        (
            "IE 7-9",
            pick(lambda b: b.name == "IE" and b.major <= 9),
        ),
        ("IE 10", pick(lambda b: b.name == "IE" and b.major == 10)),
        ("IE 11", pick(lambda b: b.name == "IE" and b.major == 11)),
        ("iOS 6-8", pick(lambda b: b.name == "Mobile Safari")),
        ("Andr. Stock", pick(lambda b: b.name == "Android Browser")),
        ("Andr. Chrome", pick(lambda b: b.name == "Android Chrome")),
        ("WinPhone IE", pick(lambda b: b.name == "Mobile IE")),
    ]
