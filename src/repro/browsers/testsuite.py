"""The 244-case browser test suite (§6.1).

The paper's suite covers four dimensions -- chain length, revocation
protocol, Extended Validation, and unavailable-revocation-information
failure modes -- for 244 distinct certificate configurations.  The
enumeration here reproduces that count exactly:

* 24  baseline valid chains        (4 lengths x {crl, ocsp, both} x EV)
* 60  revoked-element chains       (10 positions x {crl, ocsp, both} x EV)
* 60  CRL unavailable              (10 positions x 3 failure modes x EV)
* 80  OCSP unavailable             (10 positions x 4 failure modes x EV)
* 4   OCSP-fails-CRL-works         ({leaf, int1} x EV)
* 4   both protocols unavailable   ({leaf, int1} x EV)
* 12  OCSP stapling                (3 staple statuses x firewalled x EV)

("10 positions" = for 0..3 intermediates, every chain element that can be
revoked: 1 + 2 + 3 + 4.)
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.browsers.certgen import TestPki
from repro.browsers.policy import BrowserModel, ChainContext, ValidationResult
from repro.revocation.ocsp import CertStatus

__all__ = [
    "BrowserTestHarness",
    "TestCase",
    "TestOutcome",
    "generate_test_suite",
]

_CRL_FAILURES = ("nxdomain", "http404", "no_response")
_OCSP_FAILURES = ("nxdomain", "http404", "no_response", "unknown")


@dataclass(frozen=True)
class TestCase:
    """One certificate configuration of the suite."""

    __test__ = False  # domain naming, not a pytest class

    test_id: str
    family: str  # baseline | revoked | unavailable | fallback | both_unavailable | stapling
    n_intermediates: int
    protocols: frozenset[str]
    ev: bool
    #: chain index the scenario manipulates (0 = leaf, 1 = int1, ...).
    target_index: int | None = None
    #: failure mode for `unavailable` cases.
    failure_mode: str | None = None
    #: staple status for `stapling` cases.
    staple_status: str | None = None
    responder_firewalled: bool = False

    @property
    def target_position(self) -> str | None:
        if self.target_index is None:
            return None
        if self.target_index == 0:
            return "leaf"
        if self.target_index == 1:
            return "int1"
        return "int2plus"

    @property
    def expected_reject(self) -> bool:
        """The maximally secure behaviour (§2.3): reject on revocation and
        hard-fail when revocation information is unavailable."""
        if self.family == "baseline":
            return False
        if self.family == "stapling":
            return self.staple_status == "revoked"
        return True

    def describe(self) -> str:
        bits = [
            self.family,
            f"{self.n_intermediates} ints",
            "+".join(sorted(self.protocols)),
            "EV" if self.ev else "DV",
        ]
        if self.target_position:
            bits.append(f"target={self.target_position}")
        if self.failure_mode:
            bits.append(f"mode={self.failure_mode}")
        if self.staple_status:
            bits.append(f"staple={self.staple_status}")
            if self.responder_firewalled:
                bits.append("firewalled")
        return ", ".join(bits)


def generate_test_suite() -> list[TestCase]:
    """The paper's 244 test configurations."""
    cases: list[TestCase] = []
    counter = 0

    def add(**kwargs) -> None:
        nonlocal counter
        cases.append(TestCase(test_id=f"t{counter:03d}", **kwargs))
        counter += 1

    evs = (False, True)
    lengths = (0, 1, 2, 3)

    # 1. Baseline valid chains.
    for length in lengths:
        for protocols in ({"crl"}, {"ocsp"}, {"crl", "ocsp"}):
            for ev in evs:
                add(
                    family="baseline",
                    n_intermediates=length,
                    protocols=frozenset(protocols),
                    ev=ev,
                )

    # 2. Revoked elements.
    for length in lengths:
        for target in range(length + 1):
            for protocols in ({"crl"}, {"ocsp"}, {"crl", "ocsp"}):
                for ev in evs:
                    add(
                        family="revoked",
                        n_intermediates=length,
                        protocols=frozenset(protocols),
                        ev=ev,
                        target_index=target,
                    )

    # 3. Unavailable revocation information.
    for protocol, modes in (("crl", _CRL_FAILURES), ("ocsp", _OCSP_FAILURES)):
        for length in lengths:
            for target in range(length + 1):
                for mode in modes:
                    for ev in evs:
                        add(
                            family="unavailable",
                            n_intermediates=length,
                            protocols=frozenset({protocol}),
                            ev=ev,
                            target_index=target,
                            failure_mode=mode,
                        )

    # 4. OCSP responder down but the CRL still answers (fallback probes).
    for target in (0, 1):
        for ev in evs:
            add(
                family="fallback",
                n_intermediates=1,
                protocols=frozenset({"crl", "ocsp"}),
                ev=ev,
                target_index=target,
                failure_mode="no_response",
            )

    # 5. Both protocols unavailable.
    for target in (0, 1):
        for ev in evs:
            add(
                family="both_unavailable",
                n_intermediates=1,
                protocols=frozenset({"crl", "ocsp"}),
                ev=ev,
                target_index=target,
                failure_mode="no_response",
            )

    # 6. OCSP stapling.  OCSP-only chains: when the responder is
    # firewalled (paper footnote 15) the staple is the *only* way to
    # learn the revocation status.
    for staple_status in ("good", "revoked", "unknown"):
        for firewalled in (False, True):
            for ev in evs:
                add(
                    family="stapling",
                    n_intermediates=1,
                    protocols=frozenset({"ocsp"}),
                    ev=ev,
                    staple_status=staple_status,
                    responder_firewalled=firewalled,
                )

    assert len(cases) == 244, f"expected 244 tests, generated {len(cases)}"
    return cases


@dataclass(frozen=True)
class TestOutcome:
    """One (browser, test case) execution."""

    __test__ = False

    case: TestCase
    browser_label: str
    rejected: bool
    warned: bool
    staple_requested: bool
    staple_used: bool
    performed_any_check: bool
    checked_unknown: bool
    #: network-trace capture (§6.2): revocation bytes/fetches this
    #: browser generated while validating the connection.
    bytes_downloaded: int = 0
    revocation_fetches: int = 0

    @property
    def passed(self) -> bool:
        """Did the browser exhibit the maximally secure behaviour?"""
        if self.case.expected_reject:
            return self.rejected
        return not self.rejected


@dataclass
class BrowserTestHarness:
    """Builds each case's PKI and runs browser models against it."""

    now: datetime.datetime = datetime.datetime(
        2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc
    )
    _pki_cache: dict = field(default_factory=dict)

    def build_pki(self, case: TestCase, browser: BrowserModel) -> TestPki:
        """A fresh PKI per (case, browser) -- the paper regenerates
        certificates per test to defeat caching effects."""
        pki = TestPki(
            test_id=f"{case.test_id}-{id(browser) % 10_000}",
            n_intermediates=case.n_intermediates,
            protocols=case.protocols,
            ev=case.ev,
            now=self.now,
        )
        if case.family == "revoked":
            pki.revoke(case.target_index)
        elif case.family == "unavailable":
            protocol = next(iter(case.protocols))
            pki.make_unavailable(case.target_index, protocol, case.failure_mode)
        elif case.family == "fallback":
            pki.revoke(case.target_index)
            pki.make_unavailable(case.target_index, "ocsp", case.failure_mode)
        elif case.family == "both_unavailable":
            pki.make_unavailable(case.target_index, "crl", case.failure_mode)
            pki.make_unavailable(case.target_index, "ocsp", case.failure_mode)
        elif case.family == "stapling":
            status = CertStatus(case.staple_status)
            if status is CertStatus.REVOKED:
                pki.revoke(0)
            pki.set_staple(status, firewall_responder=case.responder_firewalled)
        return pki

    def run_case(self, browser: BrowserModel, case: TestCase) -> TestOutcome:
        pki = self.build_pki(case, browser)
        chain, staple = pki.handshake(status_request=browser.requests_staple())
        ctx = ChainContext(
            chain=chain,
            staple=staple,
            checker=pki.checker(),
            at=self.now,
        )
        result: ValidationResult = browser.validate(ctx)
        checked_unknown = any(
            record.outcome.value == "unknown" for record in result.checks
        )
        fetcher = getattr(pki, "last_fetcher", None)
        return TestOutcome(
            case=case,
            browser_label=browser.label,
            rejected=not result.accepted,
            warned=result.warned,
            staple_requested=result.staple_requested,
            staple_used=result.staple_used,
            performed_any_check=result.performed_any_check,
            checked_unknown=checked_unknown,
            bytes_downloaded=fetcher.bytes_downloaded if fetcher else 0,
            revocation_fetches=fetcher.fetches if fetcher else 0,
        )

    def run_suite(
        self, browser: BrowserModel, cases: list[TestCase] | None = None
    ) -> list[TestOutcome]:
        cases = cases if cases is not None else generate_test_suite()
        return [self.run_case(browser, case) for case in cases]
