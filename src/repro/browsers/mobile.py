"""Mobile browser models (§6.4).

The paper's starkest finding: not a single mobile browser checks any
revocation information.  Android's stock browser and Chrome do *request*
OCSP staples but ignore the response -- even a staple with status
``revoked`` does not stop the connection.
"""

from __future__ import annotations

from repro.browsers.policy import BrowserModel

__all__ = ["AndroidBrowser", "MobileIE", "MobileSafari"]


class MobileSafari(BrowserModel):
    """Mobile Safari on iOS 6-8: no checks, no staple requests."""

    name = "Mobile Safari"
    is_mobile = True

    def __init__(self, ios_version: str) -> None:
        super().__init__(os=f"ios{ios_version}")
        self.version = f"iOS {ios_version}"

    def requests_staple(self) -> bool:
        return False


class AndroidBrowser(BrowserModel):
    """Android stock Browser and Chrome for Android (4.x-5.1).

    Both request OCSP staples but do not use them in validation: a
    ``revoked`` staple is accepted and the connection proceeds.
    """

    is_mobile = True

    def __init__(self, app: str, android_version: str) -> None:
        super().__init__(os=f"android{android_version}")
        self.name = f"Android {app}"
        self.version = android_version

    def requests_staple(self) -> bool:
        return True

    def uses_staple(self) -> bool:
        return False  # requested, then ignored


class MobileIE(BrowserModel):
    """IE on Windows Phone 8.0: no checks, no staple requests."""

    name = "Mobile IE"
    version = "8.0"
    is_mobile = True

    def __init__(self) -> None:
        super().__init__(os="windows-phone")

    def requests_staple(self) -> bool:
        return False
