"""Browser revocation-checking models and the 244-case test suite (§6).

Each of the paper's 30 browser/OS combinations is modelled as a
:class:`~repro.browsers.policy.BrowserModel` whose revocation-checking
policy is encoded from §6.3/§6.4.  The test suite generator reproduces the
paper's 244 certificate configurations; running every model against every
case regenerates Table 2.
"""

from repro.browsers.policy import (
    BrowserModel,
    ChainContext,
    Position,
    UnavailableAction,
    ValidationResult,
)
from repro.browsers.registry import all_browsers, table2_columns
from repro.browsers.certgen import TestPki
from repro.browsers.testsuite import (
    BrowserTestHarness,
    TestCase,
    TestOutcome,
    generate_test_suite,
)
from repro.browsers.table2 import Mark, compute_table2, render_table2

__all__ = [
    "BrowserModel",
    "BrowserTestHarness",
    "ChainContext",
    "Mark",
    "Position",
    "TestCase",
    "TestOutcome",
    "TestPki",
    "UnavailableAction",
    "ValidationResult",
    "all_browsers",
    "compute_table2",
    "generate_test_suite",
    "render_table2",
    "table2_columns",
]
