"""Stable programmatic facade over the repro package.

``repro.api`` is the supported entry surface for scripts, notebooks,
benchmarks, and the CLI (``python -m repro`` is a thin shell over this
module): running studies (supervised or not), rendering the
EXPERIMENTS.md report, building/verifying corpus stores, loading /
rolling up / diffing traces, and invoking the static-analysis gate.
Everything else under ``repro.*`` is implementation and may be
refactored freely; the signatures here are kept stable and versioned
(:data:`API_VERSION`, pinned by ``tests/test_api_contract.py``).

Component re-exports: the classes and helpers the micro-benchmarks (and
similar out-of-tree consumers) exercise directly -- browser models, PKI
builders, CRLSet structures -- are re-exported lazily by name (PEP 562),
so ``api.CrlSetBuilder`` is stable even if the implementing module
moves.

Typical use::

    from repro import api

    run = api.run_study(experiment="fig2", scale=0.0005, trace=True)
    run.write_trace("a.jsonl", experiment="fig2")
    diff = api.diff_traces("a.jsonl", "b.jsonl")
    print(api.render_diff(diff))
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.core.pipeline import MeasurementStudy
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    run_all,
    run_experiment,
    run_supervised,
)
from repro.obs import Observability
from repro.obs import report as _trace_report
from repro.obs.diff import TraceDiff
from repro.obs.diff import diff_traces as _diff_traces
from repro.obs.diff import render_diff_json, render_diff_text

#: facade contract version: bump the minor on compatible additions, the
#: major on any breaking change to a signature or re-export listed in
#: ``__all__``/``_COMPONENT_EXPORTS`` (tests/test_api_contract.py pins
#: the surface against this).
API_VERSION = "1.2"

__all__ = [
    "API_VERSION",
    "StudyRun",
    "TraceDiff",
    "build_corpus",
    "corpus_info",
    "crawl_figures_legs",
    "diff_traces",
    "golden_digests",
    "list_corpora",
    "list_experiments",
    "list_mechanisms",
    "load_trace",
    "mechanism_digests",
    "new_study",
    "render_diff",
    "render_report",
    "render_trace",
    "run_analysis",
    "run_experiments",
    "run_one",
    "run_study",
    "verify_corpus",
]

#: lazy component re-exports (attribute -> implementing module).  These
#: are part of the facade contract: renaming an implementing module is
#: fine, dropping or renaming an attribute is a breaking change.
_COMPONENT_EXPORTS = {
    "AndroidBrowser": "repro.browsers.mobile",
    "BloomFilter": "repro.crlset.bloom",
    "BrowserTestHarness": "repro.browsers.testsuite",
    "Calibration": "repro.scan.calibration",
    "Certificate": "repro.pki.certificate",
    "CertificateBuilder": "repro.pki.certificate",
    "CertificateRevocationList": "repro.revocation.crl",
    "ChainContext": "repro.browsers.policy",
    "CheckCost": "repro.mechanisms",
    "Chrome": "repro.browsers.desktop",
    "CrlPublisher": "repro.ca.crl_publisher",
    "CrlSetBuilder": "repro.crlset.builder",
    "Delivery": "repro.mechanisms",
    "Ed25519Backend": "repro.pki.keys",
    "Firefox": "repro.browsers.desktop",
    "GolombCompressedSet": "repro.crlset.gcs",
    "InternetExplorer": "repro.browsers.desktop",
    "KeyPair": "repro.pki.keys",
    "LinkProfile": "repro.net.transport",
    "MobileSafari": "repro.browsers.mobile",
    "MultiStapleServer": "repro.extensions.multistaple",
    "Name": "repro.pki.name",
    "OcspRequest": "repro.revocation.ocsp",
    "Opera12": "repro.browsers.desktop",
    "Opera31": "repro.browsers.desktop",
    "RevocationMechanism": "repro.mechanisms",
    "RevocationRegime": "repro.extensions.shortlived",
    "RevokedEntry": "repro.revocation.crl",
    "Safari": "repro.browsers.desktop",
    "SessionCostModel": "repro.core.cost",
    "SessionState": "repro.mechanisms",
    "SimBackend": "repro.pki.keys",
    "StrictClient": "repro.browsers.strict",
    "TestPki": "repro.browsers.certgen",
    "UpdateModel": "repro.mechanisms",
    "all_browsers": "repro.browsers.registry",
    "analyze_coverage": "repro.crlset.coverage",
    "attack_window_study": "repro.extensions.shortlived",
    "blast_radius": "repro.extensions.onecrl",
    "build_onecrl": "repro.extensions.onecrl",
    "chain_check_cost": "repro.extensions.multistaple",
    "format_bytes": "repro.core.report",
    "format_table": "repro.core.report",
    "generate_test_suite": "repro.browsers.testsuite",
    "is_crlset_eligible": "repro.revocation.reason",
    "traffic_report": "repro.browsers.traffic",
}


def __getattr__(name: str):
    """Resolve component re-exports lazily (PEP 562)."""
    module_path = _COMPONENT_EXPORTS.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_path), name)


def __dir__() -> list[str]:
    return sorted([*globals(), *_COMPONENT_EXPORTS])


@dataclass
class StudyRun:
    """A completed study invocation: the study plus its results."""

    study: MeasurementStudy
    results: list[ExperimentResult]

    @property
    def crashes(self) -> int:
        """Experiments that raised (isolated into failure records)."""
        return sum(1 for result in self.results if not result.ok)

    @property
    def shape_failures(self) -> int:
        """Paper-vs-measured comparisons whose shape did not hold."""
        return sum(
            1
            for result in self.results
            for comparison in result.comparisons
            if not comparison.shape_holds
        )

    @property
    def ok(self) -> bool:
        return self.crashes == 0 and self.shape_failures == 0

    def write_trace(
        self,
        path: str | Path,
        *,
        experiment: str = "all",
        parallel: int | None = None,
    ) -> Path:
        """Write the run's trace as JSONL with the standard meta header.

        Only meaningful when the study was built with ``trace=True`` (or
        an enabled :class:`~repro.obs.Observability`); a disabled study
        writes a header-only file.
        """
        study = self.study
        return study.obs.write_jsonl(
            path,
            header={
                "experiment": experiment,
                "scale": study.calibration.scale,
                "seed": study.calibration.seed,
                "fault_profile": study.fault_profile,
                "fault_seed": study.fault_seed,
                "parallel": parallel or 1,
            },
        )


def list_experiments() -> dict[str, str]:
    """Mapping of experiment id -> title, in run (declaration) order."""
    return {eid: module.TITLE for eid, module in ALL_EXPERIMENTS.items()}


def list_mechanisms() -> dict[str, str]:
    """Mapping of mechanism name -> title, in registry (sweep) order.

    Every entry implements :class:`repro.mechanisms.RevocationMechanism`
    and passes the shared conformance suite
    (``tests/mechanisms/conformance.py``, docs/MECHANISMS.md).
    """
    from repro.mechanisms import mechanism_titles

    return mechanism_titles()


def run_study(
    *,
    experiment: str = "all",
    scale: float = 0.002,
    seed: int = 20151028,
    fault_profile: str | None = None,
    fault_seed: int | None = None,
    cache_dir: str | Path | None = None,
    parallel: int | None = None,
    trace: bool = False,
    isolate_errors: bool = True,
    supervise: bool = False,
    resume: bool = False,
    checkpoint_dir: str | Path | None = None,
    exec_fault_profile: str | None = None,
    exec_fault_seed: int | None = None,
    mechanism: str | None = None,
) -> StudyRun:
    """Build a study and run one experiment (or ``"all"``).

    ``trace=True`` attaches an enabled tracer/metrics registry; write
    the result with :meth:`StudyRun.write_trace`.  ``"all"`` isolates
    per-experiment crashes into failure records (``isolate_errors``);
    a single named experiment propagates exceptions, and an unknown id
    raises ``KeyError``.  ``mechanism`` restricts every
    revocation-mechanism sweep to one registered name (the CLI's
    ``run --mechanism``); an unknown name raises ``KeyError``.

    ``supervise=True`` runs ``"all"`` under the supervised execution
    layer (docs/ROBUSTNESS.md): worker crash recovery, per-leg
    checkpoints under ``checkpoint_dir``, and -- with an
    ``exec_fault_profile`` -- deterministic process-fault injection.
    ``resume=True`` replays checkpointed legs from an interrupted run;
    the combined output is byte-identical to an uninterrupted one.
    Raises :class:`repro.exec.supervisor.RunInterrupted` when an
    injected ABORT stops the run partway.
    """
    if mechanism is not None:
        from repro.mechanisms import get as get_mechanism

        get_mechanism(mechanism)  # unknown names fail fast
    obs = Observability(enabled=True) if trace else None
    study = MeasurementStudy(
        scale=scale,
        seed=seed,
        cache_dir=cache_dir,
        fault_profile=fault_profile,
        fault_seed=fault_seed,
        obs=obs,
        exec_fault_profile=exec_fault_profile,
        exec_fault_seed=exec_fault_seed,
        mechanisms=(mechanism,) if mechanism is not None else None,
    )
    if experiment == "all" and (supervise or resume):
        results = run_supervised(
            study,
            parallel=parallel,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
    elif experiment == "all":
        results = run_all(study, parallel=parallel, isolate_errors=isolate_errors)
    else:
        results = [run_experiment(experiment, study)]
    return StudyRun(study=study, results=results)


def new_study(
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    calibration=None,
    cache_dir: str | Path | None = None,
    fault_profile: str | None = None,
    fault_seed: int | None = None,
    trace: bool = False,
    shards: int = 1,
    gen_workers: int | None = None,
) -> MeasurementStudy:
    """Build a :class:`MeasurementStudy` without running anything.

    The supported way for scripts and benchmarks to get a study handle
    (substrate, scans, crawler, ...) without importing ``repro.core``.
    ``shards``/``gen_workers`` control sharded substrate generation; the
    corpus bytes are identical for any shard/worker count.
    """
    return MeasurementStudy(
        scale=scale,
        seed=seed,
        calibration=calibration,
        cache_dir=cache_dir,
        fault_profile=fault_profile,
        fault_seed=fault_seed,
        obs=Observability(enabled=True) if trace else None,
        shards=shards,
        gen_workers=gen_workers,
    )


def run_experiments(
    study: MeasurementStudy,
    parallel: int | None = None,
    isolate_errors: bool = True,
) -> list[ExperimentResult]:
    """Run every experiment against an existing study.

    Unlike :func:`run_study` this reuses the study's substrate (and its
    warm corpus store, when it has a ``cache_dir``), which is what the
    scaling benchmark times.
    """
    return run_all(study, parallel=parallel, isolate_errors=isolate_errors)


def golden_digests(
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    fault_profile: str = "none",
) -> dict[str, str]:
    """One sequential run of everything; sha256 of each report render.

    The contract behind ``tests/experiments/golden/`` and
    ``scripts/update_golden.py``: the study is deterministic per
    calibration, so these digests only change when report bytes do.
    Raises ``RuntimeError`` if any experiment crashes.
    """
    study = MeasurementStudy(scale=scale, seed=seed, fault_profile=fault_profile)
    results = run_all(study)
    crashed = [result.experiment_id for result in results if not result.ok]
    if crashed:
        raise RuntimeError(f"experiments crashed: {crashed}")
    return {
        result.experiment_id: hashlib.sha256(
            result.render().encode("utf-8")
        ).hexdigest()
        for result in results
    }


def mechanism_digests(
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    fault_profile: str = "none",
) -> dict[str, str]:
    """Per-mechanism sha256 digests of the mechanism-sweep report rows.

    The contract behind ``tests/experiments/golden/mechanisms-*.json``:
    one digest per registered mechanism over its rendered sweep block,
    so a refactor of any single mechanism is provably byte-neutral
    (and a behaviour change is localised to its name).
    """
    from repro.experiments import mechanisms as mechanisms_experiment

    study = MeasurementStudy(scale=scale, seed=seed, fault_profile=fault_profile)
    return {
        name: hashlib.sha256(block.encode("utf-8")).hexdigest()
        for name, block in mechanisms_experiment.mechanism_blocks(study).items()
    }


# -- corpus store -----------------------------------------------------------


def build_corpus(
    directory: str | Path,
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    calibration=None,
    shards: int = 1,
    workers: int | None = None,
    force: bool = False,
    supervise: bool = False,
    resume: bool = False,
    checkpoint_dir: str | Path | None = None,
    exec_fault_profile: str | None = None,
    exec_fault_seed: int | None = None,
) -> dict:
    """Generate the ecosystem (sharded) and persist it as a corpus store.

    Returns the store's :func:`corpus_info` plus a ``rebuilt`` flag.  An
    existing readable store for the same calibration is reused unless
    ``force``; sharding/worker count never changes the stored bytes.

    ``supervise=True`` builds each shard under the supervised execution
    layer with per-shard checkpoints (docs/ROBUSTNESS.md); an
    interrupted build resumed with ``resume=True`` produces a
    byte-identical store.  Raises
    :class:`repro.exec.supervisor.RunInterrupted` on an injected ABORT.
    """
    from repro.scan.calibration import Calibration
    from repro.scan.datastore import ArtifactCache
    from repro.scan.ecosystem import Ecosystem

    calibration = calibration or Calibration(scale=scale, seed=seed)
    if supervise or resume:
        from repro.exec.corpusbuild import build_corpus_supervised
        from repro.exec.faults import plan_from_exec_profile
        from repro.exec.supervisor import SupervisorConfig

        faults = plan_from_exec_profile(
            exec_fault_profile or "none",
            exec_fault_seed if exec_fault_seed is not None else calibration.seed,
        )
        info = build_corpus_supervised(
            directory,
            calibration=calibration,
            shards=max(shards, workers or 1),
            config=SupervisorConfig(workers=workers or 2),
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            faults=faults,
            force=force,
        )
        reused = info.pop("reused")
        info.pop("path", None)
        return {
            **corpus_info(ArtifactCache(directory).ecosystem_path(calibration)),
            **info,
            "rebuilt": not reused,
        }
    cache = ArtifactCache(directory)
    path = cache.ecosystem_path(calibration)
    if not force and path.exists():
        try:
            info = corpus_info(path)
        except Exception:
            info = None  # unreadable store: rebuild it below
        if info is not None:
            return {**info, "rebuilt": False}
    ecosystem = Ecosystem(calibration, shards=shards, workers=workers)
    cache.store_ecosystem(calibration, ecosystem)
    return {**corpus_info(path), "rebuilt": True}


def corpus_info(path: str | Path) -> dict:
    """A store's meta table (seed, scale, counts, digest) plus file size."""
    from repro.scan import corpus_store

    path = Path(path)
    meta = corpus_store.read_meta(path)
    return {**meta, "path": str(path), "bytes": path.stat().st_size}


def verify_corpus(path: str | Path) -> list[str]:
    """Integrity-check a corpus store; returns problems (empty == sound).

    Self-contained: validates sqlite readability, the whole-corpus
    content digest, and the per-brand slice digests recorded at write
    time, localising any corruption to the brand it landed in.  Never
    raises on a damaged file.  Quarantine + rebuild is ``python -m repro
    corpus verify --quarantine`` or a forced :func:`build_corpus`.
    """
    from repro.scan import corpus_store

    return corpus_store.verify_store(path)


def list_corpora(directory: str | Path) -> list[dict]:
    """Info for every corpus store under ``directory``."""
    entries: list[dict] = []
    for path in sorted(Path(directory).glob("corpus-*.sqlite")):
        try:
            entries.append(corpus_info(path))
        except Exception:
            entries.append({"path": str(path), "error": "unreadable"})
    return entries


def crawl_figures_legs(study: MeasurementStudy):
    """(naive, fast) thunks computing the Figure 5/6/9 crawl inputs.

    Both compute the same results over the study's ecosystem; the
    scaling benchmark times them against each other.  The fast leg
    invalidates the per-CRL series caches first so it pays for its own
    index builds.
    """
    from repro.scan.crawler import CrlCrawler

    ecosystem = study.ecosystem
    end = study.calibration.measurement_end

    def naive():
        crawler = CrlCrawler(ecosystem)
        return (
            crawler.daily_total_additions_naive(),
            crawler.sizes_at_naive(end),
            crawler.entry_counts_at_naive(end),
        )

    def fast():
        for crl in ecosystem.crls:
            crl.invalidate_series()
        crawler = CrlCrawler(ecosystem)
        return (
            crawler.daily_total_additions(),
            crawler.sizes_at(end),
            crawler.entry_counts_at(end),
        )

    return naive, fast


def run_one(
    experiment_id: str,
    study: MeasurementStudy | None = None,
    *,
    mechanism: str | None = None,
    **study_kwargs,
) -> ExperimentResult:
    """Run a single experiment and return its result.

    Pass an existing :class:`MeasurementStudy` to reuse its substrate,
    or keyword arguments (``scale``, ``seed``, ``fault_profile``, ...)
    to build a fresh one.  ``mechanism`` restricts the experiment's
    revocation-mechanism sweep to one registered name (it only applies
    when ``run_one`` builds the study; pass
    ``MeasurementStudy(mechanisms=...)`` yourself otherwise).  Raises
    ``KeyError`` for an unknown experiment id or mechanism name.
    """
    if mechanism is not None:
        from repro.mechanisms import get as get_mechanism

        get_mechanism(mechanism)  # unknown names fail fast
        if study is not None:
            raise ValueError(
                "mechanism= only applies when run_one builds the study; "
                "pass MeasurementStudy(mechanisms=...) instead"
            )
        study_kwargs["mechanisms"] = (mechanism,)
    if study is None:
        study = MeasurementStudy(**study_kwargs)
    return run_experiment(experiment_id, study)


def render_report(
    scale: float = 0.002,
    *,
    seed: int = 20151028,
    fault_profile: str | None = None,
    fault_seed: int | None = None,
) -> str:
    """The EXPERIMENTS.md body (what ``python -m repro report`` prints)."""
    from repro.experiments.reportgen import generate

    return generate(
        scale, seed=seed, fault_profile=fault_profile, fault_seed=fault_seed
    )


def load_trace(path: str | Path) -> list[dict]:
    """Parse a ``run --trace-out`` JSONL file into its records."""
    return _trace_report.load_records(path)


def render_trace(records: list[dict], fmt: str = "text", limit: int = 15) -> str:
    """Roll up trace records (summary, top spans, flame-table)."""
    if fmt == "json":
        return _trace_report.render_json(records, limit=limit)
    return _trace_report.render_text(records, limit=limit)


def diff_traces(
    a: str | Path | list[dict], b: str | Path | list[dict]
) -> TraceDiff:
    """Structurally diff two traces (paths or pre-loaded record lists).

    See :mod:`repro.obs.diff` for the alignment and attribution
    semantics; ``diff.is_empty`` is the machine-checkable "same
    behaviour" predicate.
    """
    a_records = load_trace(a) if isinstance(a, (str, Path)) else a
    b_records = load_trace(b) if isinstance(b, (str, Path)) else b
    return _diff_traces(a_records, b_records)


def render_diff(
    diff: TraceDiff,
    fmt: str = "text",
    a_label: str = "A",
    b_label: str = "B",
) -> str:
    """Render a :class:`TraceDiff` as text or JSON."""
    if fmt == "json":
        return render_diff_json(diff, a_label=a_label, b_label=b_label)
    return render_diff_text(diff, a_label=a_label, b_label=b_label)


def run_analysis(argv: list[str] | None = None) -> int:
    """Run the determinism & PKI-invariant linter; returns its exit code.

    The documented entry point behind ``python -m repro analyze``: the
    CLI delegates its argv verbatim so the linter owns its own flags
    (docs/STATIC_ANALYSIS.md).
    """
    from repro.analysis.cli import main as analyze_main

    return analyze_main(argv if argv is not None else [])
