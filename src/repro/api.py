"""Stable programmatic facade over the repro package.

``repro.api`` is the supported entry surface for scripts, notebooks,
benchmarks, and the CLI (``python -m repro`` is a thin shell over this
module).  Since API 2.0 the surface is organised into namespaced
sub-facades:

* :data:`api.study <study>` -- running studies and experiments, report
  rendering, golden digests (``run_study``, ``new_study``, ``run_one``,
  ``run_experiments``, ...);
* :data:`api.corpus <corpus>` -- corpus stores (``build``, ``info``,
  ``verify``, ``list``);
* :data:`api.trace <trace>` -- trace loading, rollup, and span-diff
  (``load``, ``render``, ``diff``, ``render_diff``);
* :data:`api.analysis <analysis>` -- the static-analysis gate (``run``);
* :data:`api.serve <serve>` -- the revocation-status serving layer
  (``build_service``, ``run_fleet``, ``serving_digests``).

Every pre-2.0 flat name (``api.run_study``, ``api.build_corpus``, ...)
remains available as a **deprecated alias**: attribute access resolves
through PEP 562 ``__getattr__`` to the *same object* as its namespaced
home (:data:`DEPRECATED_ALIASES` is the alias -> (namespace, attribute)
map) and emits a ``DeprecationWarning``.  In-repo code must use the
namespaced form (lint rule RPR016); the aliases exist for out-of-tree
consumers and will be removed in API 3.0.

Component re-exports: the classes and helpers the micro-benchmarks (and
similar out-of-tree consumers) exercise directly -- browser models, PKI
builders, CRLSet structures -- are re-exported lazily by name (PEP 562),
so ``api.CrlSetBuilder`` is stable even if the implementing module
moves.

Typical use::

    from repro import api

    run = api.study.run_study(experiment="fig2", scale=0.0005, trace=True)
    run.write_trace("a.jsonl", experiment="fig2")
    diff = api.trace.diff("a.jsonl", "b.jsonl")
    print(api.trace.render_diff(diff))
"""

from __future__ import annotations

import difflib
import hashlib
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.pipeline import MeasurementStudy
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    run_all,
    run_experiment,
    run_supervised,
)
from repro.obs import Observability
from repro.obs import report as _trace_report
from repro.obs.diff import TraceDiff as _TraceDiff
from repro.obs.diff import diff_traces as _obs_diff_traces
from repro.obs.diff import render_diff_json, render_diff_text
from repro.serve import FleetConfig as _FleetConfig
from repro.serve import build_service as _build_service
from repro.serve import render_serving_report as _render_serving_report
from repro.serve import run_fleet as _run_fleet

#: facade contract version: bump the minor on compatible additions, the
#: major on any breaking change to a signature or re-export listed in
#: ``__all__``/``_COMPONENT_EXPORTS`` (tests/test_api_contract.py pins
#: the surface against this).  2.0: the flat surface became namespaced
#: sub-facades; every 1.x flat name survives as a deprecated alias.
API_VERSION = "2.0"

__all__ = [
    "API_VERSION",
    "DEPRECATED_ALIASES",
    "analysis",
    "corpus",
    "serve",
    "study",
    "trace",
]

#: lazy component re-exports (attribute -> implementing module).  These
#: are part of the facade contract: renaming an implementing module is
#: fine, dropping or renaming an attribute is a breaking change.
_COMPONENT_EXPORTS = {
    "AndroidBrowser": "repro.browsers.mobile",
    "BloomFilter": "repro.crlset.bloom",
    "BrowserTestHarness": "repro.browsers.testsuite",
    "Calibration": "repro.scan.calibration",
    "Certificate": "repro.pki.certificate",
    "CertificateBuilder": "repro.pki.certificate",
    "CertificateRevocationList": "repro.revocation.crl",
    "ChainContext": "repro.browsers.policy",
    "CheckCost": "repro.mechanisms",
    "Chrome": "repro.browsers.desktop",
    "CrlPublisher": "repro.ca.crl_publisher",
    "CrlSetBuilder": "repro.crlset.builder",
    "Delivery": "repro.mechanisms",
    "Ed25519Backend": "repro.pki.keys",
    "Firefox": "repro.browsers.desktop",
    "GolombCompressedSet": "repro.crlset.gcs",
    "InternetExplorer": "repro.browsers.desktop",
    "KeyPair": "repro.pki.keys",
    "LINK_PROFILES": "repro.net.transport",
    "LinkProfile": "repro.net.transport",
    "MobileSafari": "repro.browsers.mobile",
    "MultiStapleServer": "repro.extensions.multistaple",
    "Name": "repro.pki.name",
    "OcspRequest": "repro.revocation.ocsp",
    "Opera12": "repro.browsers.desktop",
    "Opera31": "repro.browsers.desktop",
    "RevocationMechanism": "repro.mechanisms",
    "RevocationRegime": "repro.extensions.shortlived",
    "RevokedEntry": "repro.revocation.crl",
    "Safari": "repro.browsers.desktop",
    "ServeModel": "repro.mechanisms",
    "SessionCostModel": "repro.core.cost",
    "SessionState": "repro.mechanisms",
    "SimBackend": "repro.pki.keys",
    "StrictClient": "repro.browsers.strict",
    "TestPki": "repro.browsers.certgen",
    "UpdateModel": "repro.mechanisms",
    "all_browsers": "repro.browsers.registry",
    "analyze_coverage": "repro.crlset.coverage",
    "attack_window_study": "repro.extensions.shortlived",
    "blast_radius": "repro.extensions.onecrl",
    "build_onecrl": "repro.extensions.onecrl",
    "chain_check_cost": "repro.extensions.multistaple",
    "format_bytes": "repro.core.report",
    "format_table": "repro.core.report",
    "generate_test_suite": "repro.browsers.testsuite",
    "is_crlset_eligible": "repro.revocation.reason",
    "traffic_report": "repro.browsers.traffic",
}


@dataclass
class StudyRun:
    """A completed study invocation: the study plus its results."""

    study: MeasurementStudy
    results: list[ExperimentResult]

    @property
    def crashes(self) -> int:
        """Experiments that raised (isolated into failure records)."""
        return sum(1 for result in self.results if not result.ok)

    @property
    def shape_failures(self) -> int:
        """Paper-vs-measured comparisons whose shape did not hold."""
        return sum(
            1
            for result in self.results
            for comparison in result.comparisons
            if not comparison.shape_holds
        )

    @property
    def ok(self) -> bool:
        return self.crashes == 0 and self.shape_failures == 0

    def write_trace(
        self,
        path: str | Path,
        *,
        experiment: str = "all",
        parallel: int | None = None,
    ) -> Path:
        """Write the run's trace as JSONL with the standard meta header.

        Only meaningful when the study was built with ``trace=True`` (or
        an enabled :class:`~repro.obs.Observability`); a disabled study
        writes a header-only file.
        """
        study = self.study
        return study.obs.write_jsonl(
            path,
            header={
                "experiment": experiment,
                "scale": study.calibration.scale,
                "seed": study.calibration.seed,
                "fault_profile": study.fault_profile,
                "fault_seed": study.fault_seed,
                "parallel": parallel or 1,
            },
        )


# The class lives on ``api.study.StudyRun``; the module-global binding is
# removed below so the flat ``api.StudyRun`` spelling goes through the
# deprecated-alias path like every other 1.x name.
_StudyRun = StudyRun


def _list_experiments() -> dict[str, str]:
    """Mapping of experiment id -> title, in run (declaration) order."""
    return {eid: module.TITLE for eid, module in ALL_EXPERIMENTS.items()}


def _list_mechanisms() -> dict[str, str]:
    """Mapping of mechanism name -> title, in registry (sweep) order.

    Every entry implements :class:`repro.mechanisms.RevocationMechanism`
    and passes the shared conformance suite
    (``tests/mechanisms/conformance.py``, docs/MECHANISMS.md).
    """
    from repro.mechanisms import mechanism_titles

    return mechanism_titles()


def _run_study(
    *,
    experiment: str = "all",
    scale: float = 0.002,
    seed: int = 20151028,
    fault_profile: str | None = None,
    fault_seed: int | None = None,
    cache_dir: str | Path | None = None,
    parallel: int | None = None,
    trace: bool = False,
    isolate_errors: bool = True,
    supervise: bool = False,
    resume: bool = False,
    checkpoint_dir: str | Path | None = None,
    exec_fault_profile: str | None = None,
    exec_fault_seed: int | None = None,
    mechanism: str | None = None,
) -> StudyRun:
    """Build a study and run one experiment (or ``"all"``).

    ``trace=True`` attaches an enabled tracer/metrics registry; write
    the result with :meth:`StudyRun.write_trace`.  ``"all"`` isolates
    per-experiment crashes into failure records (``isolate_errors``);
    a single named experiment propagates exceptions, and an unknown id
    raises ``KeyError``.  ``mechanism`` restricts every
    revocation-mechanism sweep to one registered name (the CLI's
    ``run --mechanism``); an unknown name raises ``KeyError``.

    ``supervise=True`` runs ``"all"`` under the supervised execution
    layer (docs/ROBUSTNESS.md): worker crash recovery, per-leg
    checkpoints under ``checkpoint_dir``, and -- with an
    ``exec_fault_profile`` -- deterministic process-fault injection.
    ``resume=True`` replays checkpointed legs from an interrupted run;
    the combined output is byte-identical to an uninterrupted one.
    Raises :class:`repro.exec.supervisor.RunInterrupted` when an
    injected ABORT stops the run partway.
    """
    if mechanism is not None:
        from repro.mechanisms import get as get_mechanism

        get_mechanism(mechanism)  # unknown names fail fast
    obs = Observability(enabled=True) if trace else None
    built = MeasurementStudy(
        scale=scale,
        seed=seed,
        cache_dir=cache_dir,
        fault_profile=fault_profile,
        fault_seed=fault_seed,
        obs=obs,
        exec_fault_profile=exec_fault_profile,
        exec_fault_seed=exec_fault_seed,
        mechanisms=(mechanism,) if mechanism is not None else None,
    )
    if experiment == "all" and (supervise or resume):
        results = run_supervised(
            built,
            parallel=parallel,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
    elif experiment == "all":
        results = run_all(built, parallel=parallel, isolate_errors=isolate_errors)
    else:
        results = [run_experiment(experiment, built)]
    return _StudyRun(study=built, results=results)


def _new_study(
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    calibration=None,
    cache_dir: str | Path | None = None,
    fault_profile: str | None = None,
    fault_seed: int | None = None,
    trace: bool = False,
    shards: int = 1,
    gen_workers: int | None = None,
) -> MeasurementStudy:
    """Build a :class:`MeasurementStudy` without running anything.

    The supported way for scripts and benchmarks to get a study handle
    (substrate, scans, crawler, ...) without importing ``repro.core``.
    ``shards``/``gen_workers`` control sharded substrate generation; the
    corpus bytes are identical for any shard/worker count.
    """
    return MeasurementStudy(
        scale=scale,
        seed=seed,
        calibration=calibration,
        cache_dir=cache_dir,
        fault_profile=fault_profile,
        fault_seed=fault_seed,
        obs=Observability(enabled=True) if trace else None,
        shards=shards,
        gen_workers=gen_workers,
    )


def _run_experiments(
    study: MeasurementStudy,
    parallel: int | None = None,
    isolate_errors: bool = True,
) -> list[ExperimentResult]:
    """Run every experiment against an existing study.

    Unlike :func:`run_study` this reuses the study's substrate (and its
    warm corpus store, when it has a ``cache_dir``), which is what the
    scaling benchmark times.
    """
    return run_all(study, parallel=parallel, isolate_errors=isolate_errors)


def _golden_digests(
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    fault_profile: str = "none",
) -> dict[str, str]:
    """One sequential run of everything; sha256 of each report render.

    The contract behind ``tests/experiments/golden/`` and
    ``scripts/update_golden.py``: the study is deterministic per
    calibration, so these digests only change when report bytes do.
    Raises ``RuntimeError`` if any experiment crashes.
    """
    built = MeasurementStudy(scale=scale, seed=seed, fault_profile=fault_profile)
    results = run_all(built)
    crashed = [result.experiment_id for result in results if not result.ok]
    if crashed:
        raise RuntimeError(f"experiments crashed: {crashed}")
    return {
        result.experiment_id: hashlib.sha256(
            result.render().encode("utf-8")
        ).hexdigest()
        for result in results
    }


def _mechanism_digests(
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    fault_profile: str = "none",
) -> dict[str, str]:
    """Per-mechanism sha256 digests of the mechanism-sweep report rows.

    The contract behind ``tests/experiments/golden/mechanisms-*.json``:
    one digest per registered mechanism over its rendered sweep block,
    so a refactor of any single mechanism is provably byte-neutral
    (and a behaviour change is localised to its name).
    """
    from repro.experiments import mechanisms as mechanisms_experiment

    built = MeasurementStudy(scale=scale, seed=seed, fault_profile=fault_profile)
    return {
        name: hashlib.sha256(block.encode("utf-8")).hexdigest()
        for name, block in mechanisms_experiment.mechanism_blocks(built).items()
    }


# -- corpus store -----------------------------------------------------------


def _build_corpus(
    directory: str | Path,
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    calibration=None,
    shards: int = 1,
    workers: int | None = None,
    force: bool = False,
    supervise: bool = False,
    resume: bool = False,
    checkpoint_dir: str | Path | None = None,
    exec_fault_profile: str | None = None,
    exec_fault_seed: int | None = None,
) -> dict:
    """Generate the ecosystem (sharded) and persist it as a corpus store.

    Returns the store's :func:`corpus.info` plus a ``rebuilt`` flag.  An
    existing readable store for the same calibration is reused unless
    ``force``; sharding/worker count never changes the stored bytes.

    ``supervise=True`` builds each shard under the supervised execution
    layer with per-shard checkpoints (docs/ROBUSTNESS.md); an
    interrupted build resumed with ``resume=True`` produces a
    byte-identical store.  Raises
    :class:`repro.exec.supervisor.RunInterrupted` on an injected ABORT.
    """
    from repro.scan.calibration import Calibration
    from repro.scan.datastore import ArtifactCache
    from repro.scan.ecosystem import Ecosystem

    calibration = calibration or Calibration(scale=scale, seed=seed)
    if supervise or resume:
        from repro.exec.corpusbuild import build_corpus_supervised
        from repro.exec.faults import plan_from_exec_profile
        from repro.exec.supervisor import SupervisorConfig

        faults = plan_from_exec_profile(
            exec_fault_profile or "none",
            exec_fault_seed if exec_fault_seed is not None else calibration.seed,
        )
        info = build_corpus_supervised(
            directory,
            calibration=calibration,
            shards=max(shards, workers or 1),
            config=SupervisorConfig(workers=workers or 2),
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            faults=faults,
            force=force,
        )
        reused = info.pop("reused")
        info.pop("path", None)
        return {
            **_corpus_info(ArtifactCache(directory).ecosystem_path(calibration)),
            **info,
            "rebuilt": not reused,
        }
    cache = ArtifactCache(directory)
    path = cache.ecosystem_path(calibration)
    if not force and path.exists():
        try:
            info = _corpus_info(path)
        except Exception:
            info = None  # unreadable store: rebuild it below
        if info is not None:
            return {**info, "rebuilt": False}
    ecosystem = Ecosystem(calibration, shards=shards, workers=workers)
    cache.store_ecosystem(calibration, ecosystem)
    return {**_corpus_info(path), "rebuilt": True}


def _corpus_info(path: str | Path) -> dict:
    """A store's meta table (seed, scale, counts, digest) plus file size."""
    from repro.scan import corpus_store

    path = Path(path)
    meta = corpus_store.read_meta(path)
    return {**meta, "path": str(path), "bytes": path.stat().st_size}


def _verify_corpus(path: str | Path) -> list[str]:
    """Integrity-check a corpus store; returns problems (empty == sound).

    Self-contained: validates sqlite readability, the whole-corpus
    content digest, and the per-brand slice digests recorded at write
    time, localising any corruption to the brand it landed in.  Never
    raises on a damaged file.  Quarantine + rebuild is ``python -m repro
    corpus verify --quarantine`` or a forced :func:`corpus.build`.
    """
    from repro.scan import corpus_store

    return corpus_store.verify_store(path)


def _list_corpora(directory: str | Path) -> list[dict]:
    """Info for every corpus store under ``directory``."""
    entries: list[dict] = []
    for path in sorted(Path(directory).glob("corpus-*.sqlite")):
        try:
            entries.append(_corpus_info(path))
        except Exception:
            entries.append({"path": str(path), "error": "unreadable"})
    return entries


def _crawl_figures_legs(study: MeasurementStudy):
    """(naive, fast) thunks computing the Figure 5/6/9 crawl inputs.

    Both compute the same results over the study's ecosystem; the
    scaling benchmark times them against each other.  The fast leg
    invalidates the per-CRL series caches first so it pays for its own
    index builds.
    """
    from repro.scan.crawler import CrlCrawler

    ecosystem = study.ecosystem
    end = study.calibration.measurement_end

    def naive():
        crawler = CrlCrawler(ecosystem)
        return (
            crawler.daily_total_additions_naive(),
            crawler.sizes_at_naive(end),
            crawler.entry_counts_at_naive(end),
        )

    def fast():
        for crl in ecosystem.crls:
            crl.invalidate_series()
        crawler = CrlCrawler(ecosystem)
        return (
            crawler.daily_total_additions(),
            crawler.sizes_at(end),
            crawler.entry_counts_at(end),
        )

    return naive, fast


def _run_one(
    experiment_id: str,
    study: MeasurementStudy | None = None,
    *,
    mechanism: str | None = None,
    **study_kwargs,
) -> ExperimentResult:
    """Run a single experiment and return its result.

    Pass an existing :class:`MeasurementStudy` to reuse its substrate,
    or keyword arguments (``scale``, ``seed``, ``fault_profile``, ...)
    to build a fresh one.  ``mechanism`` restricts the experiment's
    revocation-mechanism sweep to one registered name (it only applies
    when ``run_one`` builds the study; pass
    ``MeasurementStudy(mechanisms=...)`` yourself otherwise).  Raises
    ``KeyError`` for an unknown experiment id or mechanism name.
    """
    if mechanism is not None:
        from repro.mechanisms import get as get_mechanism

        get_mechanism(mechanism)  # unknown names fail fast
        if study is not None:
            raise ValueError(
                "mechanism= only applies when run_one builds the study; "
                "pass MeasurementStudy(mechanisms=...) instead"
            )
        study_kwargs["mechanisms"] = (mechanism,)
    if study is None:
        study = MeasurementStudy(**study_kwargs)
    return run_experiment(experiment_id, study)


def _render_report(
    scale: float = 0.002,
    *,
    seed: int = 20151028,
    fault_profile: str | None = None,
    fault_seed: int | None = None,
) -> str:
    """The EXPERIMENTS.md body (what ``python -m repro report`` prints)."""
    from repro.experiments.reportgen import generate

    return generate(
        scale, seed=seed, fault_profile=fault_profile, fault_seed=fault_seed
    )


# -- traces -----------------------------------------------------------------


def _load_trace(path: str | Path) -> list[dict]:
    """Parse a ``run --trace-out`` JSONL file into its records."""
    return _trace_report.load_records(path)


def _render_trace(records: list[dict], fmt: str = "text", limit: int = 15) -> str:
    """Roll up trace records (summary, top spans, flame-table)."""
    if fmt == "json":
        return _trace_report.render_json(records, limit=limit)
    return _trace_report.render_text(records, limit=limit)


def _diff_traces(
    a: str | Path | list[dict], b: str | Path | list[dict]
) -> _TraceDiff:
    """Structurally diff two traces (paths or pre-loaded record lists).

    See :mod:`repro.obs.diff` for the alignment and attribution
    semantics; ``diff.is_empty`` is the machine-checkable "same
    behaviour" predicate.
    """
    a_records = _load_trace(a) if isinstance(a, (str, Path)) else a
    b_records = _load_trace(b) if isinstance(b, (str, Path)) else b
    return _obs_diff_traces(a_records, b_records)


def _render_diff(
    diff: _TraceDiff,
    fmt: str = "text",
    a_label: str = "A",
    b_label: str = "B",
) -> str:
    """Render a :class:`~repro.obs.diff.TraceDiff` as text or JSON."""
    if fmt == "json":
        return render_diff_json(diff, a_label=a_label, b_label=b_label)
    return render_diff_text(diff, a_label=a_label, b_label=b_label)


# -- static analysis --------------------------------------------------------


def _run_analysis(argv: list[str] | None = None) -> int:
    """Run the determinism & PKI-invariant linter; returns its exit code.

    The documented entry point behind ``python -m repro analyze``: the
    CLI delegates its argv verbatim so the linter owns its own flags
    (docs/STATIC_ANALYSIS.md).
    """
    from repro.analysis.cli import main as analyze_main

    return analyze_main(argv if argv is not None else [])


# -- serving ----------------------------------------------------------------


def _serving_digests(
    *,
    scale: float = 0.002,
    seed: int = 20151028,
    fault_profile: str = "none",
) -> dict[str, str]:
    """Per-mechanism sha256 digests of the serving-experiment blocks.

    The contract behind ``tests/experiments/golden/serving-*.json``:
    one digest per registered mechanism over its rendered serving
    block, so a serving-stack change is localised to the mechanisms it
    actually affects.
    """
    from repro.experiments import serving as serving_experiment

    built = MeasurementStudy(scale=scale, seed=seed, fault_profile=fault_profile)
    return {
        name: hashlib.sha256(block.encode("utf-8")).hexdigest()
        for name, block in serving_experiment.serving_blocks(built).items()
    }


# -- the namespaced facade --------------------------------------------------


class _Facet:
    """One namespaced sub-facade (``api.study``, ``api.corpus``, ...).

    Members are plain instance attributes holding the *same objects* the
    deprecated flat aliases resolve to, so identity checks
    (``api.run_study is api.study.run_study``) hold by construction.
    """

    def __init__(self, name: str, members: dict[str, object]) -> None:
        self._name = name
        self._members = tuple(sorted(members))
        self.__dict__.update(members)

    @property
    def members(self) -> tuple[str, ...]:
        return self._members

    def __repr__(self) -> str:
        return f"<repro.api.{self._name}: {', '.join(self._members)}>"

    def __dir__(self) -> list[str]:
        return list(self._members)


study = _Facet(
    "study",
    {
        "StudyRun": _StudyRun,
        "crawl_figures_legs": _crawl_figures_legs,
        "golden_digests": _golden_digests,
        "list_experiments": _list_experiments,
        "list_mechanisms": _list_mechanisms,
        "mechanism_digests": _mechanism_digests,
        "new_study": _new_study,
        "render_report": _render_report,
        "run_experiments": _run_experiments,
        "run_one": _run_one,
        "run_study": _run_study,
    },
)

corpus = _Facet(
    "corpus",
    {
        "build": _build_corpus,
        "info": _corpus_info,
        "list": _list_corpora,
        "verify": _verify_corpus,
    },
)

trace = _Facet(
    "trace",
    {
        "TraceDiff": _TraceDiff,
        "diff": _diff_traces,
        "load": _load_trace,
        "render": _render_trace,
        "render_diff": _render_diff,
    },
)

analysis = _Facet("analysis", {"run": _run_analysis})

serve = _Facet(
    "serve",
    {
        "FleetConfig": _FleetConfig,
        "build_service": _build_service,
        "render_serving_report": _render_serving_report,
        "run_fleet": _run_fleet,
        "serving_digests": _serving_digests,
    },
)

#: every pre-2.0 flat name -> its namespaced home ``(facet, attribute)``.
#: Resolution happens in ``__getattr__`` (the names are deliberately NOT
#: module globals) and returns the identical object, with a
#: ``DeprecationWarning``.  Scheduled for removal in API 3.0.
DEPRECATED_ALIASES: dict[str, tuple[str, str]] = {
    "StudyRun": ("study", "StudyRun"),
    "TraceDiff": ("trace", "TraceDiff"),
    "build_corpus": ("corpus", "build"),
    "corpus_info": ("corpus", "info"),
    "crawl_figures_legs": ("study", "crawl_figures_legs"),
    "diff_traces": ("trace", "diff"),
    "golden_digests": ("study", "golden_digests"),
    "list_corpora": ("corpus", "list"),
    "list_experiments": ("study", "list_experiments"),
    "list_mechanisms": ("study", "list_mechanisms"),
    "load_trace": ("trace", "load"),
    "mechanism_digests": ("study", "mechanism_digests"),
    "new_study": ("study", "new_study"),
    "render_diff": ("trace", "render_diff"),
    "render_report": ("study", "render_report"),
    "render_trace": ("trace", "render"),
    "run_analysis": ("analysis", "run"),
    "run_experiments": ("study", "run_experiments"),
    "run_one": ("study", "run_one"),
    "run_study": ("study", "run_study"),
    "verify_corpus": ("corpus", "verify"),
}

_FACETS: dict[str, _Facet] = {
    "analysis": analysis,
    "corpus": corpus,
    "serve": serve,
    "study": study,
    "trace": trace,
}

# Flat access to StudyRun must go through the alias path like every
# other 1.x name; the object itself lives on api.study.StudyRun.
del StudyRun


def _surface() -> list[str]:
    """Every name the facade answers for (suggestions draw from this)."""
    return sorted(
        {*__all__, *_COMPONENT_EXPORTS, *DEPRECATED_ALIASES}
    )


def __getattr__(name: str):
    """Resolve deprecated aliases and component re-exports (PEP 562)."""
    alias = DEPRECATED_ALIASES.get(name)
    if alias is not None:
        facet, attribute = alias
        warnings.warn(
            f"repro.api.{name} is deprecated since API 2.0; "
            f"use repro.api.{facet}.{attribute}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_FACETS[facet], attribute)
    module_path = _COMPONENT_EXPORTS.get(name)
    if module_path is not None:
        import importlib

        return getattr(importlib.import_module(module_path), name)
    suggestions = difflib.get_close_matches(name, _surface(), n=3, cutoff=0.6)
    hint = (
        f" (did you mean: {', '.join(suggestions)}?)" if suggestions else ""
    )
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}{hint}"
    )


def __dir__() -> list[str]:
    return sorted([*globals(), *_COMPONENT_EXPORTS, *DEPRECATED_ALIASES])
