"""Client-side cache for revocation artefacts.

CRLs and OCSP responses both carry validity windows and are cacheable
(§2.2); the paper notes 95% of CRLs expire within 24 hours, limiting how
much caching actually saves.  The cache stores any object exposing an
``is_expired(at)`` predicate, keyed by URL (plus serial for OCSP).
"""

from __future__ import annotations

import datetime
from typing import Any

__all__ = ["ClientCache"]


class ClientCache:
    """An expiry-aware key/value cache with hit/miss accounting."""

    def __init__(self, max_entries: int = 10_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._entries: dict[Any, Any] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, key: Any, at: datetime.datetime) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.is_expired(at):
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: Any, value: Any) -> None:
        if not hasattr(value, "is_expired"):
            raise TypeError("cached values must expose is_expired(at)")
        if len(self._entries) >= self._max_entries and key not in self._entries:
            # Evict the entry with the earliest expiry (simple, deterministic).
            victim = min(self._entries, key=lambda k: self._entries[k].next_update)
            del self._entries[victim]
        self._entries[key] = value

    def invalidate(self, key: Any) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
