"""A :class:`~repro.revocation.checker.RevocationFetcher` over the
simulated network, with client-side caching and cost accounting."""

from __future__ import annotations

import datetime

from repro.net.cache import ClientCache
from repro.net.dns import DnsError
from repro.net.http import HttpRequest
from repro.net.transport import Network, TimeoutError_
from repro.revocation.crl import CertificateRevocationList
from repro.revocation.ocsp import OcspRequest, OcspResponse

__all__ = ["NetworkFetcher"]


class NetworkFetcher:
    """Fetches CRLs and OCSP responses through a :class:`Network`.

    Keeps running totals of bytes and latency so experiments can report
    the client-side cost of revocation checking (§5.2).
    """

    def __init__(
        self,
        network: Network,
        clock_now: "callable",
        cache: ClientCache | None = None,
    ) -> None:
        self._network = network
        self._now = clock_now
        self.cache = cache if cache is not None else ClientCache()
        self.bytes_downloaded = 0
        self.latency_total = datetime.timedelta(0)
        self.fetches = 0

    def fetch_crl(self, url: str) -> CertificateRevocationList | None:
        at = self._now()
        cached = self.cache.get(("crl", url), at)
        if cached is not None:
            return cached
        try:
            response, stats = self._network.get(url, at)
        except (DnsError, TimeoutError_, ValueError):
            return None
        self._account(stats)
        if not response.ok:
            return None
        try:
            crl = CertificateRevocationList.from_der(response.body, url=url)
        except Exception:
            return None
        self.cache.put(("crl", url), crl)
        return crl

    def fetch_ocsp(
        self,
        url: str,
        issuer_key_hash: bytes,
        serial_number: int,
        use_get: bool = True,
    ) -> OcspResponse | None:
        at = self._now()
        key = ("ocsp", url, issuer_key_hash, serial_number)
        cached = self.cache.get(key, at)
        if cached is not None:
            return cached
        ocsp_request = OcspRequest(
            issuer_key_hash=issuer_key_hash,
            serial_number=serial_number,
            use_get=use_get,
        )
        method = "GET" if use_get else "POST"
        request = HttpRequest(method, url, body=ocsp_request.to_der())
        try:
            response, stats = self._network.request(request, at)
        except (DnsError, TimeoutError_, ValueError):
            return None
        self._account(stats)
        if not response.ok:
            return None
        try:
            parsed = OcspResponse.from_der(response.body)
        except Exception:
            return None
        if parsed.is_successful:
            self.cache.put(key, parsed)
        return parsed

    def _account(self, stats) -> None:
        self.bytes_downloaded += stats.bytes_down
        self.latency_total += stats.latency
        self.fetches += 1
