"""A :class:`~repro.revocation.checker.RevocationFetcher` over the
simulated network, with client-side caching, retries, a per-host circuit
breaker, and cost accounting.

Every attempt -- including failed ones -- is charged to the fetcher's
counters: a timeout costs the network's timeout budget, a DNS failure
costs one RTT, and backoff pauses between retries cost their wait time.
This is what lets §5.2-style cost numbers include broken endpoints
instead of silently undercounting them (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import datetime
import enum
import random
from dataclasses import dataclass, field

from repro.net.cache import ClientCache
from repro.net.dns import DnsError
from repro.net.http import HttpRequest, split_url
from repro.net.transport import Network, TimeoutError_, TransferStats
from repro.obs import NULL_OBS, Observability
from repro.revocation.crl import CertificateRevocationList
from repro.revocation.ocsp import OcspRequest, OcspResponse

__all__ = [
    "CircuitBreaker",
    "FetchOutcome",
    "FetchResult",
    "FetchStats",
    "NetworkFetcher",
    "RetryPolicy",
]


class FetchOutcome(enum.Enum):
    """Why a fetch ended the way it did."""

    OK = "ok"
    TIMEOUT = "timeout"
    DNS_FAILURE = "dns_failure"
    HTTP_ERROR = "http_error"
    PARSE_ERROR = "parse_error"
    BREAKER_OPEN = "breaker_open"
    NEGATIVE_CACHED = "negative_cached"

    @property
    def is_transport_failure(self) -> bool:
        return self in (FetchOutcome.TIMEOUT, FetchOutcome.DNS_FAILURE)


@dataclass(frozen=True)
class FetchResult:
    """One fetch's value plus its failure classification and cost."""

    value: object | None
    outcome: FetchOutcome
    attempts: int = 1
    latency: datetime.timedelta = datetime.timedelta(0)
    bytes_downloaded: int = 0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.outcome is FetchOutcome.OK and self.value is not None


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff behaviour for one logical fetch.

    ``max_attempts`` caps tries (1 = no retry); backoff before attempt
    ``n+1`` is ``backoff_base * backoff_factor**(n-1)``, stretched by up
    to ``jitter`` (a fraction, drawn from the fetcher's seeded RNG).
    ``negative_cache_ttl`` remembers exhausted failures so immediate
    re-fetches of a dead URL are answered locally.
    """

    max_attempts: int = 3
    backoff_base: datetime.timedelta = datetime.timedelta(milliseconds=200)
    backoff_factor: float = 2.0
    jitter: float = 0.1
    retry_http_errors: bool = True
    retry_parse_errors: bool = True
    negative_cache_ttl: datetime.timedelta | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        return cls(max_attempts=1)

    @classmethod
    def aggressive(cls) -> "RetryPolicy":
        """Retry hard and remember dead endpoints (availability study)."""
        return cls(
            max_attempts=4,
            negative_cache_ttl=datetime.timedelta(minutes=5),
        )

    def should_retry(self, outcome: FetchOutcome, attempt: int) -> bool:
        if attempt >= self.max_attempts:
            return False
        if outcome.is_transport_failure:
            return True
        if outcome is FetchOutcome.HTTP_ERROR:
            return self.retry_http_errors
        if outcome is FetchOutcome.PARSE_ERROR:
            return self.retry_parse_errors
        return False

    def backoff(self, attempt: int, rng: random.Random) -> datetime.timedelta:
        """Pause before attempt ``attempt + 1`` (``attempt`` >= 1)."""
        pause = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        return pause * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Per-host consecutive-failure breaker.

    After ``failure_threshold`` consecutive exhausted fetches to a host
    the breaker opens and rejects requests locally (no network cost
    beyond bookkeeping) until ``reset_after`` of simulated time has
    passed; the next request is then a half-open probe whose result
    closes or re-opens the circuit.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: datetime.timedelta = datetime.timedelta(minutes=1),
        obs: Observability | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.obs = obs if obs is not None else NULL_OBS
        self._consecutive: dict[str, int] = {}
        self._opened_at: dict[str, datetime.datetime] = {}

    def allow(self, host: str, at: datetime.datetime) -> bool:
        opened = self._opened_at.get(host)
        if opened is None:
            return True
        if at >= opened + self.reset_after:
            if self.obs.enabled:
                self.obs.tracer.event("breaker.half_open", host=host)
                self.obs.metrics.counter("breaker.half_open", host=host).inc()
            return True  # half-open probe
        return False

    def is_open(self, host: str) -> bool:
        return host in self._opened_at

    def record_success(self, host: str) -> None:
        was_open = host in self._opened_at
        self._consecutive.pop(host, None)
        self._opened_at.pop(host, None)
        if was_open and self.obs.enabled:
            self.obs.tracer.event("breaker.close", host=host)
            self.obs.metrics.counter("breaker.closed", host=host).inc()

    def record_failure(self, host: str, at: datetime.datetime) -> None:
        count = self._consecutive.get(host, 0) + 1
        self._consecutive[host] = count
        if count >= self.failure_threshold:
            newly_open = host not in self._opened_at
            self._opened_at[host] = at
            if self.obs.enabled:
                name = "breaker.open" if newly_open else "breaker.reopen"
                self.obs.tracer.event(name, host=host, failures=count)
                self.obs.metrics.counter(name + "ed", host=host).inc()


@dataclass
class FetchStats:
    """Running totals over every attempt the fetcher made."""

    fetches: int = 0  # logical fetches that hit the wire (or tried to)
    attempts: int = 0  # individual request attempts
    retries: int = 0
    successes: int = 0
    failures: int = 0  # logical fetches that exhausted their attempts
    timeouts: int = 0
    dns_failures: int = 0
    http_errors: int = 0
    parse_errors: int = 0
    breaker_rejections: int = 0
    negative_cache_hits: int = 0
    bytes_downloaded: int = 0
    latency_total: datetime.timedelta = field(default_factory=lambda: datetime.timedelta(0))
    backoff_total: datetime.timedelta = field(default_factory=lambda: datetime.timedelta(0))

    def as_dict(self) -> dict:
        return {
            "fetches": self.fetches,
            "attempts": self.attempts,
            "retries": self.retries,
            "successes": self.successes,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "dns_failures": self.dns_failures,
            "http_errors": self.http_errors,
            "parse_errors": self.parse_errors,
            "breaker_rejections": self.breaker_rejections,
            "negative_cache_hits": self.negative_cache_hits,
            "bytes_downloaded": self.bytes_downloaded,
            "latency_total_ms": self.latency_total / datetime.timedelta(milliseconds=1),
            "backoff_total_ms": self.backoff_total / datetime.timedelta(milliseconds=1),
        }

    def publish(self, metrics, **labels) -> None:
        """Wire the running totals into a metrics registry as gauges.

        Use distinct ``labels`` per fetcher (experiment leg, component):
        gauges are last-write instruments, so publishing two fetchers'
        totals under the same labels would overwrite, not add.
        """
        for name, value in self.as_dict().items():
            metrics.gauge(f"fetch_stats.{name}", **labels).set(value)

    def merge(self, other: FetchStats) -> None:
        """Accumulate another fetcher's totals into this one.

        Lets a caller that spins up many short-lived fetchers (one per
        simulated client) keep one aggregate to ``publish``.
        """
        self.fetches += other.fetches
        self.attempts += other.attempts
        self.retries += other.retries
        self.successes += other.successes
        self.failures += other.failures
        self.timeouts += other.timeouts
        self.dns_failures += other.dns_failures
        self.http_errors += other.http_errors
        self.parse_errors += other.parse_errors
        self.breaker_rejections += other.breaker_rejections
        self.negative_cache_hits += other.negative_cache_hits
        self.bytes_downloaded += other.bytes_downloaded
        self.latency_total += other.latency_total
        self.backoff_total += other.backoff_total


class _NegativeEntry:
    """ClientCache-compatible tombstone for an exhausted fetch."""

    def __init__(self, outcome: FetchOutcome, expires: datetime.datetime) -> None:
        self.outcome = outcome
        self.next_update = expires  # eviction key used by ClientCache

    def is_expired(self, at: datetime.datetime) -> bool:
        return at > self.next_update


_OUTCOME_COUNTERS = {
    FetchOutcome.TIMEOUT: "timeouts",
    FetchOutcome.DNS_FAILURE: "dns_failures",
    FetchOutcome.HTTP_ERROR: "http_errors",
    FetchOutcome.PARSE_ERROR: "parse_errors",
}


class NetworkFetcher:
    """Fetches CRLs and OCSP responses through a :class:`Network`.

    Keeps running totals of bytes and latency so experiments can report
    the client-side cost of revocation checking (§5.2); retry/backoff,
    negative caching, and the circuit breaker make the cost of *broken*
    endpoints explicit instead of free.
    """

    def __init__(
        self,
        network: Network,
        clock_now: "callable",
        cache: ClientCache | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        seed: int = 0,
        obs: Observability | None = None,
    ) -> None:
        self._network = network
        self._now = clock_now
        self.obs = obs if obs is not None else NULL_OBS
        self.cache = cache if cache is not None else ClientCache()
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(obs=self.obs)
        self._rng = random.Random(f"fetcher/{seed}")
        self.stats = FetchStats()
        self._negative: ClientCache = ClientCache()

    # Legacy counter names, kept for existing callers.
    @property
    def bytes_downloaded(self) -> int:
        return self.stats.bytes_downloaded

    @property
    def latency_total(self) -> datetime.timedelta:
        return self.stats.latency_total

    @property
    def fetches(self) -> int:
        return self.stats.fetches

    # -- public API --------------------------------------------------------

    def fetch_crl(self, url: str) -> CertificateRevocationList | None:
        return self.fetch_crl_result(url).value

    def fetch_crl_result(self, url: str) -> FetchResult:
        return self._fetch(
            key=("crl", url),
            request=HttpRequest("GET", url),
            parse=lambda body: CertificateRevocationList.from_der(body, url=url),
        )

    def fetch_ocsp(
        self,
        url: str,
        issuer_key_hash: bytes,
        serial_number: int,
        use_get: bool = True,
    ) -> OcspResponse | None:
        return self.fetch_ocsp_result(
            url, issuer_key_hash, serial_number, use_get=use_get
        ).value

    def fetch_ocsp_result(
        self,
        url: str,
        issuer_key_hash: bytes,
        serial_number: int,
        use_get: bool = True,
    ) -> FetchResult:
        ocsp_request = OcspRequest(
            issuer_key_hash=issuer_key_hash,
            serial_number=serial_number,
            use_get=use_get,
        )
        return self._fetch(
            key=("ocsp", url, issuer_key_hash, serial_number),
            request=HttpRequest(
                "GET" if use_get else "POST", url, body=ocsp_request.to_der()
            ),
            parse=OcspResponse.from_der,
            # Unsuccessful OCSP statuses (tryLater, unauthorized, ...)
            # parse fine but must not be cached as answers.
            cacheable=lambda parsed: parsed.is_successful,
        )

    # -- engine ------------------------------------------------------------

    def _fetch(
        self,
        key: tuple,
        request: HttpRequest,
        parse,
        cacheable=lambda parsed: True,
    ) -> FetchResult:
        at = self._now()
        obs = self.obs
        cached = self.cache.get(key, at)
        if cached is not None:
            if obs.enabled:
                obs.metrics.counter("fetch.client_cache_hits", kind=key[0]).inc()
            return FetchResult(cached, FetchOutcome.OK, attempts=0, from_cache=True)
        tombstone = self._negative.get(key, at)
        if tombstone is not None:
            self.stats.negative_cache_hits += 1
            if obs.enabled:
                obs.metrics.counter("fetch.negative_cache_hits", kind=key[0]).inc()
            return FetchResult(
                None, FetchOutcome.NEGATIVE_CACHED, attempts=0, from_cache=True
            )

        try:
            host, _ = split_url(request.url)
        except ValueError:
            # Non-HTTP pointer (e.g. an ldap:// distribution point): not
            # fetchable here, classified like an unresolvable name.
            self.stats.fetches += 1
            self.stats.failures += 1
            self.stats.dns_failures += 1
            result = FetchResult(None, FetchOutcome.DNS_FAILURE, attempts=0)
            if obs.enabled:
                self._observe(key[0], request.url, result)
            return result
        if not self.breaker.allow(host, at):
            self.stats.breaker_rejections += 1
            result = FetchResult(None, FetchOutcome.BREAKER_OPEN, attempts=0)
            if obs.enabled:
                self._observe(key[0], request.url, result)
            return result

        self.stats.fetches += 1
        policy = self.retry_policy
        latency = datetime.timedelta(0)
        nbytes = 0
        outcome = FetchOutcome.TIMEOUT
        parsed = None
        attempt = 0
        while True:
            attempt += 1
            self.stats.attempts += 1
            outcome, parsed, stats = self._attempt(request, at, parse)
            if stats is not None:
                latency += stats.latency
                nbytes += stats.bytes_down
            if outcome is FetchOutcome.OK:
                break
            counter = _OUTCOME_COUNTERS.get(outcome)
            if counter is not None:
                setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            if not policy.should_retry(outcome, attempt):
                break
            pause = policy.backoff(attempt, self._rng)
            latency += pause
            self.stats.backoff_total += pause
            self.stats.retries += 1

        self.stats.latency_total += latency
        self.stats.bytes_downloaded += nbytes
        if outcome is FetchOutcome.OK:
            self.stats.successes += 1
            self.breaker.record_success(host)
            if cacheable(parsed):
                self.cache.put(key, parsed)
            result = FetchResult(
                parsed,
                outcome,
                attempts=attempt,
                latency=latency,
                bytes_downloaded=nbytes,
            )
            if obs.enabled:
                self._observe(key[0], request.url, result)
            return result
        self.stats.failures += 1
        self.breaker.record_failure(host, at)
        if policy.negative_cache_ttl is not None:
            self._negative.put(
                key, _NegativeEntry(outcome, at + policy.negative_cache_ttl)
            )
        result = FetchResult(
            None, outcome, attempts=attempt, latency=latency, bytes_downloaded=nbytes
        )
        if obs.enabled:
            self._observe(key[0], request.url, result)
        return result

    def _observe(self, kind: str, url: str, result: FetchResult) -> None:
        """Wire one fetch's cost into the span log and the metrics
        registry (the per-fetch increments that sum to FetchStats)."""
        latency_ms = result.latency / datetime.timedelta(milliseconds=1)
        self.obs.tracer.event(
            "fetch",
            kind=kind,
            url=url,
            outcome=result.outcome.value,
            attempts=result.attempts,
            latency_ms=latency_ms,
            bytes=result.bytes_downloaded,
        )
        metrics = self.obs.metrics
        metrics.counter("fetch.fetches", kind=kind).inc()
        metrics.counter("fetch.attempts", kind=kind).inc(result.attempts)
        metrics.counter(
            "fetch.outcomes", kind=kind, outcome=result.outcome.value
        ).inc()
        metrics.counter("fetch.bytes_downloaded", kind=kind).inc(
            result.bytes_downloaded
        )
        metrics.histogram("fetch.latency_ms", kind=kind).observe(latency_ms)

    def _attempt(
        self, request: HttpRequest, at: datetime.datetime, parse
    ) -> tuple[FetchOutcome, object | None, TransferStats | None]:
        try:
            response, stats = self._network.request(request, at)
        except DnsError as exc:
            return FetchOutcome.DNS_FAILURE, None, self._exc_stats(exc, request)
        except TimeoutError_ as exc:
            return FetchOutcome.TIMEOUT, None, self._exc_stats(exc, request)
        except ValueError:
            return FetchOutcome.DNS_FAILURE, None, None
        if not response.ok:
            return FetchOutcome.HTTP_ERROR, None, stats
        try:
            parsed = parse(response.body)
        except Exception:
            return FetchOutcome.PARSE_ERROR, None, stats
        return FetchOutcome.OK, parsed, stats

    def _exc_stats(self, exc: Exception, request: HttpRequest) -> TransferStats:
        # Networks attach the attempt's cost to the exception; fall back
        # to charging the static budget for stub networks that don't.
        stats = getattr(exc, "stats", None)
        if stats is not None:
            return stats
        if isinstance(exc, TimeoutError_):
            latency = getattr(self._network, "timeout", datetime.timedelta(seconds=10))
        else:
            profile = getattr(self._network, "profile", None)
            latency = profile.rtt if profile is not None else datetime.timedelta(0)
        return TransferStats(latency=latency, bytes_down=0, bytes_up=len(request.body))
