"""Simulated wall clock.

All simulation components share a :class:`SimClock` so that time is
explicit and deterministic -- there is no reading of the host's clock
anywhere in the library.
"""

from __future__ import annotations

import datetime

__all__ = ["SimClock"]

_UTC = datetime.timezone.utc


class SimClock:
    """A monotonically advancing simulated UTC clock."""

    def __init__(self, start: datetime.datetime) -> None:
        if start.tzinfo is None:
            start = start.replace(tzinfo=_UTC)
        self._now = start.astimezone(_UTC)

    @property
    def now(self) -> datetime.datetime:
        return self._now

    def advance(self, delta: datetime.timedelta) -> datetime.datetime:
        if delta < datetime.timedelta(0):
            raise ValueError("the simulated clock cannot move backwards")
        self._now += delta
        return self._now

    def advance_to(self, when: datetime.datetime) -> datetime.datetime:
        if when.tzinfo is None:
            when = when.replace(tzinfo=_UTC)
        if when < self._now:
            raise ValueError("the simulated clock cannot move backwards")
        self._now = when.astimezone(_UTC)
        return self._now

    def sleep_until_next(self, period: datetime.timedelta) -> datetime.datetime:
        """Advance to the next multiple of ``period`` since midnight."""
        midnight = self._now.replace(hour=0, minute=0, second=0, microsecond=0)
        elapsed = self._now - midnight
        steps = int(elapsed / period) + 1
        return self.advance_to(midnight + steps * period)
