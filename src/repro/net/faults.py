"""Seeded, deterministic fault injection for the simulated network.

The paper's §6.1 failure modes (NXDOMAIN, HTTP 404, no response, OCSP
``unknown``) are static, per-URL switches: an endpoint is either healthy
or broken for the whole run.  Follow-up measurement work (Korzhitskii &
Carlsson; Chuat et al., see PAPERS.md) shows real responder availability
is probabilistic and time-varying, so this module adds failure
*schedules*: a :class:`FaultPlan` attaches :class:`FaultSpec` rules to
URL patterns, and :meth:`FaultPlan.decide` turns each request into a
:class:`FaultDecision` the transport applies -- fail it, delay it,
corrupt or truncate the body, or serve a stale (past-``nextUpdate``)
payload.

Determinism: every random draw comes from a per-URL stream seeded with
``(plan seed, url)``, consumed in request order.  Two runs with the same
seed issue the same request sequence per URL and therefore see the same
faults, independent of how requests to *different* URLs interleave (so
parallel experiment workers stay reproducible too).
"""

from __future__ import annotations

import datetime
import enum
import random
from dataclasses import dataclass, field

from repro.net.http import split_url
from repro.net.transport import FailureMode

__all__ = [
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "PROFILES",
    "plan_from_profile",
]


class FaultKind(enum.Enum):
    """Injectable behaviours beyond the static §6.1 switches."""

    #: fail the request with ``mode`` with probability ``probability``.
    FLAKY = "flaky"
    #: fail every request inside the ``window`` with ``mode``.
    OUTAGE = "outage"
    #: add ``extra_latency`` to the response (slow responder).
    SLOW = "slow"
    #: serve only the first ``truncate_fraction`` of the body.
    TRUNCATE = "truncate"
    #: flip one random bit somewhere in the body.
    CORRUPT = "corrupt"
    #: serve the payload the endpoint published ``stale_by`` ago, so its
    #: nextUpdate window has already closed (expired CRL / OCSP response).
    STALE = "stale"


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule.

    ``probability`` gates every kind (1.0 = always when applicable);
    ``window`` restricts any kind to a simulated-time interval and is
    what *defines* an OUTAGE.
    """

    kind: FaultKind
    probability: float = 1.0
    mode: FailureMode = FailureMode.NO_RESPONSE
    window: tuple[datetime.datetime, datetime.datetime] | None = None
    extra_latency: datetime.timedelta = datetime.timedelta(milliseconds=500)
    truncate_fraction: float = 0.5
    stale_by: datetime.timedelta = datetime.timedelta(days=30)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 <= self.truncate_fraction < 1.0:
            raise ValueError("truncate_fraction must be in [0, 1)")
        if self.kind is FaultKind.OUTAGE and self.window is None:
            raise ValueError("OUTAGE requires a time window")
        if self.window is not None and self.window[0] >= self.window[1]:
            raise ValueError("window start must precede window end")

    def active_at(self, at: datetime.datetime) -> bool:
        if self.window is None:
            return True
        return self.window[0] <= at < self.window[1]


@dataclass
class FaultDecision:
    """What the transport should do to one request."""

    mode: FailureMode = FailureMode.NONE
    extra_latency: datetime.timedelta = datetime.timedelta(0)
    #: serve the endpoint's state as of this (earlier) instant.
    serve_at: datetime.datetime | None = None
    #: applied to the response body, in rule order.
    body_edits: list = field(default_factory=list)
    #: kinds that actually triggered, for accounting/tests.
    triggered: list[FaultKind] = field(default_factory=list)

    @property
    def is_noop(self) -> bool:
        return not self.triggered

    def edit_body(self, body: bytes) -> bytes:
        for edit in self.body_edits:
            body = edit(body)
        return body


def _truncate(fraction: float):
    def edit(body: bytes) -> bytes:
        if not body:
            return body
        return body[: max(1, int(len(body) * fraction))]

    return edit


def _corrupt(byte_pick: float, bit: int):
    def edit(body: bytes) -> bytes:
        if not body:
            return body
        index = min(int(byte_pick * len(body)), len(body) - 1)
        mutated = bytearray(body)
        mutated[index] ^= 1 << bit
        return bytes(mutated)

    return edit


class FaultPlan:
    """An ordered set of ``(url pattern, FaultSpec)`` rules.

    Patterns: ``"*"`` matches everything, ``"host/*"`` matches every path
    on a host, anything else must equal the request's ``host+path``.
    Rules are evaluated in insertion order and *stack*: a request can be
    both slowed and truncated; the first failing ``mode`` wins.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: list[tuple[str, FaultSpec]] = []
        self._streams: dict[str, random.Random] = {}

    def add(self, pattern: str, spec: FaultSpec) -> "FaultPlan":
        self._rules.append((pattern, spec))
        return self

    @property
    def rules(self) -> tuple[tuple[str, FaultSpec], ...]:
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def _matches(self, pattern: str, host: str, path: str) -> bool:
        if pattern == "*":
            return True
        if pattern.endswith("/*"):
            return host == pattern[:-2]
        try:
            phost, ppath = split_url(pattern)
        except ValueError:
            return f"{host}{path}" == pattern
        return (host, path) == (phost, ppath)

    def _stream(self, url_key: str) -> random.Random:
        stream = self._streams.get(url_key)
        if stream is None:
            stream = random.Random(f"{self.seed}/{url_key}")
            self._streams[url_key] = stream
        return stream

    def reset(self) -> None:
        """Forget per-URL stream state (a fresh run from the same seed)."""
        self._streams.clear()

    def decide(self, url: str, at: datetime.datetime) -> FaultDecision:
        """Consume one decision for one request, in request order."""
        host, path = split_url(url)
        decision = FaultDecision()
        stream = self._stream(f"{host}{path}")
        for pattern, spec in self._rules:
            if not self._matches(pattern, host, path):
                continue
            # Draw unconditionally so the stream position depends only on
            # the number of requests, not on which windows were active.
            draw = stream.random()
            if not spec.active_at(at) or draw >= spec.probability:
                continue
            decision.triggered.append(spec.kind)
            if spec.kind in (FaultKind.FLAKY, FaultKind.OUTAGE):
                if decision.mode is FailureMode.NONE:
                    decision.mode = spec.mode
            elif spec.kind is FaultKind.SLOW:
                decision.extra_latency += spec.extra_latency
            elif spec.kind is FaultKind.TRUNCATE:
                decision.body_edits.append(_truncate(spec.truncate_fraction))
            elif spec.kind is FaultKind.CORRUPT:
                decision.body_edits.append(
                    _corrupt(stream.random(), stream.randrange(8))
                )
            elif spec.kind is FaultKind.STALE:
                rewind = at - spec.stale_by
                if decision.serve_at is None or rewind < decision.serve_at:
                    decision.serve_at = rewind
        return decision


#: Named profiles for the CLI (``--fault-profile``) and CI fault matrix.
#: Each entry is a list of (pattern, FaultSpec) applied to every endpoint.
PROFILES: dict[str, list[tuple[str, FaultSpec]]] = {
    "none": [],
    # Mild, realistic degradation: occasional timeouts and slow responses.
    "flaky": [
        ("*", FaultSpec(FaultKind.FLAKY, probability=0.10)),
        (
            "*",
            FaultSpec(
                FaultKind.SLOW,
                probability=0.20,
                extra_latency=datetime.timedelta(milliseconds=250),
            ),
        ),
    ],
    # Everything at once: mixed failure modes, big latency spikes, and
    # malformed / stale payloads.
    "chaos": [
        ("*", FaultSpec(FaultKind.FLAKY, probability=0.05, mode=FailureMode.NXDOMAIN)),
        ("*", FaultSpec(FaultKind.FLAKY, probability=0.05, mode=FailureMode.HTTP_404)),
        ("*", FaultSpec(FaultKind.FLAKY, probability=0.10)),
        (
            "*",
            FaultSpec(
                FaultKind.SLOW,
                probability=0.30,
                extra_latency=datetime.timedelta(milliseconds=750),
            ),
        ),
        ("*", FaultSpec(FaultKind.TRUNCATE, probability=0.05)),
        ("*", FaultSpec(FaultKind.CORRUPT, probability=0.05)),
        ("*", FaultSpec(FaultKind.STALE, probability=0.05)),
    ],
}


def plan_from_profile(name: str, seed: int = 0) -> FaultPlan:
    """Build the named :data:`PROFILES` entry as a seeded plan."""
    try:
        rules = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
    plan = FaultPlan(seed=seed)
    for pattern, spec in rules:
        plan.add(pattern, spec)
    return plan
