"""Deterministic network simulation.

Provides the transport substrate the measurement rides on: a simulated
clock, DNS, an HTTP-shaped request/response fabric with latency/bandwidth
accounting and failure injection, client-side caching, CRL/OCSP endpoints,
and TLS handshakes with the ``status_request`` (OCSP Stapling) extension.
"""

from repro.net.clock import SimClock
from repro.net.http import HttpRequest, HttpResponse, HttpStatus
from repro.net.dns import DnsError, Resolver
from repro.net.transport import FailureMode, LinkProfile, Network, TransferStats
from repro.net.cache import ClientCache
from repro.net.endpoints import CrlEndpoint, Endpoint, OcspEndpoint, StaticEndpoint
from repro.net.faults import (
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultSpec,
    PROFILES,
    plan_from_profile,
)
from repro.net.fetcher import (
    CircuitBreaker,
    FetchOutcome,
    FetchResult,
    FetchStats,
    NetworkFetcher,
    RetryPolicy,
)
from repro.net.tls import HandshakeResult, TlsClient, TlsServer

__all__ = [
    "CircuitBreaker",
    "ClientCache",
    "CrlEndpoint",
    "DnsError",
    "Endpoint",
    "FailureMode",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FetchOutcome",
    "FetchResult",
    "FetchStats",
    "HandshakeResult",
    "HttpRequest",
    "HttpResponse",
    "HttpStatus",
    "LinkProfile",
    "Network",
    "NetworkFetcher",
    "OcspEndpoint",
    "PROFILES",
    "plan_from_profile",
    "Resolver",
    "RetryPolicy",
    "SimClock",
    "StaticEndpoint",
    "TlsClient",
    "TlsServer",
    "TransferStats",
]
