"""Minimal HTTP message model for the simulated network."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from urllib.parse import urlparse

__all__ = ["HttpRequest", "HttpResponse", "HttpStatus", "split_url"]


class HttpStatus(enum.IntEnum):
    OK = 200
    NOT_FOUND = 404
    INTERNAL_SERVER_ERROR = 500
    SERVICE_UNAVAILABLE = 503


@dataclass(frozen=True)
class HttpRequest:
    method: str
    url: str
    body: bytes = b""
    headers: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST"):
            raise ValueError(f"unsupported HTTP method {self.method!r}")

    @property
    def host(self) -> str:
        return split_url(self.url)[0]

    @property
    def path(self) -> str:
        return split_url(self.url)[1]


@dataclass(frozen=True)
class HttpResponse:
    status: HttpStatus
    body: bytes = b""
    headers: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == HttpStatus.OK


def split_url(url: str) -> tuple[str, str]:
    """Return (host, path) of an http[s] URL."""
    parsed = urlparse(url)
    if parsed.scheme not in ("http", "https"):
        raise ValueError(f"not an http[s] URL: {url!r}")
    return parsed.netloc, parsed.path or "/"
