"""Simulated DNS.

The browser test suite (§6.1) includes an "unavailable because the domain
name of the revocation server does not exist" failure mode, so DNS is a
first-class failure point rather than an implementation detail.
"""

from __future__ import annotations

__all__ = ["DnsError", "Resolver"]


class DnsError(Exception):
    """NXDOMAIN or resolver failure."""


class Resolver:
    """Hostname -> address book with injectable NXDOMAIN failures."""

    def __init__(self) -> None:
        self._records: dict[str, str] = {}
        self._poisoned: set[str] = set()

    def register(self, hostname: str, address: str) -> None:
        self._records[hostname.lower()] = address

    def unregister(self, hostname: str) -> None:
        self._records.pop(hostname.lower(), None)

    def poison(self, hostname: str) -> None:
        """Make ``hostname`` resolve to NXDOMAIN until :meth:`heal`."""
        self._poisoned.add(hostname.lower())

    def heal(self, hostname: str) -> None:
        self._poisoned.discard(hostname.lower())

    def resolve(self, hostname: str) -> str:
        key = hostname.lower()
        if key in self._poisoned or key not in self._records:
            raise DnsError(f"NXDOMAIN: {hostname}")
        return self._records[key]

    def knows(self, hostname: str) -> bool:
        key = hostname.lower()
        return key in self._records and key not in self._poisoned
