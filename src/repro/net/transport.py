"""HTTP-shaped transport with latency/bandwidth accounting and failures.

The network maps URLs to :class:`~repro.net.endpoints.Endpoint` objects.
Each request produces an :class:`HttpResponse` plus :class:`TransferStats`
(latency and bytes), which is how the study quantifies the client cost of
fetching revocation information (§5.2: the median certificate's CRL is
51 KB; OCSP responses are <1 KB with ~250 ms latency).

Failure injection covers the paper's four "unavailable" modes (§6.1):
NXDOMAIN, HTTP 404, no response (timeout), and -- at the OCSP layer --
``unknown`` status responses.  Beyond these static switches, a seeded
:class:`~repro.net.faults.FaultPlan` can be installed to drive
probabilistic and time-varying faults (see :mod:`repro.net.faults` and
docs/ROBUSTNESS.md).

Failed requests are not free: DNS failures cost one RTT and timeouts
cost the full ``timeout`` budget.  Both exception types carry a
``stats`` attribute so callers can charge the cost to their accounting.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.net.dns import DnsError, Resolver
from repro.net.http import HttpRequest, HttpResponse, HttpStatus, split_url

__all__ = [
    "FailureMode",
    "LINK_PROFILES",
    "LinkProfile",
    "Network",
    "TransferStats",
    "TimeoutError_",
]


class FailureMode(enum.Enum):
    """Injectable endpoint failure behaviours."""

    NONE = "none"
    NXDOMAIN = "nxdomain"
    HTTP_404 = "http_404"
    NO_RESPONSE = "no_response"


class TimeoutError_(Exception):
    """The endpoint never responded.

    ``stats`` carries the cost of waiting out the timeout budget.
    """

    def __init__(self, url: str, stats: "TransferStats | None" = None) -> None:
        super().__init__(url)
        self.stats = stats


@dataclass(frozen=True)
class LinkProfile:
    """Latency/bandwidth model for a client-endpoint path.

    Transfer time = rtt (connection setup + request) + bytes / bandwidth.
    Defaults approximate a broadband client reaching a CDN-hosted CA
    endpoint (the paper cites ~250 ms typical OCSP lookups [33]).
    """

    rtt: datetime.timedelta = datetime.timedelta(milliseconds=40)
    bandwidth_bytes_per_s: float = 2_000_000.0  # ~16 Mbit/s

    def transfer_time(self, nbytes: int) -> datetime.timedelta:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        seconds = nbytes / self.bandwidth_bytes_per_s
        return self.rtt + datetime.timedelta(seconds=seconds)

    @classmethod
    def mobile(cls) -> "LinkProfile":
        """A constrained mobile link (motivates §6.4's findings)."""
        return cls(
            rtt=datetime.timedelta(milliseconds=150),
            bandwidth_bytes_per_s=250_000.0,
        )


#: the canonical named link profiles shared by the session-cost
#: benchmark and the serving fleet's client cohorts (exposed through the
#: ``repro.api`` facade; add new populations here, not at call sites).
LINK_PROFILES: dict[str, LinkProfile] = {
    "broadband": LinkProfile(),
    "mobile": LinkProfile.mobile(),
}


@dataclass(frozen=True)
class TransferStats:
    latency: datetime.timedelta
    bytes_down: int
    bytes_up: int = 0


class Network:
    """Routes requests from clients to registered endpoints.

    ``timeout`` is the per-request budget a client waits before giving
    up; it is what a NO_RESPONSE failure costs the caller.
    """

    def __init__(
        self,
        resolver: Resolver | None = None,
        profile: LinkProfile | None = None,
        faults: "FaultPlan | None" = None,
        timeout: datetime.timedelta = datetime.timedelta(seconds=10),
    ) -> None:
        self.resolver = resolver or Resolver()
        self.profile = profile or LinkProfile()
        self.faults = faults
        self.timeout = timeout
        self._endpoints: dict[tuple[str, str], "Endpoint"] = {}
        self._failures: dict[tuple[str, str], FailureMode] = {}
        self.total_bytes = 0
        self.total_requests = 0
        self.faulted_requests = 0

    # -- wiring ------------------------------------------------------------

    def register(self, url: str, endpoint: "Endpoint") -> None:
        host, path = split_url(url)
        self.resolver.register(host, f"10.0.0.{(len(self._endpoints) % 250) + 1}")
        self._endpoints[(host, path)] = endpoint

    def install_faults(self, plan: "FaultPlan | None") -> None:
        """Attach (or remove, with ``None``) a fault plan."""
        self.faults = plan

    def set_failure(self, url: str, mode: FailureMode) -> None:
        """Inject a failure mode for all requests to ``url``."""
        host, path = split_url(url)
        self._failures[(host, path)] = mode
        self._sync_poisoning(host)

    def clear_failure(self, url: str) -> None:
        host, path = split_url(url)
        self._failures.pop((host, path), None)
        self._sync_poisoning(host)

    def _sync_poisoning(self, host: str) -> None:
        # DNS failures are host-wide: the host stays poisoned as long as
        # *any* of its paths is set to NXDOMAIN.  Recomputing from the
        # failure map (rather than healing on every non-NXDOMAIN set)
        # keeps an NXDOMAIN on one path from being clobbered by a
        # different mode set on a sibling path.
        if any(
            h == host and mode is FailureMode.NXDOMAIN
            for (h, _), mode in self._failures.items()
        ):
            self.resolver.poison(host)
        else:
            self.resolver.heal(host)

    # -- request path ------------------------------------------------------

    def _failed_stats(self, latency: datetime.timedelta, nbytes_up: int) -> TransferStats:
        return TransferStats(latency=latency, bytes_down=0, bytes_up=nbytes_up)

    def request(
        self, request: HttpRequest, at: datetime.datetime
    ) -> tuple[HttpResponse, TransferStats]:
        """Dispatch a request; raises :class:`DnsError` or
        :class:`TimeoutError_` for those failure modes.  Both exceptions
        carry a ``stats`` attribute with the cost of the failed attempt.
        """
        host, path = split_url(request.url)
        mode = self._failures.get((host, path), FailureMode.NONE)
        self.total_requests += 1

        decision = None
        if self.faults is not None:
            decision = self.faults.decide(request.url, at)
            if not decision.is_noop:
                self.faulted_requests += 1
            if mode is FailureMode.NONE:
                mode = decision.mode
        extra_latency = decision.extra_latency if decision else datetime.timedelta(0)

        nbytes_up = len(request.body)
        if mode is FailureMode.NXDOMAIN:
            exc = DnsError(f"NXDOMAIN: {host}")
            exc.stats = self._failed_stats(self.profile.rtt, nbytes_up)
            raise exc
        try:
            self.resolver.resolve(host)
        except DnsError as exc:
            exc.stats = self._failed_stats(self.profile.rtt, nbytes_up)
            raise
        if mode is FailureMode.NO_RESPONSE:
            raise TimeoutError_(
                request.url,
                stats=self._failed_stats(self.timeout + extra_latency, nbytes_up),
            )
        if mode is FailureMode.HTTP_404:
            response = HttpResponse(HttpStatus.NOT_FOUND)
        else:
            serve_at = at
            if decision is not None and decision.serve_at is not None:
                serve_at = decision.serve_at
            endpoint = self._endpoints.get((host, path))
            if endpoint is None:
                response = HttpResponse(HttpStatus.NOT_FOUND)
            else:
                response = endpoint.handle(request, serve_at)
            if decision is not None and decision.body_edits and response.body:
                response = HttpResponse(
                    response.status,
                    decision.edit_body(response.body),
                    response.headers,
                )
        nbytes = len(response.body)
        stats = TransferStats(
            latency=self.profile.transfer_time(nbytes) + extra_latency,
            bytes_down=nbytes,
            bytes_up=nbytes_up,
        )
        self.total_bytes += nbytes
        return response, stats

    def get(
        self, url: str, at: datetime.datetime
    ) -> tuple[HttpResponse, TransferStats]:
        return self.request(HttpRequest("GET", url), at)
