"""HTTP-shaped transport with latency/bandwidth accounting and failures.

The network maps URLs to :class:`~repro.net.endpoints.Endpoint` objects.
Each request produces an :class:`HttpResponse` plus :class:`TransferStats`
(latency and bytes), which is how the study quantifies the client cost of
fetching revocation information (§5.2: the median certificate's CRL is
51 KB; OCSP responses are <1 KB with ~250 ms latency).

Failure injection covers the paper's four "unavailable" modes (§6.1):
NXDOMAIN, HTTP 404, no response (timeout), and -- at the OCSP layer --
``unknown`` status responses.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.net.dns import DnsError, Resolver
from repro.net.http import HttpRequest, HttpResponse, HttpStatus, split_url

__all__ = ["FailureMode", "LinkProfile", "Network", "TransferStats", "TimeoutError_"]


class FailureMode(enum.Enum):
    """Injectable endpoint failure behaviours."""

    NONE = "none"
    NXDOMAIN = "nxdomain"
    HTTP_404 = "http_404"
    NO_RESPONSE = "no_response"


class TimeoutError_(Exception):
    """The endpoint never responded."""


@dataclass(frozen=True)
class LinkProfile:
    """Latency/bandwidth model for a client-endpoint path.

    Transfer time = rtt (connection setup + request) + bytes / bandwidth.
    Defaults approximate a broadband client reaching a CDN-hosted CA
    endpoint (the paper cites ~250 ms typical OCSP lookups [33]).
    """

    rtt: datetime.timedelta = datetime.timedelta(milliseconds=40)
    bandwidth_bytes_per_s: float = 2_000_000.0  # ~16 Mbit/s

    def transfer_time(self, nbytes: int) -> datetime.timedelta:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        seconds = nbytes / self.bandwidth_bytes_per_s
        return self.rtt + datetime.timedelta(seconds=seconds)

    @classmethod
    def mobile(cls) -> "LinkProfile":
        """A constrained mobile link (motivates §6.4's findings)."""
        return cls(
            rtt=datetime.timedelta(milliseconds=150),
            bandwidth_bytes_per_s=250_000.0,
        )


@dataclass(frozen=True)
class TransferStats:
    latency: datetime.timedelta
    bytes_down: int
    bytes_up: int = 0


class Network:
    """Routes requests from clients to registered endpoints."""

    def __init__(
        self, resolver: Resolver | None = None, profile: LinkProfile | None = None
    ) -> None:
        self.resolver = resolver or Resolver()
        self.profile = profile or LinkProfile()
        self._endpoints: dict[tuple[str, str], "Endpoint"] = {}
        self._failures: dict[str, FailureMode] = {}
        self.total_bytes = 0
        self.total_requests = 0

    # -- wiring ------------------------------------------------------------

    def register(self, url: str, endpoint: "Endpoint") -> None:
        host, path = split_url(url)
        self.resolver.register(host, f"10.0.0.{(len(self._endpoints) % 250) + 1}")
        self._endpoints[(host, path)] = endpoint

    def set_failure(self, url: str, mode: FailureMode) -> None:
        """Inject a failure mode for all requests to ``url``."""
        host, path = split_url(url)
        self._failures[f"{host}{path}"] = mode
        if mode is FailureMode.NXDOMAIN:
            self.resolver.poison(host)
        else:
            self.resolver.heal(host)

    def clear_failure(self, url: str) -> None:
        host, path = split_url(url)
        self._failures.pop(f"{host}{path}", None)
        self.resolver.heal(host)

    # -- request path ------------------------------------------------------

    def request(
        self, request: HttpRequest, at: datetime.datetime
    ) -> tuple[HttpResponse, TransferStats]:
        """Dispatch a request; raises :class:`DnsError` or
        :class:`TimeoutError_` for those failure modes."""
        host, path = split_url(request.url)
        mode = self._failures.get(f"{host}{path}", FailureMode.NONE)
        self.total_requests += 1
        if mode is FailureMode.NXDOMAIN:
            raise DnsError(f"NXDOMAIN: {host}")
        self.resolver.resolve(host)
        if mode is FailureMode.NO_RESPONSE:
            raise TimeoutError_(request.url)
        if mode is FailureMode.HTTP_404:
            response = HttpResponse(HttpStatus.NOT_FOUND)
        else:
            endpoint = self._endpoints.get((host, path))
            if endpoint is None:
                response = HttpResponse(HttpStatus.NOT_FOUND)
            else:
                response = endpoint.handle(request, at)
        nbytes = len(response.body)
        stats = TransferStats(
            latency=self.profile.transfer_time(nbytes),
            bytes_down=nbytes,
            bytes_up=len(request.body),
        )
        self.total_bytes += nbytes
        return response, stats

    def get(
        self, url: str, at: datetime.datetime
    ) -> tuple[HttpResponse, TransferStats]:
        return self.request(HttpRequest("GET", url), at)
