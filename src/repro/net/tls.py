"""Simulated TLS handshakes with the ``status_request`` extension.

:class:`TlsServer` holds a certificate chain and (optionally) an OCSP
staple cache; :class:`TlsClient` performs handshakes, optionally
requesting a staple.  The handshake result carries everything the browser
models and the Michigan-style handshake scanner need: the presented
chain, whether the server advertised stapling, and the staple itself.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Callable

from repro.pki.certificate import Certificate
from repro.revocation.ocsp import OcspResponse
from repro.revocation.stapling import StapleCache

__all__ = ["HandshakeResult", "TlsClient", "TlsServer"]


@dataclass(frozen=True)
class HandshakeResult:
    """What the client learns from one TLS handshake."""

    chain: tuple[Certificate, ...]
    staple: OcspResponse | None
    #: True if the server supports the status_request extension at all
    #: (even if it had no staple cached for this particular handshake).
    stapling_advertised: bool
    latency: datetime.timedelta = datetime.timedelta(0)

    @property
    def leaf(self) -> Certificate:
        return self.chain[0]


class TlsServer:
    """A TLS endpoint presenting a fixed certificate chain.

    ``stapling_enabled`` reflects the administrator's choice (§4.3: only a
    few percent enable it).  When enabled, staples come from an nginx-like
    :class:`StapleCache`; ``staple_fetcher(at)`` obtains fresh OCSP
    responses for the leaf (returns ``None`` if the responder is down).
    """

    def __init__(
        self,
        chain: list[Certificate] | tuple[Certificate, ...],
        stapling_enabled: bool = False,
        staple_cache: StapleCache | None = None,
        staple_fetcher: Callable[[datetime.datetime], OcspResponse | None] | None = None,
    ) -> None:
        if not chain:
            raise ValueError("a TLS server needs at least a leaf certificate")
        self.chain = tuple(chain)
        self.stapling_enabled = stapling_enabled
        self.staple_cache = staple_cache or StapleCache()
        self._staple_fetcher = staple_fetcher
        self.handshakes_served = 0

    @property
    def leaf(self) -> Certificate:
        return self.chain[0]

    def handshake(
        self, at: datetime.datetime, status_request: bool
    ) -> HandshakeResult:
        """Serve one handshake at simulated instant ``at``."""
        self.handshakes_served += 1
        staple: OcspResponse | None = None
        if status_request and self.stapling_enabled:
            fetch = (
                (lambda: self._staple_fetcher(at))
                if self._staple_fetcher is not None
                else (lambda: None)
            )
            staple = self.staple_cache.get_staple(at, fetch)
        return HandshakeResult(
            chain=self.chain,
            staple=staple,
            stapling_advertised=self.stapling_enabled,
        )


@dataclass
class TlsClient:
    """A handshake initiator; ``request_staple`` mirrors browser behaviour
    (Table 2's "Request OCSP staple" row)."""

    request_staple: bool = True
    handshakes: int = 0
    staples_received: int = 0

    def connect(self, server: TlsServer, at: datetime.datetime) -> HandshakeResult:
        result = server.handshake(at, status_request=self.request_staple)
        self.handshakes += 1
        if result.staple is not None:
            self.staples_received += 1
        return result
