"""HTTP endpoints served inside the simulation.

* :class:`CrlEndpoint` serves a CA's current CRL bytes for a distribution
  point URL.
* :class:`OcspEndpoint` answers OCSP GET/POST queries from a CA responder.
* :class:`StaticEndpoint` serves fixed bytes (used by tests and by the
  CRLSet distribution URL).
"""

from __future__ import annotations

import datetime
from typing import Callable, Protocol

from repro.net.http import HttpRequest, HttpResponse, HttpStatus
from repro.revocation.ocsp import OcspRequest, OcspResponse, OcspResponseStatus

__all__ = ["CrlEndpoint", "Endpoint", "OcspEndpoint", "StaticEndpoint"]


class Endpoint(Protocol):
    """Anything that can answer an HTTP request at a simulated instant."""

    def handle(self, request: HttpRequest, at: datetime.datetime) -> HttpResponse: ...


class StaticEndpoint:
    """Serves fixed bytes for GET requests."""

    def __init__(self, body: bytes, content_type: str = "application/octet-stream"):
        self._body = body
        self._content_type = content_type

    def set_body(self, body: bytes) -> None:
        self._body = body

    def handle(self, request: HttpRequest, at: datetime.datetime) -> HttpResponse:
        if request.method != "GET":
            return HttpResponse(HttpStatus.NOT_FOUND)
        return HttpResponse(
            HttpStatus.OK, self._body, {"content-type": self._content_type}
        )


class CrlEndpoint:
    """Serves the issuing CA's *current* CRL.

    ``crl_bytes_provider(at)`` returns the DER bytes of the CRL as of the
    simulated instant, so the endpoint always hands out a CRL whose
    thisUpdate/nextUpdate window covers ``at`` (CAs re-issue CRLs
    periodically even if nothing new was revoked, §2.2).
    """

    def __init__(self, crl_bytes_provider: Callable[[datetime.datetime], bytes]):
        self._provider = crl_bytes_provider

    def handle(self, request: HttpRequest, at: datetime.datetime) -> HttpResponse:
        if request.method != "GET":
            return HttpResponse(HttpStatus.NOT_FOUND)
        try:
            body = self._provider(at)
        except Exception:
            return HttpResponse(HttpStatus.INTERNAL_SERVER_ERROR)
        return HttpResponse(
            HttpStatus.OK, body, {"content-type": "application/pkix-crl"}
        )


class OcspEndpoint:
    """Answers OCSP queries.

    ``responder(request, at)`` maps an :class:`OcspRequest` to an
    :class:`OcspResponse`.  ``accept_get`` models stock OpenSSL responders
    that only accept POST (§6.2 footnote 18); the paper patched theirs to
    accept GET, and so does our default.

    ``force_unknown`` makes the responder answer ``unknown`` regardless --
    one of the test suite's failure modes.
    """

    def __init__(
        self,
        responder: Callable[[OcspRequest, datetime.datetime], OcspResponse],
        accept_get: bool = True,
    ) -> None:
        self._responder = responder
        self.accept_get = accept_get

    def handle(self, request: HttpRequest, at: datetime.datetime) -> HttpResponse:
        if request.method == "GET" and not self.accept_get:
            return HttpResponse(HttpStatus.NOT_FOUND)
        try:
            if request.method == "POST":
                ocsp_request = OcspRequest.from_der(request.body, use_get=False)
            else:
                # GET carries the request DER in the path in real OCSP; our
                # simulation passes it in the body either way for clarity.
                ocsp_request = OcspRequest.from_der(request.body, use_get=True)
        except Exception:
            error = OcspResponse.error(OcspResponseStatus.MALFORMED_REQUEST)
            return HttpResponse(HttpStatus.OK, error.to_der())
        try:
            response = self._responder(ocsp_request, at)
        except Exception:
            error = OcspResponse.error(OcspResponseStatus.INTERNAL_ERROR)
            return HttpResponse(HttpStatus.OK, error.to_der())
        return HttpResponse(
            HttpStatus.OK,
            response.to_der(),
            {"content-type": "application/ocsp-response"},
        )
