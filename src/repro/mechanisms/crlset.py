"""Chrome's CRLSets as a pluggable mechanism (paper §7).

A vendor-pushed aggregate of (parent SPKI, serial) pairs, capped at
250 KB: zero per-connection cost, but coverage is a hand-picked sliver
of all revocations -- the paper's headline criticism.  ``covers`` is
honest about that sliver: a revoked certificate the set omits (wrong
reason code, dropped CRL, over-cap trimming) is *not covered*, and
``lookup`` answers ``NO_INFO`` rather than vouching for it.
"""

from __future__ import annotations

import datetime

from repro.mechanisms.base import (
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import LeafRecord


@register
class CrlSetMechanism(RevocationMechanism):
    name = "crlset"
    title = "CRLSet (vendor push, 250 KB cap)"
    delivery = Delivery.PUSHED

    def __init__(self, host) -> None:
        super().__init__(host)
        self._spki_by_intermediate: dict[int, bytes] | None = None

    @property
    def _snapshot(self):
        """The final published CRLSet (host builds the daily history
        once; the mechanism reads its last snapshot)."""
        return self.host.crlset_history.final_snapshot

    def _parent_spki(self, leaf: LeafRecord) -> bytes:
        if self._spki_by_intermediate is None:
            self._spki_by_intermediate = {
                record.intermediate_id: record.spki_hash
                for record in self.ecosystem.intermediates
            }
        return self._spki_by_intermediate[leaf.intermediate_id]

    def covers(self, leaf: LeafRecord) -> bool:
        snapshot = self._snapshot
        spki = self._parent_spki(leaf)
        if leaf.revoked_at is not None:
            # A revocation the set omitted is simply not covered.
            return snapshot.is_revoked(spki, leaf.serial_number)
        return snapshot.covers(spki)

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        if not self.covers(leaf):
            return CheckOutcome.NO_INFO
        if leaf.revoked_at is not None and leaf.revoked_at <= at:
            return CheckOutcome.REVOKED
        if at > leaf.not_after:
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        # Pushed roughly daily; Figure 10 measures ~1 day of crawl /
        # publication lag before a revocation appears.
        return UpdateModel(update_interval_days=1.0, propagation_lag_days=1.0)

    def serve_model(self) -> ServeModel:
        # Daily pushed deltas against the ~250 KB blob; clients pull on
        # the component-updater cadence.
        return ServeModel(
            endpoint="aggregate",
            presign_interval_days=1.0,
            delta_fraction=0.08,
            pull_interval_days=1.0,
        )

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        return CheckCost()  # pushed out of band: free at browse time

    def payload_bytes(self, at: datetime.date) -> int:
        return self._snapshot.size_bytes
