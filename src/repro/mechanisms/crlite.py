"""CRLite-style filter cascades as a pluggable mechanism.

The post-2015 answer to the CRLSet coverage problem ("Revocation
Statuses on the Internet", arXiv:2102.04288): enroll *every* certificate
in a cascade of Bloom filters -- level 1 holds the revoked set, level 2
holds level 1's false positives among the live set, and so on until no
false positives remain.  For any enrolled certificate the cascade is
exact, at a fraction of the CRL corpus' size, and it composes with the
paper's own Figure-11 single-Bloom alternative
(:mod:`repro.crlset.bloom` supplies the filters).
"""

from __future__ import annotations

import datetime
import math

from repro.crlset.bloom import BloomFilter
from repro.crlset.format import serial_to_bytes
from repro.mechanisms.base import (
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import LeafRecord

__all__ = ["CrliteMechanism", "FilterCascade", "build_cascade"]

#: bytes of framing per cascade level (m, k, length prefix).
_LEVEL_HEADER_BYTES = 12


def _salted(key: bytes, depth: int) -> bytes:
    """Per-level hash salt (real CRLite does the same): without it, a
    revoked/live pair whose hash positions happen to coincide at one
    level coincides at *every* level -- the build keeps ping-ponging the
    pair between include and exclude and never terminates.  Salting by
    depth gives each level an independent hash family.
    """
    return depth.to_bytes(2, "big") + key


class FilterCascade:
    """An alternating chain of Bloom filters, exact over its universe."""

    def __init__(self, levels: list[BloomFilter]) -> None:
        self.levels = levels

    def __contains__(self, key: bytes) -> bool:
        for depth, level in enumerate(self.levels):
            if _salted(key, depth) not in level:
                # A miss at an even depth exonerates; at an odd depth it
                # un-flags a false positive, i.e. the key is revoked.
                return depth % 2 == 1
        # Survived every level: the key is a true member of the deepest
        # one (the build only stops once no false positives remain).
        return len(self.levels) % 2 == 1

    @property
    def size_bytes(self) -> int:
        return sum(
            level.size_bytes + _LEVEL_HEADER_BYTES for level in self.levels
        )

    def __len__(self) -> int:
        return len(self.levels)


def _level_bits(n_items: int, fp_rate: float) -> int:
    """Bloom sizing for a target FP rate: m = n * log2(1/p) / ln 2."""
    bits = math.ceil(n_items * math.log2(1.0 / fp_rate) / math.log(2))
    return max(64, bits)


def build_cascade(
    revoked: list[bytes], live: list[bytes]
) -> FilterCascade:
    """Build the cascade over a revoked/live key partition.

    Level 1 is sized so its expected false-positive count is about
    ``|revoked| / sqrt(2)`` (the CRLite balance point); deeper levels
    target a 0.5 FP rate, halving the carried set each round.  Inputs
    are sorted before insertion so the build is order-independent.
    """
    include = sorted(revoked)
    exclude = sorted(live)
    levels: list[BloomFilter] = []
    while include:
        depth = len(levels)
        if not levels and exclude:
            fp_rate = len(include) / (math.sqrt(2) * len(exclude))
            fp_rate = min(0.5, max(fp_rate, 1.0 / 4096))
        else:
            fp_rate = 0.5
        level = BloomFilter.for_items(
            len(include), _level_bits(len(include), fp_rate)
        )
        for key in include:
            level.add(_salted(key, depth))
        levels.append(level)
        false_positives = [
            key for key in exclude if _salted(key, depth) in level
        ]
        include, exclude = false_positives, include
    return FilterCascade(levels)


@register
class CrliteMechanism(RevocationMechanism):
    name = "crlite-cascade"
    title = "CRLite filter cascade (pushed, exact over enrolled certs)"
    delivery = Delivery.PUSHED

    def __init__(self, host) -> None:
        super().__init__(host)
        self._cascade: FilterCascade | None = None
        self._spki_by_intermediate: dict[int, bytes] | None = None

    def _key(self, leaf: LeafRecord) -> bytes:
        if self._spki_by_intermediate is None:
            self._spki_by_intermediate = {
                record.intermediate_id: record.spki_hash
                for record in self.ecosystem.intermediates
            }
        parent = self._spki_by_intermediate[leaf.intermediate_id]
        return parent + serial_to_bytes(leaf.serial_number)

    @property
    def cascade(self) -> FilterCascade:
        """The cascade published at measurement end, built once over
        the full enrolled universe (every leaf in the ecosystem)."""
        if self._cascade is None:
            end = self.measurement_end
            revoked = []
            live = []
            for leaf in self.ecosystem.leaves:
                key = self._key(leaf)
                if leaf.revoked_at is not None and leaf.revoked_at <= end:
                    revoked.append(key)
                else:
                    live.append(key)
            self._cascade = build_cascade(revoked, live)
        return self._cascade

    def covers(self, leaf: LeafRecord) -> bool:
        return True  # every known certificate is enrolled

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        flagged = self._key(leaf) in self.cascade
        if flagged and leaf.revoked_at is not None and leaf.revoked_at <= at:
            return CheckOutcome.REVOKED
        if at > leaf.not_after:
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        # Rebuilt and pushed daily from the aggregated CRL corpus.
        return UpdateModel(update_interval_days=1.0)

    def serve_model(self) -> ServeModel:
        # Filter-cascade deltas are small relative to the full cascade.
        return ServeModel(
            endpoint="aggregate",
            presign_interval_days=1.0,
            delta_fraction=0.05,
            pull_interval_days=1.0,
        )

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        return CheckCost()  # pushed out of band

    def payload_bytes(self, at: datetime.date) -> int:
        return self.cascade.size_bytes
