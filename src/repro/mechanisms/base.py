"""The pluggable revocation-mechanism interface.

The paper's central comparison -- CRLs vs OCSP vs stapling vs CRLSets on
availability, client cost, and vulnerability windows -- used to be
hard-wired into per-mechanism modules.  :class:`RevocationMechanism` is
the single seam every mechanism (the four legacy ones plus the post-2015
scenario pack: CRLite cascades, short-lived certificates, OneCRL,
postcertificates) implements, so every experiment can sweep the registry
(:mod:`repro.mechanisms.registry`) uniformly instead of naming
mechanisms ad hoc.

The contract (docs/MECHANISMS.md, enforced by
``tests/mechanisms/conformance.py``):

* **status lookup** is deterministic and *sound*: a revoked certificate
  is never reported :attr:`~repro.revocation.checker.CheckOutcome.GOOD`
  once the mechanism's staleness window has elapsed;
* **client cost** is honest: every byte and fetch a client pays shows up
  in :class:`CheckCost` / the fetcher's ``FetchStats``, including the
  cost of failed attempts under fault injection;
* **vulnerability windows** are non-negative and shrink monotonically
  as the update interval shrinks;
* **payload sizing** reports the bytes of the published artifact a
  client must hold (CRL corpus, CRLSet blob, filter cascade, ...).
"""

from __future__ import annotations

import abc
import datetime
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.revocation.checker import CheckOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pki.certificate import Certificate
    from repro.revocation.checker import CheckResult, RevocationChecker
    from repro.scan.ecosystem import Ecosystem
    from repro.scan.records import LeafRecord

__all__ = [
    "CheckCost",
    "Delivery",
    "MechanismHost",
    "OCSP_RESPONSE_BYTES",
    "RevocationMechanism",
    "SERVE_ENDPOINTS",
    "ServeModel",
    "SessionState",
    "UpdateModel",
    "attack_window_days",
    "residual_life_days",
    "staleness_window_days",
]

#: typical encoded size of one OCSP response (paper: "typically <1 KB");
#: shared by the OCSP, stapling, and CRL-with-OCSP-fallback cost models.
OCSP_RESPONSE_BYTES = 450


class Delivery(enum.Enum):
    """How revocation information reaches the client."""

    #: client pulls one artifact per issuing CA (CRLs).
    PULL_PER_CA = "pull-per-ca"
    #: client pulls one answer per certificate (OCSP).
    PULL_PER_CERT = "pull-per-cert"
    #: the server delivers the proof inside the TLS handshake
    #: (stapling, postcertificates).
    HANDSHAKE = "handshake"
    #: the vendor pushes an aggregate to every client
    #: (CRLSets, CRLite, OneCRL).
    PUSHED = "pushed"
    #: no revocation channel at all; expiry does the revoking
    #: (short-lived certificates).
    LIFETIME = "lifetime"


def staleness_window_days(
    update_interval_days: float, propagation_lag_days: float = 0.0
) -> float:
    """Worst-case age of the revocation information a client trusts.

    The shared math previously re-implemented by
    ``repro.extensions.shortlived`` (hard-fail windows) and the OneCRL /
    CRLSet push models: an artifact refreshed every
    ``update_interval_days`` and taking ``propagation_lag_days`` to
    reach clients leaves a client trusting data up to the *sum* old.
    """
    if update_interval_days < 0 or propagation_lag_days < 0:
        raise ValueError("staleness components must be non-negative")
    return update_interval_days + propagation_lag_days


def residual_life_days(
    not_after: datetime.date, since: datetime.date
) -> float:
    """Days a certificate stays valid after ``since`` (compromise or
    revocation date); zero once it has already expired.  The residual
    half of every attack-window computation -- previously re-implemented
    by ``repro.extensions.shortlived`` and the OneCRL scope override.
    """
    return max(0.0, float((not_after - since).days))


def attack_window_days(residual_days: float, exposure_days: float) -> float:
    """Clamp an attacker's exposure window to the certificate's life.

    ``residual_days`` is how long the certificate stays valid after the
    compromise; ``exposure_days`` is how long the mechanism leaves
    clients unprotected (reaction + staleness).  The window can never be
    negative, and can never outlive the certificate itself.
    """
    return max(0.0, min(residual_days, exposure_days))


@dataclass(frozen=True)
class UpdateModel:
    """A mechanism's update/propagation cadence."""

    #: days between refreshes of the published artifact.
    update_interval_days: float
    #: days for a refresh to reach the client population.
    propagation_lag_days: float = 0.0

    @property
    def staleness_window_days(self) -> float:
        return staleness_window_days(
            self.update_interval_days, self.propagation_lag_days
        )


#: endpoint classes a mechanism's server side can expose.  ``"none"``
#: marks mechanisms with no distribution channel at all.
SERVE_ENDPOINTS = frozenset(
    {"ocsp", "crl", "staple", "aggregate", "issuance", "none"}
)


@dataclass(frozen=True)
class ServeModel:
    """The server-side serving/distribution model behind a mechanism.

    Where :class:`UpdateModel` describes the cadence a *client* observes,
    ``ServeModel`` describes what the CA/CDN side must run to sustain it:
    which endpoint class answers requests, how often responses are
    re-signed, and how large one response is.  :mod:`repro.serve` builds
    its responder, caches, and fleet traffic from this port alone.
    """

    #: endpoint class served (one of :data:`SERVE_ENDPOINTS`):
    #: ``"ocsp"`` pre-signed per-certificate responses, ``"crl"``
    #: per-CA shards, ``"staple"`` handshake proofs refreshed by the web
    #: server, ``"aggregate"`` pushed blobs (CRLSet/CRLite/OneCRL)
    #: distributed as deltas, ``"issuance"`` re-issuance load with no
    #: online endpoint (short-lived certificates).
    endpoint: str
    #: days one pre-signed response stays valid (its nextUpdate horizon).
    presign_interval_days: float
    #: encoded size of one response; ``None`` means sized per artifact
    #: by the storage adapter (CRL shards, aggregate blobs).
    response_bytes: int | None = None
    #: fraction of the full artifact one periodic delta update carries
    #: (aggregate endpoints only).
    delta_fraction: float = 1.0
    #: days between client pulls of the aggregate delta; ``None`` for
    #: request-driven endpoints.
    pull_interval_days: float | None = None

    def __post_init__(self) -> None:
        if self.endpoint not in SERVE_ENDPOINTS:
            raise ValueError(f"unknown serve endpoint {self.endpoint!r}")
        if self.presign_interval_days <= 0:
            raise ValueError("presign_interval_days must be positive")
        if self.response_bytes is not None and self.response_bytes <= 0:
            raise ValueError("response_bytes must be positive when set")
        if not 0.0 < self.delta_fraction <= 1.0:
            raise ValueError("delta_fraction must be in (0, 1]")
        if self.pull_interval_days is not None and self.pull_interval_days <= 0:
            raise ValueError("pull_interval_days must be positive when set")

    @property
    def serves_online(self) -> bool:
        """Does this mechanism answer live requests at all?"""
        return self.endpoint in ("ocsp", "crl", "staple", "aggregate")


@dataclass(frozen=True)
class CheckCost:
    """What one revocation check costs the client, per site visit."""

    #: byte sizes of the payloads fetched, in fetch order.
    fetched: tuple[int, ...] = ()
    #: the check was answered from the client's session cache.
    cache_hit: bool = False

    @property
    def fetches(self) -> int:
        return len(self.fetched)

    @property
    def bytes_downloaded(self) -> int:
        return sum(self.fetched)


@dataclass
class SessionState:
    """Per-browsing-session client caches, shared across one session's
    checks.  Mechanisms key their private cache state by name."""

    #: CRL URLs already downloaded this session.
    crl_urls: set[str] = field(default_factory=set)
    #: certificate ids with a cached OCSP answer this session.
    ocsp_certs: set[int] = field(default_factory=set)


class MechanismHost(Protocol):
    """What a mechanism needs from its study (duck-typed so the
    conformance suite can substitute a lightweight stand-in)."""

    @property
    def ecosystem(self) -> Ecosystem: ...

    @property
    def calibration(self): ...


class RevocationMechanism(abc.ABC):
    """One way of learning that a certificate has been revoked."""

    #: registry key; lower-case, stable across refactors.
    name: str = "abstract"
    #: human-readable title for reports.
    title: str = "abstract mechanism"
    delivery: Delivery = Delivery.PULL_PER_CA
    #: True when checks reach over the network at connection time.
    uses_network: bool = False
    #: position in the availability experiment's active fallback chain
    #: (lower tries first); ``None`` keeps the mechanism out of it.
    fallback_priority: int | None = None

    def __init__(self, host: MechanismHost) -> None:
        self.host = host

    # -- convenience ------------------------------------------------------

    @property
    def ecosystem(self) -> Ecosystem:
        return self.host.ecosystem

    @property
    def measurement_end(self) -> datetime.date:
        return self.host.calibration.measurement_end

    # -- the contract -----------------------------------------------------

    @abc.abstractmethod
    def covers(self, leaf: LeafRecord) -> bool:
        """Can this mechanism say anything about this certificate?"""

    @abc.abstractmethod
    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        """Status a fully-propagated client sees on ``at``.

        Soundness contract: never ``GOOD`` for a certificate revoked at
        least :meth:`update_model`'s staleness window before ``at``;
        uncovered certificates come back ``NO_INFO``, never ``GOOD``.
        """

    @abc.abstractmethod
    def update_model(self) -> UpdateModel:
        """The mechanism's default update/propagation cadence."""

    @abc.abstractmethod
    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        """Per-site-visit client cost, mutating the session's caches."""

    @abc.abstractmethod
    def payload_bytes(self, at: datetime.date) -> int:
        """Size of the published artifact(s) behind this mechanism."""

    # -- derived behaviour (shared math; override only with cause) --------

    def serve_model(self) -> ServeModel:
        """The server-side model :mod:`repro.serve` runs this mechanism
        under.  The default derives an endpoint class from
        :attr:`delivery` and the update cadence; concrete mechanisms
        override it with their real response sizing.
        """
        interval = self.update_model().update_interval_days
        if self.delivery is Delivery.PULL_PER_CERT:
            return ServeModel(
                endpoint="ocsp",
                presign_interval_days=interval,
                response_bytes=OCSP_RESPONSE_BYTES,
            )
        if self.delivery is Delivery.PULL_PER_CA:
            return ServeModel(endpoint="crl", presign_interval_days=interval)
        if self.delivery is Delivery.HANDSHAKE:
            return ServeModel(
                endpoint="staple",
                presign_interval_days=interval,
                response_bytes=OCSP_RESPONSE_BYTES,
            )
        if self.delivery is Delivery.PUSHED:
            return ServeModel(
                endpoint="aggregate",
                presign_interval_days=interval,
                delta_fraction=0.1,
                pull_interval_days=interval,
            )
        return ServeModel(endpoint="issuance", presign_interval_days=interval)

    def vulnerability_window_days(
        self,
        leaf: LeafRecord,
        update_interval_days: float | None = None,
    ) -> float:
        """Days a revoked certificate stays accepted by a checking
        client: the staleness window, clamped to the certificate's
        remaining life.  Raises for a certificate that was never
        revoked.  Monotone non-decreasing in ``update_interval_days``.
        """
        if leaf.revoked_at is None:
            raise ValueError(f"certificate {leaf.cert_id} was never revoked")
        model = self.update_model()
        interval = (
            model.update_interval_days
            if update_interval_days is None
            else update_interval_days
        )
        exposure = staleness_window_days(interval, model.propagation_lag_days)
        residual = residual_life_days(leaf.not_after, leaf.revoked_at)
        return attack_window_days(residual, exposure)

    def active_check(
        self,
        checker: RevocationChecker,
        certificate: Certificate,
        at: datetime.datetime,
        issuer_key_hash: bytes | None = None,
    ) -> CheckResult | None:
        """Perform a live network check for one TLS connection.

        Only meaningful for :attr:`uses_network` mechanisms; the default
        (``None``) keeps push/lifetime mechanisms out of the
        availability experiment's fetch path.
        """
        return None
