"""OneCRL as a pluggable mechanism (paper §7 footnote 24).

Mozilla's pushed, *complete* list of revoked intermediates: a few dozen
32-byte entries that each block an entire issuance subtree.  Building
the list and measuring blast radius stays in
:mod:`repro.extensions.onecrl`; the mechanism wraps it so the sweeps can
hold its tiny payload against its deliberately narrow scope -- leaf
revocations are invisible to it, and ``lookup`` says so (``NO_INFO``)
instead of vouching ``GOOD`` for a revoked leaf.
"""

from __future__ import annotations

import datetime

from repro.extensions.onecrl import build_onecrl
from repro.mechanisms.base import (
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
    residual_life_days,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import IntermediateRecord, LeafRecord


@register
class OneCrlMechanism(RevocationMechanism):
    name = "onecrl"
    title = "OneCRL (pushed list of revoked intermediates)"
    delivery = Delivery.PUSHED

    def __init__(self, host) -> None:
        super().__init__(host)
        self._by_id: dict[int, IntermediateRecord] | None = None

    def _intermediate(self, leaf: LeafRecord) -> IntermediateRecord:
        if self._by_id is None:
            self._by_id = {
                record.intermediate_id: record
                for record in self.ecosystem.intermediates
            }
        return self._by_id[leaf.intermediate_id]

    def covers(self, leaf: LeafRecord) -> bool:
        """Only chains under a (to-be-)listed intermediate are in scope;
        the revoked *leaf* population is deliberately not."""
        if leaf.revoked_at is not None:
            return self._intermediate(leaf).revoked_at is not None
        return True  # a clean chain is vouched for by list absence

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        intermediate = self._intermediate(leaf)
        if intermediate.revoked_at is not None and intermediate.revoked_at <= at:
            return CheckOutcome.REVOKED  # the whole subtree is blocked
        if leaf.revoked_at is not None:
            return CheckOutcome.NO_INFO  # leaf revocations are out of scope
        if at > leaf.not_after:
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        # Shipped with the browser's daily component-update push.
        return UpdateModel(update_interval_days=1.0)

    def serve_model(self) -> ServeModel:
        # The intermediate list is tiny, so each daily push carries a
        # large fraction of it.
        return ServeModel(
            endpoint="aggregate",
            presign_interval_days=1.0,
            delta_fraction=0.25,
            pull_interval_days=1.0,
        )

    def vulnerability_window_days(
        self,
        leaf: LeafRecord,
        update_interval_days: float | None = None,
    ) -> float:
        """Honest about scope: a revoked leaf under a healthy
        intermediate stays accepted until it expires."""
        if leaf.revoked_at is None:
            raise ValueError(f"certificate {leaf.cert_id} was never revoked")
        if self._intermediate(leaf).revoked_at is None:
            return residual_life_days(leaf.not_after, leaf.revoked_at)
        return super().vulnerability_window_days(leaf, update_interval_days)

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        return CheckCost()  # pushed out of band

    def payload_bytes(self, at: datetime.date) -> int:
        return build_onecrl(self.ecosystem, at).size_bytes
