"""Postcertificates / revocation transparency as a pluggable mechanism.

The "Postcertificates for Revocation Transparency" proposal
(arXiv:2203.02280): revocations are appended to a CT-style public log,
and the server proves its certificate's *absence* from the revoked set
(or presents the postcertificate) inside the TLS handshake.  The client
pays no extra fetch -- the proof rides the handshake -- and the log's
maximum merge delay bounds the staleness window for every certificate,
leaf and intermediate alike.
"""

from __future__ import annotations

import datetime
import math

from repro.mechanisms.base import (
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import LeafRecord

#: the log's maximum merge delay (days): how long a freshly submitted
#: revocation may take to appear in a signed tree head.
LOG_MMD_DAYS = 1.0

#: fixed proof framing: signed tree head + signature + timestamps.
_PROOF_HEADER_BYTES = 128


@register
class PostcertificateMechanism(RevocationMechanism):
    name = "postcertificate"
    title = "Postcertificates (revocation-transparency log proofs)"
    delivery = Delivery.HANDSHAKE

    def covers(self, leaf: LeafRecord) -> bool:
        return True  # issuance logs every certificate

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        if leaf.revoked_at is not None and leaf.revoked_at <= at:
            return CheckOutcome.REVOKED
        if at > leaf.not_after:
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        return UpdateModel(update_interval_days=LOG_MMD_DAYS)

    def serve_model(self) -> ServeModel:
        # The log serves one Merkle inclusion proof per handshake,
        # refreshed once per MMD; sized per artifact by the storage
        # adapter from payload_bytes.
        return ServeModel(endpoint="staple", presign_interval_days=LOG_MMD_DAYS)

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        return CheckCost()  # the proof rides the handshake

    def payload_bytes(self, at: datetime.date) -> int:
        """One Merkle inclusion/absence proof: log2(n) 32-byte hashes
        plus the signed head -- the per-handshake artifact."""
        population = max(2, len(self.ecosystem.leaves))
        return _PROOF_HEADER_BYTES + 32 * math.ceil(math.log2(population))
