"""OCSP as a pluggable mechanism (paper §5.2).

One query per certificate, answered with a signed response "typically
<1 KB" and cacheable for days.  The per-certificate pull keeps payloads
tiny but adds a blocking round trip per new site and leaks browsing
history to the responder -- the trade the paper's §5.2/§6 sections
weigh.
"""

from __future__ import annotations

import datetime

from repro.mechanisms.base import (
    OCSP_RESPONSE_BYTES,
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import LeafRecord


@register
class OcspMechanism(RevocationMechanism):
    name = "ocsp"
    title = "OCSP (pull per certificate)"
    delivery = Delivery.PULL_PER_CERT
    uses_network = True
    #: first in the availability fallback chain (§6.1).
    fallback_priority = 10

    def covers(self, leaf: LeafRecord) -> bool:
        return leaf.ocsp_url is not None

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        if not self.covers(leaf):
            return CheckOutcome.NO_INFO
        if leaf.revoked_at is not None and leaf.revoked_at <= at:
            return CheckOutcome.REVOKED
        if at > leaf.not_after:
            # Responders may answer "good" for expired serials (§6.1's
            # complaint); model the honest responder: no statement.
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        # Responses are produced on demand but cacheable for ~4 days
        # (§2.2), so a client may trust one that old.
        return UpdateModel(update_interval_days=4.0)

    def serve_model(self) -> ServeModel:
        # Pre-signed per-certificate responses with a 4-day nextUpdate.
        return ServeModel(
            endpoint="ocsp",
            presign_interval_days=4.0,
            response_bytes=OCSP_RESPONSE_BYTES,
        )

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        if leaf.ocsp_url is None:
            return CheckCost()
        if leaf.cert_id in session.ocsp_certs:
            return CheckCost(cache_hit=True)
        session.ocsp_certs.add(leaf.cert_id)
        return CheckCost(fetched=(OCSP_RESPONSE_BYTES,))

    def payload_bytes(self, at: datetime.date) -> int:
        """One signed response: the artifact a client holds per cert."""
        return OCSP_RESPONSE_BYTES

    def active_check(self, checker, certificate, at, issuer_key_hash=None):
        if issuer_key_hash is None:
            return None
        return checker.check_ocsp(certificate, issuer_key_hash, at)
