"""Certificate Revocation Lists as a pluggable mechanism (paper §5.1).

The client pulls the issuing CA's full CRL (cacheable until its
``nextUpdate``, ~24 h here) and checks the serial locally.  A
CRL-capable client whose certificate carries no CRL pointer falls back
to OCSP -- the same behaviour the legacy ``SessionCostModel`` ``"crl"``
mode and the availability experiment's fallback chain encoded, kept
byte-for-byte.
"""

from __future__ import annotations

import datetime

from repro.mechanisms.base import (
    OCSP_RESPONSE_BYTES,
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import LeafRecord


@register
class CrlMechanism(RevocationMechanism):
    name = "crl"
    title = "CRL (pull per CA, cache to nextUpdate)"
    delivery = Delivery.PULL_PER_CA
    uses_network = True
    #: tried after OCSP in the availability fallback chain (§6.1:
    #: clients query the responder first, then fetch the CRL).
    fallback_priority = 20

    def __init__(self, host) -> None:
        super().__init__(host)
        self._size_cache: dict[str, int] = {}

    def covers(self, leaf: LeafRecord) -> bool:
        return leaf.crl_url is not None

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        if not self.covers(leaf):
            return CheckOutcome.NO_INFO
        if leaf.revoked_at is not None and leaf.revoked_at <= at:
            return CheckOutcome.REVOKED
        if at > leaf.not_after:
            # The CA may drop the entry once the certificate expires
            # (RFC 5280 permits it); an expired cert has no status.
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        # Reissued daily; clients trust a cached copy to nextUpdate.
        return UpdateModel(update_interval_days=1.0, propagation_lag_days=1.0)

    def serve_model(self) -> ServeModel:
        # Per-CA shards, re-signed daily; shard sizes come from the
        # ecosystem's exact incremental CRL sizing.
        return ServeModel(endpoint="crl", presign_interval_days=1.0)

    def _crl_size(self, url: str) -> int:
        size = self._size_cache.get(url)
        if size is None:
            size = self.ecosystem.crl_for_url(url).size_bytes(
                self.measurement_end
            )
            self._size_cache[url] = size
        return size

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        if leaf.crl_url is not None:
            if leaf.crl_url in session.crl_urls:
                return CheckCost(cache_hit=True)
            session.crl_urls.add(leaf.crl_url)
            return CheckCost(fetched=(self._crl_size(leaf.crl_url),))
        if leaf.ocsp_url is not None:
            if leaf.cert_id in session.ocsp_certs:
                return CheckCost(cache_hit=True)
            session.ocsp_certs.add(leaf.cert_id)
            return CheckCost(fetched=(OCSP_RESPONSE_BYTES,))
        return CheckCost()  # never-revocable certificate

    def payload_bytes(self, at: datetime.date) -> int:
        """The whole published CRL corpus on ``at`` (what Figure 5's
        crawler downloads daily)."""
        return sum(crl.size_bytes(at) for crl in self.ecosystem.crls)

    def active_check(self, checker, certificate, at, issuer_key_hash=None):
        return checker.check_crl(certificate, at)
