"""Pluggable revocation mechanisms behind one interface.

Every way a client can learn "this certificate is revoked" -- the
paper's four (CRL, OCSP, OCSP stapling, CRLSets) and the post-2015
scenario pack (CRLite cascades, short-lived certificates, OneCRL,
postcertificates) -- implements :class:`RevocationMechanism` and
registers itself here, so experiments sweep the registry uniformly
(docs/MECHANISMS.md).

Import order below *is* sweep order: legacy mechanisms first, in the
order the paper introduces them.
"""

from repro.mechanisms.base import (
    CheckCost,
    Delivery,
    MechanismHost,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
    attack_window_days,
    residual_life_days,
    staleness_window_days,
)
from repro.mechanisms.registry import (
    create,
    create_suite,
    get,
    mechanism_names,
    mechanism_titles,
    register,
)

# Registration order: the paper's mechanisms (§5-§7) ...
from repro.mechanisms import crl as _crl  # noqa: E402,F401
from repro.mechanisms import ocsp as _ocsp  # noqa: E402,F401
from repro.mechanisms import stapling as _stapling  # noqa: E402,F401
from repro.mechanisms import crlset as _crlset  # noqa: E402,F401

# ... then the post-2015 scenario pack (PAPERS.md).
from repro.mechanisms import crlite as _crlite  # noqa: E402,F401
from repro.mechanisms import shortlived as _shortlived  # noqa: E402,F401
from repro.mechanisms import onecrl as _onecrl  # noqa: E402,F401
from repro.mechanisms import postcert as _postcert  # noqa: E402,F401

__all__ = [
    "CheckCost",
    "Delivery",
    "MechanismHost",
    "RevocationMechanism",
    "ServeModel",
    "SessionState",
    "UpdateModel",
    "attack_window_days",
    "create",
    "create_suite",
    "get",
    "mechanism_names",
    "mechanism_titles",
    "register",
    "residual_life_days",
    "staleness_window_days",
]
