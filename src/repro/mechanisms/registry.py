"""The mechanism registry.

Concrete :class:`~repro.mechanisms.base.RevocationMechanism` classes
register themselves with :func:`register`; everything else -- the
experiments, ``repro.api``, the CLI, the conformance suite -- goes
through :func:`create` / :func:`create_suite` and never constructs a
concrete class directly (lint rule RPR015 enforces this outside
``repro/mechanisms/``).

Registration order is import order in ``repro/mechanisms/__init__.py``,
so sweeps are deterministic: the paper's four legacy mechanisms first,
then the modern scenario pack.
"""

from __future__ import annotations

from repro.mechanisms.base import MechanismHost, RevocationMechanism

__all__ = [
    "create",
    "create_suite",
    "get",
    "mechanism_names",
    "mechanism_titles",
    "register",
]

_REGISTRY: dict[str, type[RevocationMechanism]] = {}


def register(
    cls: type[RevocationMechanism],
) -> type[RevocationMechanism]:
    """Class decorator adding a mechanism to the registry."""
    name = cls.name
    if not name or name == RevocationMechanism.name:
        raise ValueError(f"{cls.__name__} must define a concrete name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"mechanism name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def mechanism_names() -> tuple[str, ...]:
    """Registered names, in registration (sweep) order."""
    return tuple(_REGISTRY)


def mechanism_titles() -> dict[str, str]:
    """Mapping of mechanism name -> report title, in sweep order."""
    return {name: cls.title for name, cls in _REGISTRY.items()}


def get(name: str) -> type[RevocationMechanism]:
    """The registered class for ``name``; raises ``KeyError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "none"
        raise KeyError(
            f"unknown mechanism {name!r} (registered: {known})"
        ) from None


def create(name: str, host: MechanismHost) -> RevocationMechanism:
    """Instantiate one registered mechanism against a study host."""
    return get(name)(host)


def create_suite(
    host: MechanismHost, names: tuple[str, ...] | list[str] | None = None
) -> list[RevocationMechanism]:
    """Instantiate mechanisms in sweep order.

    ``names`` restricts (and re-orders) the suite -- the hook behind
    ``repro.api.study.run_one(..., mechanism=...)``.
    """
    selected = mechanism_names() if names is None else tuple(names)
    return [create(name, host) for name in selected]
