"""OCSP Stapling as a pluggable mechanism (paper §4.3, §8).

The server fetches its own OCSP response and staples it into the TLS
handshake: zero extra client fetches when every server for the site
staples, an ordinary OCSP pull otherwise.  The partial-deployment
fallback mirrors the legacy ``SessionCostModel`` ``"staple"`` mode
byte-for-byte; multi-staple chain costs stay in
:mod:`repro.extensions.multistaple`.
"""

from __future__ import annotations

import datetime

from repro.mechanisms.base import (
    OCSP_RESPONSE_BYTES,
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import LeafRecord


@register
class StaplingMechanism(RevocationMechanism):
    name = "ocsp-stapling"
    title = "OCSP Stapling (handshake-delivered, OCSP fallback)"
    delivery = Delivery.HANDSHAKE
    uses_network = True  # the fallback pull still reaches the responder

    def covers(self, leaf: LeafRecord) -> bool:
        return leaf.ocsp_url is not None

    @staticmethod
    def is_fully_stapled(leaf: LeafRecord) -> bool:
        """Every server advertising the cert staples (§4.3's bar for a
        site to actually benefit)."""
        return leaf.stapling_servers == leaf.server_count > 0

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        if not self.covers(leaf):
            return CheckOutcome.NO_INFO
        if leaf.revoked_at is not None and leaf.revoked_at <= at:
            # A revoked-status staple (or the fallback query) says so;
            # the mis-stapling server case is §6.2's browser-policy
            # question, not the mechanism's.
            return CheckOutcome.REVOKED
        if at > leaf.not_after:
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        # A staple is an OCSP response: same cacheable validity.
        return UpdateModel(update_interval_days=4.0)

    def serve_model(self) -> ServeModel:
        # Web servers refresh one staple per certificate and reuse it
        # for every handshake until nextUpdate (nginx-style reuse).
        return ServeModel(
            endpoint="staple",
            presign_interval_days=4.0,
            response_bytes=OCSP_RESPONSE_BYTES,
        )

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        if self.is_fully_stapled(leaf):
            return CheckCost()  # staple arrived in the handshake
        if leaf.ocsp_url is None:
            return CheckCost()
        if leaf.cert_id in session.ocsp_certs:
            return CheckCost(cache_hit=True)
        session.ocsp_certs.add(leaf.cert_id)
        return CheckCost(fetched=(OCSP_RESPONSE_BYTES,))

    def payload_bytes(self, at: datetime.date) -> int:
        """The stapled response rides the handshake, same size."""
        return OCSP_RESPONSE_BYTES
