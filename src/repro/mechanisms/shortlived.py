"""Short-lived certificates as a pluggable mechanism (paper §8/§9).

Topalovic et al.'s way out of the revocation mess: issue certificates so
short-lived that "revoking a certificate is as easy as not renewing
it".  There is no revocation channel at all -- the update interval *is*
the certificate lifetime, so the vulnerability window is bounded by it.
The Monte-Carlo regime study stays in
:mod:`repro.extensions.shortlived`; this class gives the same issuance
model the shared mechanism interface so the sweeps can compare it.
"""

from __future__ import annotations

import datetime

from repro.mechanisms.base import (
    CheckCost,
    Delivery,
    RevocationMechanism,
    ServeModel,
    SessionState,
    UpdateModel,
)
from repro.mechanisms.registry import register
from repro.revocation.checker import CheckOutcome
from repro.scan.records import LeafRecord

#: default lifetime, matching repro.extensions.shortlived's study.
SHORT_LIVED_DAYS = 4


@register
class ShortLivedMechanism(RevocationMechanism):
    name = "short-lived"
    title = f"Short-lived certificates ({SHORT_LIVED_DAYS}-day, no revocation)"
    delivery = Delivery.LIFETIME

    lifetime_days = SHORT_LIVED_DAYS

    def covers(self, leaf: LeafRecord) -> bool:
        return True  # expiry needs no pointers

    def lookup(self, leaf: LeafRecord, at: datetime.date) -> CheckOutcome:
        """Status under the short-lived *issuance regime*: the CA stops
        renewing at ``revoked_at``, so the last short certificate dies
        at most one lifetime later."""
        if leaf.revoked_at is not None:
            expiry = leaf.revoked_at + datetime.timedelta(
                days=self.lifetime_days
            )
            if min(expiry, leaf.not_after) <= at:
                return CheckOutcome.REVOKED
        elif at > leaf.not_after:
            return CheckOutcome.UNKNOWN
        return CheckOutcome.GOOD

    def update_model(self) -> UpdateModel:
        return UpdateModel(update_interval_days=float(self.lifetime_days))

    def serve_model(self) -> ServeModel:
        # No online endpoint: the serving cost is the CA's re-issuance
        # load, one signing per alive certificate per lifetime.
        return ServeModel(
            endpoint="issuance",
            presign_interval_days=float(self.lifetime_days),
        )

    def check_cost(self, leaf: LeafRecord, session: SessionState) -> CheckCost:
        return CheckCost()  # no revocation traffic, ever

    def payload_bytes(self, at: datetime.date) -> int:
        return 0  # there is no revocation artifact
