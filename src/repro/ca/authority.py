"""The Certificate Authority.

A :class:`CertificateAuthority` owns a key pair and a CA certificate
(self-signed for roots, parent-signed for intermediates), issues leaf and
intermediate certificates, accepts revocation requests, and exposes its
dissemination channels -- a :class:`~repro.ca.crl_publisher.CrlPublisher`
and an :class:`~repro.ca.ocsp_responder.OcspResponder`.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.ca.crl_publisher import CrlPublisher
from repro.ca.ocsp_responder import OcspResponder
from repro.pki.certificate import Certificate, CertificateBuilder
from repro.pki.keys import KeyPair, SignatureBackend
from repro.pki.name import Name
from repro.pki.serial import SequentialSerialPolicy, SerialNumberPolicy
from repro.revocation.reason import ReasonCode

__all__ = ["CertificateAuthority", "IssuedRecord"]

_UTC = datetime.timezone.utc


@dataclass
class IssuedRecord:
    """Everything the CA remembers about one issued certificate."""

    certificate: Certificate
    crl_url: str | None
    revoked_at: datetime.datetime | None = None
    revocation_reason: ReasonCode | None = None

    @property
    def serial_number(self) -> int:
        return self.certificate.serial_number

    @property
    def is_revoked(self) -> bool:
        return self.revoked_at is not None

    def is_revoked_at(self, when: datetime.datetime) -> bool:
        return self.revoked_at is not None and self.revoked_at <= when


class CertificateAuthority:
    """An issuing authority with CRL and OCSP dissemination channels."""

    def __init__(
        self,
        name: Name,
        keys: KeyPair,
        certificate: Certificate,
        serial_policy: SerialNumberPolicy | None = None,
        crl_base_url: str | None = None,
        crl_shard_count: int = 1,
        crl_reissue_period: datetime.timedelta = datetime.timedelta(days=1),
        ocsp_url: str | None = None,
        ocsp_validity: datetime.timedelta = datetime.timedelta(days=4),
    ) -> None:
        self.name = name
        self.keys = keys
        self.certificate = certificate
        self.serial_policy = serial_policy or SequentialSerialPolicy()
        self.issued: dict[int, IssuedRecord] = {}

        self.crl_publisher: CrlPublisher | None = None
        if crl_base_url is not None:
            self.crl_publisher = CrlPublisher(
                issuer_name=name,
                issuer_keys=keys,
                base_url=crl_base_url,
                shard_count=crl_shard_count,
                reissue_period=crl_reissue_period,
            )

        self.ocsp_url = ocsp_url
        self.ocsp_responder: OcspResponder | None = None
        if ocsp_url is not None:
            self.ocsp_responder = OcspResponder(
                responder_keys=keys,
                issuer_key_hash=keys.key_id,
                status_lookup=self._ocsp_status_lookup,
                validity_period=ocsp_validity,
            )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def create_root(
        cls,
        common_name: str,
        seed: str,
        not_before: datetime.datetime,
        not_after: datetime.datetime,
        backend: SignatureBackend | None = None,
        **kwargs,
    ) -> "CertificateAuthority":
        """Create a self-signed root CA.

        Roots carry no revocation pointers by design (§3.2 footnote 9):
        they can only be "revoked" by removal from client trust stores.
        """
        name = Name.make(common_name, organization=common_name)
        keys = KeyPair.generate(seed, backend)
        certificate = (
            CertificateBuilder()
            .subject(name)
            .issuer(name)
            .serial_number(1)
            .public_key(keys.public_key)
            .validity(not_before, not_after)
            .ca()
            .sign(keys)
        )
        return cls(name=name, keys=keys, certificate=certificate, **kwargs)

    def create_intermediate(
        self,
        common_name: str,
        seed: str,
        not_before: datetime.datetime,
        not_after: datetime.datetime,
        include_crl: bool = True,
        include_ocsp: bool = True,
        backend: SignatureBackend | None = None,
        **kwargs,
    ) -> "CertificateAuthority":
        """Issue an intermediate CA certificate and return the new CA.

        The intermediate's own revocation pointers name *this* CA's
        channels (the parent revokes its child).
        """
        name = Name.make(common_name, organization=common_name)
        keys = KeyPair.generate(seed, backend)
        serial = self.serial_policy.next_serial()
        builder = (
            CertificateBuilder()
            .subject(name)
            .issuer(self.name)
            .serial_number(serial)
            .public_key(keys.public_key)
            .validity(not_before, not_after)
            .ca()
        )
        crl_url: str | None = None
        if include_crl and self.crl_publisher is not None:
            crl_url = self.crl_publisher.assign(serial)
            builder.crl_urls([crl_url])
        if include_ocsp and self.ocsp_url is not None:
            builder.ocsp_urls([self.ocsp_url])
        certificate = builder.sign(self.keys)
        self.issued[serial] = IssuedRecord(certificate=certificate, crl_url=crl_url)
        return CertificateAuthority(
            name=name, keys=keys, certificate=certificate, **kwargs
        )

    # -- issuance --------------------------------------------------------------

    def issue_leaf(
        self,
        common_name: str,
        public_key: bytes,
        not_before: datetime.datetime,
        not_after: datetime.datetime,
        ev: bool = False,
        ev_policy_oid: str | None = None,
        include_crl: bool = True,
        include_ocsp: bool = True,
    ) -> Certificate:
        """Issue a leaf certificate and record it in the ledger."""
        serial = self.serial_policy.next_serial()
        builder = (
            CertificateBuilder()
            .subject(Name.make(common_name))
            .issuer(self.name)
            .serial_number(serial)
            .public_key(public_key)
            .validity(not_before, not_after)
        )
        crl_url: str | None = None
        if include_crl and self.crl_publisher is not None:
            crl_url = self.crl_publisher.assign(serial)
            builder.crl_urls([crl_url])
        if include_ocsp and self.ocsp_url is not None:
            builder.ocsp_urls([self.ocsp_url])
        if ev:
            from repro.asn1.oid import OID

            builder.ev(ev_policy_oid or OID.EV_VERISIGN)
        certificate = builder.sign(self.keys)
        self.issued[serial] = IssuedRecord(certificate=certificate, crl_url=crl_url)
        return certificate

    # -- revocation --------------------------------------------------------

    def revoke(
        self,
        serial_number: int,
        at: datetime.datetime,
        reason: ReasonCode | None = None,
    ) -> None:
        """Process a revocation request from a subscriber."""
        record = self.issued.get(serial_number)
        if record is None:
            raise KeyError(f"serial {serial_number} was not issued by {self.name}")
        if record.is_revoked:
            return  # idempotent
        record.revoked_at = at
        record.revocation_reason = reason
        if record.crl_url is not None and self.crl_publisher is not None:
            self.crl_publisher.record_revocation(
                serial_number, at, reason, record.certificate.not_after
            )

    def _ocsp_status_lookup(
        self, serial_number: int
    ) -> tuple[datetime.datetime | None, ReasonCode | None] | None:
        record = self.issued.get(serial_number)
        if record is None:
            return None
        return record.revoked_at, record.revocation_reason

    # -- introspection -----------------------------------------------------

    @property
    def issuer_key_hash(self) -> bytes:
        return self.keys.key_id

    def revoked_records(self) -> list[IssuedRecord]:
        return [record for record in self.issued.values() if record.is_revoked]

    def record_for(self, serial_number: int) -> IssuedRecord | None:
        return self.issued.get(serial_number)
