"""Per-CA profiles calibrated to the paper's Table 1.

Table 1 of the paper lists, for the nine largest CAs, the number of CRLs
they maintain, their total and revoked certificate counts (within the Leaf
Set), and the average CRL size a certificate of theirs points at:

    CA          CRLs  Total cert  Revoked   Avg CRL KB
    GoDaddy      322   1,050,014  277,500      1,184.0
    RapidSSL       5     626,774    2,153         34.5
    Comodo        30     447,506    7,169        517.6
    PositiveSSL    3     415,075    8,177        441.3
    GeoTrust      27     335,380    3,081         12.9
    Verisign      37     311,788   15,438        205.2
    Thawte        32     278,563    4,446         25.4
    GlobalSign    26     247,819   24,242      2,050.0
    StartCom      17     236,776    1,752        240.5

A key subtlety: CRLs contain *every* certificate a CA has revoked --
11,461,935 entries across the paper's 2,800 CRLs -- while only ~420 k
revocations belong to scan-observed (Leaf Set) certificates.  Profiles
therefore carry an ``avg_crl_kb`` target from which the ecosystem
generator derives a *hidden* (never-observed) revocation population per
shard, so per-CRL byte sizes come out right at any leaf scale.

Two non-Table-1 profiles complete the corpus: ``Apple`` (the paper's
76 MB outlier CRL at http://crl.apple.com/wwdrca.crl with 2.6 M entries)
and ``Other``, a bucket for the long tail of small CAs with tiny CRLs
(which is why the *raw* CRL size median in Figure 6 is under 1 KB).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

__all__ = ["CaProfile", "PAPER_CA_PROFILES", "total_observed_certs"]

_JAN_2010 = datetime.date(2010, 1, 15)


@dataclass(frozen=True)
class CaProfile:
    """Generator parameters for one CA, calibrated to the paper."""

    name: str
    #: certificates of this CA in the Leaf Set at full (paper) scale.
    observed_certs: int
    #: of those, how many end up revoked by the end of the study.
    observed_revoked: int
    #: number of CRL shards at full scale (Table 1 column "CRLs").
    crl_count: int
    #: target average CRL size in KB for a certificate of this CA
    #: (Table 1 column "Avg CRL size"); drives the hidden population.
    avg_crl_kb: float
    #: "sequential" (small serials) or "random_long" (~49-decimal-digit
    #: serials; paper footnote 11 blames these for CRL size variance).
    serial_style: str = "sequential"
    #: fraction of issued leaves that are EV.
    ev_fraction: float = 0.0
    #: date from which new certs carry an OCSP responder URL (Figure 4;
    #: RapidSSL adopted OCSP only in July 2012).
    ocsp_since: datetime.date = _JAN_2010
    #: adoption ramp: each certificate's effective adoption date is
    #: ``ocsp_since`` plus a uniform draw from [0, ocsp_ramp_days]; used
    #: for the "Other" bucket so aggregate OCSP inclusion rises smoothly
    #: through 2011-2013 as in Figure 4.
    ocsp_ramp_days: int = 0
    #: fraction of new certs that carry a CRL distribution point.
    crl_inclusion: float = 0.999
    #: CRL re-issue period in days (95% of CRLs expire within 24 h).
    crl_reissue_days: int = 1
    #: number of intermediate CA certificates under this brand.
    intermediates: int = 2
    #: whether Google's CRLSet crawl covers (some of) this CA's CRLs.
    crlset_covered: bool = False

    def scaled_certs(self, scale: float) -> int:
        return max(1, round(self.observed_certs * scale))

    def scaled_revoked(self, scale: float) -> int:
        return min(self.scaled_certs(scale), round(self.observed_revoked * scale))

    def scaled_crl_count(self, scale: float) -> int:
        """CRL shard counts scale with the corpus (more slowly than the
        certificate population) so that per-CRL entry counts and byte
        sizes -- which the paper reports in absolute terms -- hold at any
        scale."""
        if scale >= 0.1:
            return self.crl_count
        return max(1, round(self.crl_count * scale * 10))

    @property
    def revoked_fraction(self) -> float:
        return self.observed_revoked / self.observed_certs


def _profile(**kwargs) -> CaProfile:
    return CaProfile(**kwargs)


#: The nine Table 1 CAs + Apple (76 MB CRL outlier) + the small-CA tail.
PAPER_CA_PROFILES: tuple[CaProfile, ...] = (
    _profile(
        name="GoDaddy",
        observed_certs=1_050_014,
        observed_revoked=277_500,
        crl_count=322,
        avg_crl_kb=1_184.0,
        serial_style="sequential",
        ev_fraction=0.008,
        intermediates=6,
        crlset_covered=True,
    ),
    _profile(
        name="RapidSSL",
        observed_certs=626_774,
        observed_revoked=2_153,
        crl_count=5,
        avg_crl_kb=34.5,
        serial_style="sequential",
        ev_fraction=0.0,
        ocsp_since=datetime.date(2012, 7, 1),
        intermediates=3,
        crlset_covered=True,
    ),
    _profile(
        name="Comodo",
        observed_certs=447_506,
        observed_revoked=7_169,
        crl_count=30,
        avg_crl_kb=517.6,
        serial_style="random_long",
        ev_fraction=0.06,
        intermediates=8,
        crlset_covered=True,
    ),
    _profile(
        name="PositiveSSL",
        observed_certs=415_075,
        observed_revoked=8_177,
        crl_count=3,
        avg_crl_kb=441.3,
        serial_style="random_long",
        ev_fraction=0.0,
        intermediates=3,
        crlset_covered=False,
    ),
    _profile(
        name="GeoTrust",
        observed_certs=335_380,
        observed_revoked=3_081,
        crl_count=27,
        avg_crl_kb=12.9,
        serial_style="sequential",
        ev_fraction=0.06,
        intermediates=5,
        crlset_covered=True,
    ),
    _profile(
        name="Verisign",
        observed_certs=311_788,
        observed_revoked=15_438,
        crl_count=37,
        avg_crl_kb=205.2,
        serial_style="random_long",
        ev_fraction=0.15,
        intermediates=6,
        crlset_covered=True,
    ),
    _profile(
        name="Thawte",
        observed_certs=278_563,
        observed_revoked=4_446,
        crl_count=32,
        avg_crl_kb=25.4,
        serial_style="sequential",
        ev_fraction=0.08,
        intermediates=4,
        crlset_covered=True,
    ),
    _profile(
        name="GlobalSign",
        observed_certs=247_819,
        observed_revoked=24_242,
        crl_count=26,
        avg_crl_kb=2_050.0,
        serial_style="random_long",
        ev_fraction=0.03,
        intermediates=5,
        crlset_covered=True,
    ),
    _profile(
        name="StartCom",
        observed_certs=236_776,
        observed_revoked=1_752,
        crl_count=17,
        avg_crl_kb=240.5,
        serial_style="sequential",
        ev_fraction=0.01,
        intermediates=3,
        crlset_covered=False,
    ),
    # A tail of smaller CAs whose (small) CRLs Google's internal crawl
    # does cover -- the CRLSet's 62 parents mostly map to CRLs like these.
    _profile(
        name="SmallCoveredCAs",
        observed_certs=160_000,
        observed_revoked=6_000,
        crl_count=400,
        avg_crl_kb=30.0,
        serial_style="sequential",
        ev_fraction=0.02,
        intermediates=8,
        crlset_covered=True,
    ),
    # The "VeriSign Class 3 Extended Validation" parent: a small, covered
    # CRL family whose ~5.8 k entries were removed from the CRLSet in
    # May 2014 (the paper's Figure 8 decline and Figure 10 removal tail).
    _profile(
        name="VerisignEV",
        observed_certs=22_000,
        observed_revoked=1_300,
        crl_count=2,
        avg_crl_kb=230.0,
        serial_style="sequential",
        ev_fraction=0.85,
        intermediates=1,
        crlset_covered=True,
    ),
    # The Apple WWDR CA: few web certificates observed, but the paper's
    # largest CRL by far (76 MB, >2.6 M entries).
    _profile(
        name="Apple",
        observed_certs=18_000,
        observed_revoked=900,
        crl_count=1,
        avg_crl_kb=77_800.0,
        serial_style="sequential",
        ev_fraction=0.0,
        intermediates=1,
        crlset_covered=False,
    ),
    # Long tail of small CAs: most of the paper's 2,800 CRLs are tiny
    # (raw median size < 1 KB), covering very few certificates each.
    _profile(
        name="Other",
        observed_certs=950_000,
        observed_revoked=70_000,
        crl_count=2_300,
        avg_crl_kb=0.9,
        serial_style="sequential",
        ev_fraction=0.015,
        intermediates=12,
        crl_inclusion=0.997,
        ocsp_ramp_days=1100,
        crlset_covered=False,
    ),
)


def total_observed_certs() -> int:
    """Full-scale Leaf Set size implied by the profiles (~5.07 M)."""
    return sum(profile.observed_certs for profile in PAPER_CA_PROFILES)
