"""Certificate Authority machinery.

CAs issue certificates, accept revocation requests, and disseminate
revocation information via sharded CRLs and OCSP responders -- the
behaviours the paper measures in §5.
"""

from repro.ca.authority import CertificateAuthority, IssuedRecord
from repro.ca.crl_publisher import CrlPublisher, CrlShard, CrlView
from repro.ca.ocsp_responder import OcspResponder
from repro.ca.profiles import CaProfile, PAPER_CA_PROFILES

__all__ = [
    "CaProfile",
    "CertificateAuthority",
    "CrlPublisher",
    "CrlShard",
    "CrlView",
    "IssuedRecord",
    "OcspResponder",
    "PAPER_CA_PROFILES",
]
