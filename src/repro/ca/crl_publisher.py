"""CRL publication with sharding.

CAs can shrink the CRL any one client must download by maintaining many
CRLs and assigning each certificate to one shard (§5.2, Table 1: GoDaddy
ran 322 CRLs; many CAs ran just a handful).  :class:`CrlPublisher` owns the
shards, assigns certificates at issuance, and produces both lightweight
daily views (for the crawler's time series) and real signed DER encodings
(for the byte-size measurements).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.reason import ReasonCode

__all__ = ["CrlPublisher", "CrlShard", "CrlView"]

_UTC = datetime.timezone.utc


@dataclass
class CrlShard:
    """One CRL: a URL plus the set of serials assigned to it."""

    url: str
    assigned_serials: set[int] = field(default_factory=set)
    #: serial -> (revocation date, reason, certificate notAfter)
    revoked: dict[int, tuple[datetime.datetime, ReasonCode | None, datetime.datetime]] = field(
        default_factory=dict
    )

    def entries_at(self, at: datetime.datetime) -> list[RevokedEntry]:
        """Entries visible at ``at``: already revoked, cert not yet expired.

        Real CAs drop entries once the certificate expires (it can no
        longer be accepted anyway), which keeps CRLs from growing forever.
        """
        return [
            RevokedEntry(serial, revoked_at, reason)
            for serial, (revoked_at, reason, not_after) in self.revoked.items()
            if revoked_at <= at <= not_after
        ]


@dataclass(frozen=True)
class CrlView:
    """A lightweight snapshot of one CRL on one crawl day."""

    url: str
    date: datetime.datetime
    serials: frozenset[int]
    entry_count: int

    def is_revoked(self, serial: int) -> bool:
        return serial in self.serials


class CrlPublisher:
    """Owns a CA's CRL shards and their publication schedule."""

    def __init__(
        self,
        issuer_name: Name,
        issuer_keys: KeyPair,
        base_url: str,
        shard_count: int = 1,
        reissue_period: datetime.timedelta = datetime.timedelta(days=1),
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.issuer_name = issuer_name
        self._keys = issuer_keys
        self.reissue_period = reissue_period
        self.shards = [
            CrlShard(url=f"{base_url}/crl{i}.crl") for i in range(shard_count)
        ]
        self._shard_by_url = {shard.url: shard for shard in self.shards}
        self._crl_numbers: dict[str, int] = {shard.url: 0 for shard in self.shards}

    # -- assignment --------------------------------------------------------

    def assign(self, serial: int) -> str:
        """Assign a newly issued serial to a shard; returns the CRL URL.

        Round-robin by current shard population keeps shards balanced, as
        CAs that shard do in practice.
        """
        shard = min(self.shards, key=lambda s: len(s.assigned_serials))
        shard.assigned_serials.add(serial)
        return shard.url

    def shard_for(self, serial: int) -> CrlShard | None:
        for shard in self.shards:
            if serial in shard.assigned_serials:
                return shard
        return None

    # -- revocation --------------------------------------------------------

    def record_revocation(
        self,
        serial: int,
        revoked_at: datetime.datetime,
        reason: ReasonCode | None,
        cert_not_after: datetime.datetime,
    ) -> None:
        shard = self.shard_for(serial)
        if shard is None:
            raise KeyError(f"serial {serial} was never assigned to a CRL shard")
        shard.revoked[serial] = (revoked_at, reason, cert_not_after)

    # -- publication -------------------------------------------------------

    def view(self, url: str, at: datetime.datetime) -> CrlView:
        shard = self._shard_by_url[url]
        entries = shard.entries_at(at)
        return CrlView(
            url=url,
            date=at,
            serials=frozenset(e.serial_number for e in entries),
            entry_count=len(entries),
        )

    def views(self, at: datetime.datetime) -> list[CrlView]:
        return [self.view(shard.url, at) for shard in self.shards]

    def window(self, at: datetime.datetime) -> tuple[datetime.datetime, datetime.datetime]:
        """The thisUpdate/nextUpdate window covering ``at``."""
        midnight = at.replace(hour=0, minute=0, second=0, microsecond=0)
        period = self.reissue_period
        elapsed = at - midnight
        steps = int(elapsed / period)
        this_update = midnight + steps * period
        return this_update, this_update + period

    def encode(self, url: str, at: datetime.datetime) -> CertificateRevocationList:
        """Produce the real signed CRL a client downloading ``url`` at
        ``at`` would receive."""
        shard = self._shard_by_url[url]
        this_update, next_update = self.window(at)
        self._crl_numbers[url] += 1
        return CertificateRevocationList.build(
            issuer=self.issuer_name,
            issuer_keys=self._keys,
            entries=shard.entries_at(at),
            this_update=this_update,
            next_update=next_update,
            crl_number=self._crl_numbers[url],
            url=url,
        )

    def encode_all(self, at: datetime.datetime) -> list[CertificateRevocationList]:
        return [self.encode(shard.url, at) for shard in self.shards]

    @property
    def urls(self) -> list[str]:
        return [shard.url for shard in self.shards]
