"""OCSP responder backed by a CA's revocation ledger."""

from __future__ import annotations

import datetime
from typing import Callable

from repro.pki.keys import KeyPair
from repro.revocation.ocsp import (
    CertStatus,
    OcspRequest,
    OcspResponse,
    OcspResponseStatus,
)
from repro.revocation.reason import ReasonCode

__all__ = ["OcspResponder"]


class OcspResponder:
    """Answers OCSP queries for one issuer key.

    ``status_lookup(serial)`` returns ``None`` for unknown serials or a
    ``(revoked_at | None, reason | None)`` tuple for known ones -- the CA
    supplies it.  ``validity_period`` controls response cacheability
    (typically days, longer than most CRLs, §2.2).

    ``force_unknown`` makes every answer ``unknown`` -- one of the browser
    test suite's failure modes (§6.1).
    """

    def __init__(
        self,
        responder_keys: KeyPair,
        issuer_key_hash: bytes,
        status_lookup: Callable[
            [int], tuple[datetime.datetime | None, ReasonCode | None] | None
        ],
        validity_period: datetime.timedelta = datetime.timedelta(days=4),
        force_unknown: bool = False,
    ) -> None:
        self._keys = responder_keys
        self.issuer_key_hash = issuer_key_hash
        self._status_lookup = status_lookup
        self.validity_period = validity_period
        self.force_unknown = force_unknown
        self.queries_served = 0

    def respond(self, request: OcspRequest, at: datetime.datetime) -> OcspResponse:
        self.queries_served += 1
        if request.issuer_key_hash != self.issuer_key_hash:
            return OcspResponse.error(OcspResponseStatus.UNAUTHORIZED)
        this_update = at.replace(minute=0, second=0, microsecond=0)
        next_update = this_update + self.validity_period

        if self.force_unknown:
            return self._build(
                CertStatus.UNKNOWN, request.serial_number, this_update, next_update
            )

        record = self._status_lookup(request.serial_number)
        if record is None:
            # RFC 6960: a responder that has no record of the serial says
            # `unknown`; the spec is explicit that this is not "trusted".
            return self._build(
                CertStatus.UNKNOWN, request.serial_number, this_update, next_update
            )
        revoked_at, reason = record
        if revoked_at is not None and revoked_at <= at:
            return self._build(
                CertStatus.REVOKED,
                request.serial_number,
                this_update,
                next_update,
                revocation_time=revoked_at,
                revocation_reason=reason,
            )
        return self._build(
            CertStatus.GOOD, request.serial_number, this_update, next_update
        )

    def _build(
        self,
        status: CertStatus,
        serial: int,
        this_update: datetime.datetime,
        next_update: datetime.datetime,
        revocation_time: datetime.datetime | None = None,
        revocation_reason: ReasonCode | None = None,
    ) -> OcspResponse:
        return OcspResponse.build(
            responder_keys=self._keys,
            cert_status=status,
            issuer_key_hash=self.issuer_key_hash,
            serial_number=serial,
            this_update=this_update,
            next_update=next_update,
            revocation_time=revocation_time,
            revocation_reason=revocation_reason,
        )
