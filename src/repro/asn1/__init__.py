"""Minimal ASN.1 DER encoder/decoder.

X.509 certificates and CRLs are DER-encoded ASN.1 structures.  The paper's
CA-side measurements (Figures 5-6, Table 1) are about the *byte sizes* of
CRLs, so this reproduction encodes its certificates and CRLs with a real DER
encoder rather than modelling sizes analytically.  Only the subset of DER
needed by RFC 5280 structures is implemented.

Public API::

    from repro.asn1 import der, oid
    der.encode_sequence(...)
    obj, rest = der.decode(data)
"""

from repro.asn1 import der, oid
from repro.asn1.der import (
    Asn1Error,
    DecodedValue,
    Tag,
    decode,
    decode_all,
    encode_bit_string,
    encode_boolean,
    encode_context,
    encode_generalized_time,
    encode_integer,
    encode_null,
    encode_octet_string,
    encode_oid,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_utc_time,
    encode_utf8_string,
)
from repro.asn1.oid import OID, OIDRegistry

__all__ = [
    "Asn1Error",
    "DecodedValue",
    "OID",
    "OIDRegistry",
    "Tag",
    "decode",
    "decode_all",
    "der",
    "encode_bit_string",
    "encode_boolean",
    "encode_context",
    "encode_generalized_time",
    "encode_integer",
    "encode_null",
    "encode_octet_string",
    "encode_oid",
    "encode_printable_string",
    "encode_sequence",
    "encode_set",
    "encode_utc_time",
    "encode_utf8_string",
    "oid",
]
