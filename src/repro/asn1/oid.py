"""Object identifier registry for the OIDs used by RFC 5280 and this study.

The registry maps between dotted-decimal strings and human-readable names,
covering signature algorithms, X.509 extensions, distinguished-name
attributes, and the EV policy identifiers the paper's browser test suite
relies on (Verisign's ``2.16.840.1.113733.1.7.23.6`` EV OID, §6.1).
"""

from __future__ import annotations

__all__ = ["OID", "OIDRegistry", "REGISTRY"]


class OID:
    """Well-known OIDs as dotted-decimal constants."""

    # Distinguished-name attributes.
    COMMON_NAME = "2.5.4.3"
    COUNTRY = "2.5.4.6"
    ORGANIZATION = "2.5.4.10"
    ORGANIZATIONAL_UNIT = "2.5.4.11"

    # Signature algorithms (we reuse identifiers; the actual backend may be
    # the hash simulator -- see repro.pki.keys).
    SHA256_WITH_RSA = "1.2.840.113549.1.1.11"
    ED25519 = "1.3.101.112"

    # Certificate extensions.
    BASIC_CONSTRAINTS = "2.5.29.19"
    KEY_USAGE = "2.5.29.15"
    CRL_DISTRIBUTION_POINTS = "2.5.29.31"
    CERTIFICATE_POLICIES = "2.5.29.32"
    AUTHORITY_KEY_IDENTIFIER = "2.5.29.35"
    SUBJECT_KEY_IDENTIFIER = "2.5.29.14"
    CRL_NUMBER = "2.5.29.20"
    CRL_REASON = "2.5.29.21"
    AUTHORITY_INFO_ACCESS = "1.3.6.1.5.5.7.1.1"

    # AIA access methods.
    AD_OCSP = "1.3.6.1.5.5.7.48.1"
    AD_CA_ISSUERS = "1.3.6.1.5.5.7.48.2"

    # OCSP.
    OCSP_BASIC = "1.3.6.1.5.5.7.48.1.1"
    OCSP_NONCE = "1.3.6.1.5.5.7.48.1.2"

    # EV policy OIDs.  The paper uses Verisign's EV OID in its test suite.
    EV_VERISIGN = "2.16.840.1.113733.1.7.23.6"
    EV_GODADDY = "2.16.840.1.114413.1.7.23.3"
    EV_COMODO = "1.3.6.1.4.1.6449.1.2.1.5.1"
    EV_GLOBALSIGN = "1.3.6.1.4.1.4146.1.1"
    EV_THAWTE = "2.16.840.1.113733.1.7.48.1"
    # CA/Browser Forum generic EV policy identifier.
    EV_CABFORUM = "2.23.140.1.1"
    # Generic DV policy identifier.
    DV_CABFORUM = "2.23.140.1.2.1"

    EV_POLICY_OIDS = frozenset(
        {
            EV_VERISIGN,
            EV_GODADDY,
            EV_COMODO,
            EV_GLOBALSIGN,
            EV_THAWTE,
            EV_CABFORUM,
        }
    )


_NAMES = {
    OID.COMMON_NAME: "commonName",
    OID.COUNTRY: "countryName",
    OID.ORGANIZATION: "organizationName",
    OID.ORGANIZATIONAL_UNIT: "organizationalUnitName",
    OID.SHA256_WITH_RSA: "sha256WithRSAEncryption",
    OID.ED25519: "ed25519",
    OID.BASIC_CONSTRAINTS: "basicConstraints",
    OID.KEY_USAGE: "keyUsage",
    OID.CRL_DISTRIBUTION_POINTS: "cRLDistributionPoints",
    OID.CERTIFICATE_POLICIES: "certificatePolicies",
    OID.AUTHORITY_KEY_IDENTIFIER: "authorityKeyIdentifier",
    OID.SUBJECT_KEY_IDENTIFIER: "subjectKeyIdentifier",
    OID.CRL_NUMBER: "cRLNumber",
    OID.CRL_REASON: "cRLReason",
    OID.AUTHORITY_INFO_ACCESS: "authorityInfoAccess",
    OID.AD_OCSP: "OCSP",
    OID.AD_CA_ISSUERS: "caIssuers",
    OID.OCSP_BASIC: "id-pkix-ocsp-basic",
    OID.OCSP_NONCE: "id-pkix-ocsp-nonce",
    OID.EV_VERISIGN: "verisignEV",
    OID.EV_GODADDY: "goDaddyEV",
    OID.EV_COMODO: "comodoEV",
    OID.EV_GLOBALSIGN: "globalSignEV",
    OID.EV_THAWTE: "thawteEV",
    OID.EV_CABFORUM: "cabForumEV",
    OID.DV_CABFORUM: "cabForumDV",
}


class OIDRegistry:
    """Bidirectional OID <-> name lookup."""

    def __init__(self, names: dict[str, str] | None = None) -> None:
        self._by_oid = dict(_NAMES if names is None else names)
        self._by_name = {name: oid for oid, name in self._by_oid.items()}

    def name(self, dotted: str) -> str:
        """Human-readable name, or the dotted string itself if unknown."""
        return self._by_oid.get(dotted, dotted)

    def oid(self, name: str) -> str:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown OID name {name!r}") from None

    def register(self, dotted: str, name: str) -> None:
        self._by_oid[dotted] = name
        self._by_name[name] = dotted

    def __contains__(self, dotted: str) -> bool:
        return dotted in self._by_oid


REGISTRY = OIDRegistry()
