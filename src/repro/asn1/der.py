"""DER (Distinguished Encoding Rules) primitives.

Implements the subset of ITU-T X.690 needed to encode and decode RFC 5280
certificates, CRLs, and OCSP messages: definite-length encoding of
INTEGER, BOOLEAN, NULL, OBJECT IDENTIFIER, BIT STRING, OCTET STRING,
PrintableString, UTF8String, UTCTime, GeneralizedTime, SEQUENCE, SET, and
context-specific tags.

The encoder works on ``bytes``; composite encoders take pre-encoded
children.  The decoder produces :class:`DecodedValue` trees.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

__all__ = [
    "Asn1Error",
    "DecodedValue",
    "SequenceAssembler",
    "Tag",
    "decode",
    "decode_all",
    "encode_bit_string",
    "encode_boolean",
    "encode_context",
    "encode_generalized_time",
    "encode_integer",
    "encode_length",
    "encode_null",
    "encode_octet_string",
    "encode_oid",
    "encode_printable_string",
    "encode_sequence",
    "encode_sequence_many",
    "encode_set",
    "encode_tlv",
    "encode_utc_time",
    "encode_utf8_string",
]


class Asn1Error(ValueError):
    """Raised on malformed DER input or unencodable values."""


class Tag:
    """Universal tag numbers and class/constructed masks used by RFC 5280."""

    BOOLEAN = 0x01
    INTEGER = 0x02
    BIT_STRING = 0x03
    OCTET_STRING = 0x04
    NULL = 0x05
    OID = 0x06
    ENUMERATED = 0x0A
    UTF8_STRING = 0x0C
    PRINTABLE_STRING = 0x13
    IA5_STRING = 0x16
    UTC_TIME = 0x17
    GENERALIZED_TIME = 0x18
    SEQUENCE = 0x30  # constructed bit already set
    SET = 0x31  # constructed bit already set

    CONSTRUCTED = 0x20
    CONTEXT = 0x80


def encode_length(length: int) -> bytes:
    """Encode a definite length per X.690 section 8.1.3."""
    if length < 0:
        raise Asn1Error(f"negative length: {length}")
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def encode_tlv(tag: int, value: bytes) -> bytes:
    """Encode a tag-length-value triple."""
    if not 0 <= tag <= 0xFF:
        raise Asn1Error(f"tag out of range: {tag}")
    return bytes([tag]) + encode_length(len(value)) + value


#: Complete TLV encodings for the small non-negative INTEGERs that dominate
#: CRL bodies (version numbers, CRL numbers, short serials).
_SMALL_INTEGERS = tuple(
    bytes([Tag.INTEGER, 1, value]) for value in range(0x80)
)


def encode_integer(value: int, tag: int = Tag.INTEGER) -> bytes:
    """Encode a (possibly large) two's-complement INTEGER."""
    if tag == Tag.INTEGER and 0 <= value < 0x80:
        return _SMALL_INTEGERS[value]
    if value == 0:
        return encode_tlv(tag, b"\x00")
    nbytes = (value.bit_length() + 8) // 8  # +8 guarantees a sign bit
    body = value.to_bytes(nbytes, "big", signed=True)
    # Strip redundant leading bytes while preserving the sign bit.
    while len(body) > 1 and (
        (body[0] == 0x00 and body[1] < 0x80) or (body[0] == 0xFF and body[1] >= 0x80)
    ):
        body = body[1:]
    return encode_tlv(tag, body)


def encode_boolean(value: bool) -> bytes:
    return encode_tlv(Tag.BOOLEAN, b"\xff" if value else b"\x00")


def encode_null() -> bytes:
    return encode_tlv(Tag.NULL, b"")


def encode_oid(dotted: str) -> bytes:
    """Encode a dotted-decimal OBJECT IDENTIFIER string."""
    try:
        arcs = [int(part) for part in dotted.split(".")]
    except ValueError as exc:
        raise Asn1Error(f"invalid OID {dotted!r}") from exc
    if len(arcs) < 2 or arcs[0] > 2 or (arcs[0] < 2 and arcs[1] > 39):
        raise Asn1Error(f"invalid OID {dotted!r}")
    body = bytearray([arcs[0] * 40 + arcs[1]])
    for arc in arcs[2:]:
        if arc < 0:
            raise Asn1Error(f"negative arc in OID {dotted!r}")
        chunk = bytearray([arc & 0x7F])
        arc >>= 7
        while arc:
            chunk.append(0x80 | (arc & 0x7F))
            arc >>= 7
        body.extend(reversed(chunk))
    return encode_tlv(Tag.OID, bytes(body))


def encode_octet_string(value: bytes) -> bytes:
    return encode_tlv(Tag.OCTET_STRING, value)


def encode_bit_string(value: bytes, unused_bits: int = 0) -> bytes:
    if not 0 <= unused_bits <= 7:
        raise Asn1Error(f"unused_bits out of range: {unused_bits}")
    return encode_tlv(Tag.BIT_STRING, bytes([unused_bits]) + value)


def encode_printable_string(value: str) -> bytes:
    return encode_tlv(Tag.PRINTABLE_STRING, value.encode("ascii"))


def encode_utf8_string(value: str) -> bytes:
    return encode_tlv(Tag.UTF8_STRING, value.encode("utf-8"))


def encode_ia5_string(value: str) -> bytes:
    return encode_tlv(Tag.IA5_STRING, value.encode("ascii"))


#: UTCTime content is always 13 octets, so the TLV header is a constant.
_UTC_TIME_HEADER = bytes([Tag.UTC_TIME, 13])
#: GeneralizedTime content (as emitted here) is always 15 octets.
_GENERALIZED_TIME_HEADER = bytes([Tag.GENERALIZED_TIME, 15])


def encode_utc_time(when: datetime.datetime) -> bytes:
    """Encode a UTCTime (two-digit year; valid for 1950-2049)."""
    if not 1950 <= when.year <= 2049:
        raise Asn1Error(f"UTCTime cannot represent year {when.year}")
    text = (
        f"{when.year % 100:02d}{when.month:02d}{when.day:02d}"
        f"{when.hour:02d}{when.minute:02d}{when.second:02d}Z"
    )
    return _UTC_TIME_HEADER + text.encode("ascii")


def encode_generalized_time(when: datetime.datetime) -> bytes:
    """Encode a GeneralizedTime (four-digit year)."""
    text = (
        f"{when.year:04d}{when.month:02d}{when.day:02d}"
        f"{when.hour:02d}{when.minute:02d}{when.second:02d}Z"
    )
    return _GENERALIZED_TIME_HEADER + text.encode("ascii")


def encode_sequence(*children: bytes) -> bytes:
    return encode_tlv(Tag.SEQUENCE, b"".join(children))


def encode_sequence_many(children) -> bytes:
    """Encode a SEQUENCE from an iterable of pre-encoded children.

    Bulk path for large bodies (CRL entry lists): children are gathered
    into a single :class:`bytearray` and the TLV header is prepended once,
    avoiding the per-call tuple packing and intermediate joins of
    :func:`encode_sequence`.  Byte-identical to
    ``encode_sequence(*children)``.
    """
    body = bytearray()
    for child in children:
        body += child
    out = bytearray([Tag.SEQUENCE])
    out += encode_length(len(body))
    out += body
    return bytes(out)


class SequenceAssembler:
    """Incrementally assemble one SEQUENCE body on a single bytearray.

    Use for hot loops that build large constructed values: ``append()``
    pre-encoded children, then ``finish()`` to get the TLV.  The running
    ``content_length`` is exposed so callers can track encoded sizes
    without materialising the value.
    """

    __slots__ = ("_body",)

    def __init__(self) -> None:
        self._body = bytearray()

    def append(self, child: bytes) -> None:
        self._body += child

    @property
    def content_length(self) -> int:
        return len(self._body)

    def finish(self, tag: int = Tag.SEQUENCE) -> bytes:
        out = bytearray([tag])
        out += encode_length(len(self._body))
        out += self._body
        return bytes(out)


def encode_set(*children: bytes) -> bytes:
    """Encode a SET OF; DER requires children sorted by encoding."""
    return encode_tlv(Tag.SET, b"".join(sorted(children)))


def encode_context(number: int, value: bytes, constructed: bool = True) -> bytes:
    """Encode a context-specific tag [number]."""
    if not 0 <= number <= 30:
        raise Asn1Error(f"context tag out of range: {number}")
    tag = Tag.CONTEXT | number
    if constructed:
        tag |= Tag.CONSTRUCTED
    return encode_tlv(tag, value)


@dataclass
class DecodedValue:
    """A decoded TLV node.

    ``children`` is populated for constructed encodings; ``value`` holds the
    raw content octets either way.
    """

    tag: int
    value: bytes
    children: list["DecodedValue"] = field(default_factory=list)

    @property
    def is_constructed(self) -> bool:
        return bool(self.tag & Tag.CONSTRUCTED)

    @property
    def context_number(self) -> int | None:
        """The [n] of a context-specific tag, else ``None``."""
        if self.tag & 0xC0 == Tag.CONTEXT:
            return self.tag & 0x1F
        return None

    def as_integer(self) -> int:
        if self.tag not in (Tag.INTEGER, Tag.ENUMERATED):
            raise Asn1Error(f"tag 0x{self.tag:02x} is not INTEGER")
        if not self.value:
            raise Asn1Error("empty INTEGER")
        return int.from_bytes(self.value, "big", signed=True)

    def as_boolean(self) -> bool:
        if self.tag != Tag.BOOLEAN or len(self.value) != 1:
            raise Asn1Error("not a BOOLEAN")
        return self.value != b"\x00"

    def as_oid(self) -> str:
        if self.tag != Tag.OID or not self.value:
            raise Asn1Error("not an OID")
        arcs = [self.value[0] // 40, self.value[0] % 40]
        # First octet packs the first two arcs; values >= 80 mean arc0 == 2.
        if arcs[0] > 2:
            arcs = [2, self.value[0] - 80]
        current = 0
        for byte in self.value[1:]:
            current = (current << 7) | (byte & 0x7F)
            if not byte & 0x80:
                arcs.append(current)
                current = 0
        if current:
            raise Asn1Error("truncated OID arc")
        return ".".join(str(a) for a in arcs)

    def as_string(self) -> str:
        if self.tag == Tag.UTF8_STRING:
            return self.value.decode("utf-8")
        if self.tag in (Tag.PRINTABLE_STRING, Tag.IA5_STRING):
            return self.value.decode("ascii")
        raise Asn1Error(f"tag 0x{self.tag:02x} is not a string type")

    def as_datetime(self) -> datetime.datetime:
        text = self.value.decode("ascii")
        if self.tag == Tag.UTC_TIME:
            # RFC 5280 4.1.2.5.1: two-digit years 00-49 are 20xx and
            # 50-99 are 19xx (Python's %y pivots at 69 instead).
            two_digit = int(text[:2])
            century = 2000 if two_digit < 50 else 1900
            parsed = datetime.datetime.strptime(
                f"{century + two_digit:04d}{text[2:]}", "%Y%m%d%H%M%SZ"
            )
        elif self.tag == Tag.GENERALIZED_TIME:
            parsed = datetime.datetime.strptime(text, "%Y%m%d%H%M%SZ")
        else:
            raise Asn1Error(f"tag 0x{self.tag:02x} is not a time type")
        return parsed.replace(tzinfo=datetime.timezone.utc)

    def as_bit_string(self) -> bytes:
        if self.tag != Tag.BIT_STRING or not self.value:
            raise Asn1Error("not a BIT STRING")
        return self.value[1:]


def _decode_length(data: bytes, offset: int) -> tuple[int, int]:
    """Return (length, offset after the length octets)."""
    if offset >= len(data):
        raise Asn1Error("truncated length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    nbytes = first & 0x7F
    if nbytes == 0:
        raise Asn1Error("indefinite length is not DER")
    if offset + nbytes > len(data):
        raise Asn1Error("truncated long-form length")
    length = int.from_bytes(data[offset : offset + nbytes], "big")
    if nbytes > 1 and length < 0x80:
        raise Asn1Error("non-minimal length encoding")
    return length, offset + nbytes


def decode(data: bytes, offset: int = 0) -> tuple[DecodedValue, int]:
    """Decode one TLV starting at ``offset``; return (node, next offset)."""
    if offset >= len(data):
        raise Asn1Error("truncated tag")
    tag = data[offset]
    if tag & 0x1F == 0x1F:
        raise Asn1Error("multi-byte tags are not supported")
    length, body_start = _decode_length(data, offset + 1)
    body_end = body_start + length
    if body_end > len(data):
        raise Asn1Error("truncated value")
    body = data[body_start:body_end]
    node = DecodedValue(tag=tag, value=body)
    if tag & Tag.CONSTRUCTED:
        inner = 0
        while inner < len(body):
            child, inner = decode(body, inner)
            node.children.append(child)
    return node, body_end


def decode_all(data: bytes) -> DecodedValue:
    """Decode exactly one TLV spanning all of ``data``."""
    node, end = decode(data)
    if end != len(data):
        raise Asn1Error(f"{len(data) - end} trailing bytes after DER value")
    return node
