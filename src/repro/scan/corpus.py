"""Columnar corpus codec.

One schema serves two transports: worker processes ship generated brand
slices back to the parent as numpy arrays (pickling a scale-0.02 corpus
as record objects costs ~48 MB and ~20 s; the same corpus as columns is
a few MB and milliseconds), and :mod:`repro.scan.corpus_store` persists
the merged corpus into the on-disk SQLite artifact store.

Only *generated randomness* is encoded: leaf lifecycles, observed +
synthetic CRL entries, per-CRL assigned counts and hidden-population
targets, and Alexa ranks.  Everything else -- roots, intermediates, CRL
shards, URL tables -- is deterministic scaffold, rebuilt from the
calibration in milliseconds at decode time (see
:func:`repro.scan.shardgen.build_brand_scaffold`).

Leaf columns are aligned with cert_id order and sliced per brand via
:class:`~repro.scan.shardgen.BrandLayout`; entry columns are grouped by
CRL in global CRL order with per-CRL counts in ``crl_entry_count``.
Dates are stored as int32 proleptic ordinals (0 = None), serials as
21-byte big-endian blobs (fits 160-bit random serials), reason codes as
int8 (-1 = None).
"""

from __future__ import annotations

import datetime
import hashlib

import numpy as np

from repro.revocation.reason import ReasonCode
from repro.scan.crl_model import CrlEntryRecord, EcosystemCrl
from repro.scan.hidden import HiddenPopulation
from repro.scan.records import LeafRecord

__all__ = [
    "CORPUS_FORMAT",
    "brand_digests",
    "concat_parts",
    "corpus_digest",
    "decode_brand_leaves",
    "decode_crl_population",
    "encode_brand_parts",
    "encode_corpus",
    "slice_brand",
]

#: bump when the array schema changes; the store treats a mismatch as a miss.
CORPUS_FORMAT = 1

_SERIAL_BYTES = 21

_LEAF_COLUMNS = (
    "leaf_not_before",
    "leaf_not_after",
    "leaf_birth",
    "leaf_death",
    "leaf_revoked",
    "leaf_reason",
    "leaf_is_ev",
    "leaf_server_count",
    "leaf_stapling",
    "leaf_alexa",
    "leaf_serial",
    "leaf_intermediate",
    "leaf_crl",
    "leaf_has_ocsp",
)
_ENTRY_COLUMNS = (
    "entry_serial",
    "entry_revoked",
    "entry_reason",
    "entry_expiry",
    "entry_cert",
)
_CRL_COLUMNS = ("crl_entry_count", "crl_assigned", "crl_hidden")
ALL_COLUMNS = _LEAF_COLUMNS + _ENTRY_COLUMNS + _CRL_COLUMNS


def _ordinal(day: datetime.date | None) -> int:
    return 0 if day is None else day.toordinal()


def _serial_blob(serials: list[int]) -> np.ndarray:
    buffer = b"".join(s.to_bytes(_SERIAL_BYTES, "big") for s in serials)
    return np.frombuffer(buffer, dtype=np.uint8).reshape(-1, _SERIAL_BYTES)


class _DateInterner:
    """Ordinal -> date with shared objects: a corpus spans ~2 k distinct
    days, so interning cuts decoded-corpus memory by an order of
    magnitude at large scales."""

    def __init__(self) -> None:
        self._cache: dict[int, datetime.date] = {}

    def __call__(self, ordinal: int) -> datetime.date:
        day = self._cache.get(ordinal)
        if day is None:
            day = datetime.date.fromordinal(ordinal)
            self._cache[ordinal] = day
        return day


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------


def _encode_leaves(
    leaves: list[LeafRecord], crl_index_of_url: dict[str, int]
) -> dict[str, np.ndarray]:
    n = len(leaves)
    not_before = np.empty(n, np.int32)
    not_after = np.empty(n, np.int32)
    birth = np.empty(n, np.int32)
    death = np.empty(n, np.int32)
    revoked = np.empty(n, np.int32)
    reason = np.empty(n, np.int8)
    is_ev = np.empty(n, np.uint8)
    server_count = np.empty(n, np.int32)
    stapling = np.empty(n, np.int32)
    alexa = np.empty(n, np.int32)
    intermediate = np.empty(n, np.int32)
    crl_ref = np.empty(n, np.int32)
    has_ocsp = np.empty(n, np.uint8)
    serials: list[int] = []
    for i, leaf in enumerate(leaves):
        not_before[i] = leaf.not_before.toordinal()
        not_after[i] = leaf.not_after.toordinal()
        birth[i] = leaf.birth.toordinal()
        death[i] = leaf.death.toordinal()
        revoked[i] = _ordinal(leaf.revoked_at)
        reason[i] = -1 if leaf.revocation_reason is None else int(
            leaf.revocation_reason
        )
        is_ev[i] = leaf.is_ev
        server_count[i] = leaf.server_count
        stapling[i] = leaf.stapling_servers
        alexa[i] = leaf.alexa_rank or 0
        intermediate[i] = leaf.intermediate_id
        crl_ref[i] = (
            -1 if leaf.crl_url is None else crl_index_of_url[leaf.crl_url]
        )
        has_ocsp[i] = leaf.ocsp_url is not None
        serials.append(leaf.serial_number)
    return {
        "leaf_not_before": not_before,
        "leaf_not_after": not_after,
        "leaf_birth": birth,
        "leaf_death": death,
        "leaf_revoked": revoked,
        "leaf_reason": reason,
        "leaf_is_ev": is_ev,
        "leaf_server_count": server_count,
        "leaf_stapling": stapling,
        "leaf_alexa": alexa,
        "leaf_serial": _serial_blob(serials),
        "leaf_intermediate": intermediate,
        "leaf_crl": crl_ref,
        "leaf_has_ocsp": has_ocsp,
    }


def _encode_crls(crls: list[EcosystemCrl]) -> dict[str, np.ndarray]:
    entry_count = np.empty(len(crls), np.int32)
    assigned = np.empty(len(crls), np.int32)
    hidden = np.empty(len(crls), np.int64)
    serials: list[int] = []
    revoked: list[int] = []
    reason: list[int] = []
    expiry: list[int] = []
    cert: list[int] = []
    for i, crl in enumerate(crls):
        entry_count[i] = len(crl.entries)
        assigned[i] = crl.assigned_cert_count
        hidden[i] = -1 if crl.hidden is None else crl.hidden.target_end
        for entry in crl.entries:
            serials.append(entry.serial_number)
            revoked.append(entry.revoked_at.toordinal())
            reason.append(-1 if entry.reason is None else int(entry.reason))
            expiry.append(entry.cert_not_after.toordinal())
            cert.append(-1 if entry.cert_id is None else entry.cert_id)
    return {
        "entry_serial": _serial_blob(serials),
        "entry_revoked": np.asarray(revoked, np.int32),
        "entry_reason": np.asarray(reason, np.int8),
        "entry_expiry": np.asarray(expiry, np.int32),
        "entry_cert": np.asarray(cert, np.int32),
        "crl_entry_count": entry_count,
        "crl_assigned": assigned,
        "crl_hidden": hidden,
    }


def encode_brand_parts(state, leaves: list[LeafRecord]) -> dict[str, np.ndarray]:
    """One brand's generated randomness as columns (worker -> parent).

    ``leaf_crl`` holds *global* CRL indexes (``layout.crl_base`` +
    local), so brand parts concatenate directly into the full corpus.
    """
    crl_index_of_url = {
        crl.url: state.layout.crl_base + i for i, crl in enumerate(state.crls)
    }
    arrays = _encode_leaves(leaves, crl_index_of_url)
    arrays.update(_encode_crls(state.crls))
    return arrays


def concat_parts(parts: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Concatenate per-brand parts (already in profile order) into the
    full corpus column set."""
    return {
        name: np.concatenate([part[name] for part in parts])
        for name in ALL_COLUMNS
    }


def encode_corpus(ecosystem) -> tuple[dict[str, np.ndarray], dict]:
    """The full corpus as (columns, meta) for the artifact store.

    ``meta`` carries the whole-corpus content digest *and* the per-brand
    layout + digests, so :func:`repro.scan.corpus_store.verify_store`
    can localise corruption to a brand slice without the calibration.
    """
    crl_index_of_url = {crl.url: i for i, crl in enumerate(ecosystem.crls)}
    arrays = _encode_leaves(ecosystem.leaves, crl_index_of_url)
    arrays.update(_encode_crls(ecosystem.crls))
    calibration = ecosystem.calibration
    layouts = [
        [
            profile.name,
            layout.cert_base,
            layout.cert_count,
            layout.crl_base,
            layout.crl_count,
        ]
        for profile, layout in zip(ecosystem.profiles, ecosystem._layouts)
    ]
    meta = {
        "format": CORPUS_FORMAT,
        "seed": calibration.seed,
        "scale": repr(calibration.scale),
        "leaf_count": len(ecosystem.leaves),
        "crl_count": len(ecosystem.crls),
        "entry_count": int(arrays["crl_entry_count"].sum()),
        "corpus_digest": corpus_digest(arrays),
        "brand_layouts": layouts,
        "brand_digests": brand_digests(arrays, layouts),
    }
    return arrays, meta


def corpus_digest(
    arrays: dict[str, np.ndarray], columns: tuple[str, ...] = ALL_COLUMNS
) -> str:
    """Content digest over ``columns``; byte-identity across shard
    counts and transports is asserted against this."""
    hasher = hashlib.sha256()
    for name in columns:
        array = np.ascontiguousarray(arrays[name])
        hasher.update(name.encode())
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()[:20]


#: columns a brand's generation substream fully determines.  leaf_alexa
#: is excluded: Alexa ranks are a merge-time global stage
#: (:func:`repro.scan.shardgen.assign_alexa_ranks`), so worker-built
#: parts carry zeros there; the whole-corpus digest still covers it.
_BRAND_COLUMNS = tuple(c for c in ALL_COLUMNS if c != "leaf_alexa")


def slice_brand(
    arrays: dict[str, np.ndarray], layout_row: list | tuple
) -> dict[str, np.ndarray]:
    """One brand's substream columns out of the full corpus.

    ``layout_row`` is a ``brand_layouts`` meta row
    (``[name, cert_base, cert_count, crl_base, crl_count]``).  Because
    ``leaf_crl`` stores *global* CRL indexes even inside per-brand parts,
    a brand's slice of the merged corpus is byte-identical to the parts
    its generation worker produced (:data:`_BRAND_COLUMNS` only) -- so
    one digest covers both the shard checkpoint and the store slice.
    """
    _, cert_base, cert_count, crl_base, crl_count = layout_row
    counts = arrays["crl_entry_count"]
    entry_base = int(counts[:crl_base].sum())
    entry_count = int(counts[crl_base : crl_base + crl_count].sum())
    sliced = {}
    for name in _BRAND_COLUMNS:
        if name in _LEAF_COLUMNS:
            base, count = cert_base, cert_count
        elif name in _ENTRY_COLUMNS:
            base, count = entry_base, entry_count
        else:
            base, count = crl_base, crl_count
        sliced[name] = arrays[name][base : base + count]
    return sliced


def brand_digests(
    arrays: dict[str, np.ndarray], layouts: list
) -> dict[str, str]:
    """Per-brand content digests over the corpus columns (see
    :func:`slice_brand` for why these match shard-checkpoint digests)."""
    return {
        row[0]: corpus_digest(slice_brand(arrays, row), _BRAND_COLUMNS)
        for row in layouts
    }


# ---------------------------------------------------------------------------
# decode
# ---------------------------------------------------------------------------


def decode_brand_leaves(
    arrays: dict[str, np.ndarray],
    state,
    crls: list[EcosystemCrl],
    offset: int = 0,
) -> list[LeafRecord]:
    """Rebuild one brand's leaf records from columns.

    ``arrays`` may be the full corpus (pass the brand's ``offset`` =
    ``layout.cert_base``) or a single brand's parts (offset 0); ``crls``
    is always the *global* CRL list the ``leaf_crl`` indexes point into.
    """
    layout = state.layout
    intern = _DateInterner()
    not_before = arrays["leaf_not_before"]
    not_after = arrays["leaf_not_after"]
    birth = arrays["leaf_birth"]
    death = arrays["leaf_death"]
    revoked = arrays["leaf_revoked"]
    reason = arrays["leaf_reason"]
    is_ev = arrays["leaf_is_ev"]
    server_count = arrays["leaf_server_count"]
    stapling = arrays["leaf_stapling"]
    alexa = arrays["leaf_alexa"]
    serial = arrays["leaf_serial"]
    intermediate = arrays["leaf_intermediate"]
    crl_ref = arrays["leaf_crl"]
    has_ocsp = arrays["leaf_has_ocsp"]

    leaves: list[LeafRecord] = []
    name = state.profile.name
    for i in range(layout.cert_count):
        row = offset + i
        revoked_ordinal = int(revoked[row])
        reason_value = int(reason[row])
        crl_index = int(crl_ref[row])
        intermediate_id = int(intermediate[row])
        rank = int(alexa[row])
        leaves.append(
            LeafRecord(
                cert_id=layout.cert_base + i,
                brand=name,
                intermediate_id=intermediate_id,
                serial_number=int.from_bytes(serial[row].tobytes(), "big"),
                not_before=intern(int(not_before[row])),
                not_after=intern(int(not_after[row])),
                birth=intern(int(birth[row])),
                death=intern(int(death[row])),
                is_ev=bool(is_ev[row]),
                crl_url=None if crl_index < 0 else crls[crl_index].url,
                ocsp_url=(
                    state.ocsp_urls[intermediate_id - layout.intermediate_base]
                    if has_ocsp[row]
                    else None
                ),
                revoked_at=None if revoked_ordinal == 0 else intern(revoked_ordinal),
                revocation_reason=(
                    None if reason_value < 0 else ReasonCode(reason_value)
                ),
                server_count=int(server_count[row]),
                stapling_servers=int(stapling[row]),
                alexa_rank=rank or None,
            )
        )
        state.leaf_ids.append(layout.cert_base + i)
    return leaves


def decode_crl_population(
    arrays: dict[str, np.ndarray],
    crls: list[EcosystemCrl],
    calibration,
    crl_offset: int = 0,
    entry_offset: int = 0,
) -> None:
    """Attach entries, assigned counts, and hidden populations to an
    already-scaffolded CRL list (in place).

    ``crls`` here is the slice being decoded (a brand's own CRLs for
    parts, the global list for the full corpus); offsets locate the
    slice inside ``arrays``.
    """
    from repro.scan.shardgen import _SYNTH_WINDOW_START

    intern = _DateInterner()
    entry_count = arrays["crl_entry_count"]
    assigned = arrays["crl_assigned"]
    hidden = arrays["crl_hidden"]
    serial = arrays["entry_serial"]
    revoked = arrays["entry_revoked"]
    reason = arrays["entry_reason"]
    expiry = arrays["entry_expiry"]
    cert = arrays["entry_cert"]

    cursor = entry_offset
    for i, crl in enumerate(crls):
        row = crl_offset + i
        count = int(entry_count[row])
        entries = []
        for j in range(cursor, cursor + count):
            reason_value = int(reason[j])
            cert_id = int(cert[j])
            entries.append(
                CrlEntryRecord(
                    serial_number=int.from_bytes(serial[j].tobytes(), "big"),
                    revoked_at=intern(int(revoked[j])),
                    reason=None if reason_value < 0 else ReasonCode(reason_value),
                    cert_not_after=intern(int(expiry[j])),
                    cert_id=None if cert_id < 0 else cert_id,
                )
            )
        cursor += count
        crl.entries = entries  # assignment invalidates the cached series
        crl.assigned_cert_count = int(assigned[row])
        target = int(hidden[row])
        if target >= 0:
            crl.hidden = HiddenPopulation(
                target_end=target,
                window_start=_SYNTH_WINDOW_START,
                window_end=calibration.measurement_end,
                heartbleed_date=calibration.heartbleed_date,
            )
