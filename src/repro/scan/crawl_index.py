"""Incremental CRL series engine.

The crawler, the CRLSet builder's daily sweep, and the dynamics analysis
all need per-day views of every CRL (entry count, additions, byte size)
over the ~180-day crawl window.  The naive way -- re-scanning every
entry's visibility window for every (CRL, day) pair -- is O(days x
entries) and dominated Figure 5/6/9 generation.

:class:`CrlSeries` precomputes, once per CRL, a sorted revocation-event
timeline with byte-size prefix sums, making ``entry_count(day)``,
``additions_on(day)``, and ``size_bytes(day)`` O(log n) bisections.
:class:`CrawlIndex` aggregates the per-CRL series across an ecosystem and
memoises the whole-corpus daily-additions sweep (one pass over all
entries instead of one pass per day).

Correctness rests on the corpus invariant ``revoked_at <=
cert_not_after`` (an entry is listed from revocation until certificate
expiry), which lets visible-set queries decompose into two prefix
lookups; the constructor asserts it.  Equality with the naive scans is
enforced by ``tests/scan/test_crawl_index.py``.
"""

from __future__ import annotations

import datetime
from bisect import bisect_left, bisect_right
from collections import Counter
from typing import TYPE_CHECKING, Iterable

from repro.revocation.sizing import (
    CrlSizeModel,
    representative_entry_size,
    revoked_entry_size,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.scan.crl_model import EcosystemCrl
    from repro.scan.ecosystem import Ecosystem

__all__ = ["CrawlIndex", "CrlSeries"]


class CrlSeries:
    """Precomputed revocation-event timeline for one CRL.

    Built once from the CRL's materialised entries and bulk
    :class:`~repro.scan.hidden.HiddenPopulation`; every per-day query is
    then a bisection over the sorted event arrays.
    """

    __slots__ = (
        "_additions",
        "_exp_cum_bytes",
        "_exp_days",
        "_hidden",
        "_hidden_entry_size",
        "_rev_cum_bytes",
        "_rev_days",
        "_size_model",
    )

    def __init__(self, crl: "EcosystemCrl") -> None:
        sized = []
        for entry in crl.entries:
            if entry.revoked_at > entry.cert_not_after:
                raise ValueError(
                    f"entry {entry.serial_number} on {crl.url} revoked after "
                    "certificate expiry; timeline decomposition needs "
                    "revoked_at <= cert_not_after"
                )
            sized.append(
                (
                    entry.revoked_at,
                    entry.cert_not_after,
                    revoked_entry_size(
                        entry.serial_number,
                        with_reason=entry.reason is not None,
                        generalized_time=entry.revoked_at.year > 2049,
                    ),
                )
            )

        # Entries sorted by revocation day, with byte prefix sums.
        by_revoked = sorted((rev, size) for rev, _exp, size in sized)
        self._rev_days = [rev for rev, _ in by_revoked]
        self._rev_cum_bytes = _prefix_sums(size for _, size in by_revoked)

        # Entries sorted by expiry day (when they drop off the CRL).
        by_expiry = sorted((exp, size) for _rev, exp, size in sized)
        self._exp_days = [exp for exp, _ in by_expiry]
        self._exp_cum_bytes = _prefix_sums(size for _, size in by_expiry)

        self._additions = Counter(self._rev_days)
        self._hidden = crl.hidden
        self._hidden_entry_size = representative_entry_size(crl.serial_bytes)
        self._size_model = CrlSizeModel(
            issuer=crl.issuer_name,
            signature_size=crl.signature_size,
            signature_algorithm_oid=crl.signature_algorithm_oid,
        )

    # -- per-day queries (all O(log n)) ------------------------------------

    def entry_count(self, day: datetime.date) -> int:
        """Entries listed on ``day`` (materialised + hidden bulk)."""
        count = self.materialized_count(day)
        if self._hidden is not None:
            count += self._hidden.count_at(day)
        return count

    def materialized_count(self, day: datetime.date) -> int:
        # revoked on or before `day`, minus expired strictly before `day`.
        return bisect_right(self._rev_days, day) - bisect_left(self._exp_days, day)

    def additions_on(self, day: datetime.date) -> int:
        count = self._additions.get(day, 0)
        if self._hidden is not None:
            count += self._hidden.additions_on(day)
        return count

    def materialized_bytes(self, day: datetime.date) -> int:
        """Total encoded size of the materialised entries visible on ``day``."""
        revoked = bisect_right(self._rev_days, day)
        expired = bisect_left(self._exp_days, day)
        return self._rev_cum_bytes[revoked] - self._exp_cum_bytes[expired]

    def size_bytes(self, day: datetime.date) -> int:
        """Exact DER size of the CRL as published on ``day``."""
        entry_bytes = self.materialized_bytes(day)
        if self._hidden is not None:
            entry_bytes += self._hidden.count_at(day) * self._hidden_entry_size
        return self._size_model.size(entry_bytes)

    # -- bulk access --------------------------------------------------------

    @property
    def addition_days(self) -> Counter:
        """day -> materialised additions (hidden bulk not included)."""
        return self._additions

    @property
    def hidden(self):
        return self._hidden


def _prefix_sums(values: Iterable[int]) -> list[int]:
    sums = [0]
    total = 0
    for value in values:
        total += value
        sums.append(total)
    return sums


class CrawlIndex:
    """Shared per-ecosystem cache of :class:`CrlSeries`.

    One instance is built per :class:`MeasurementStudy` and handed to the
    crawler, the CRLSet builder, and the dynamics analysis, so the event
    timelines are computed once instead of once per consumer.
    """

    def __init__(self, ecosystem: "Ecosystem") -> None:
        self.ecosystem = ecosystem
        self._daily_additions: dict[datetime.date, int] | None = None

    def series(self, crl: "EcosystemCrl") -> CrlSeries:
        return crl.series

    def daily_total_additions(self) -> dict[datetime.date, int]:
        """New CRL entries per crawl day, across every CRL (Figure 9).

        Single pass: materialised additions are aggregated from the
        per-CRL day counters; hidden-bulk schedules are summed per day.
        """
        if self._daily_additions is None:
            dates = self.ecosystem.calibration.crawl_dates
            totals: Counter = Counter()
            hidden_pops = []
            for crl in self.ecosystem.crls:
                totals.update(crl.series.addition_days)
                if crl.hidden is not None:
                    hidden_pops.append(crl.hidden)
            series = {}
            for day in dates:
                count = totals.get(day, 0)
                for hidden in hidden_pops:
                    count += hidden.additions_on(day)
                series[day] = count
            self._daily_additions = series
        return dict(self._daily_additions)

    def entry_counts_at(self, day: datetime.date) -> dict[str, int]:
        return {crl.url: crl.series.entry_count(day) for crl in self.ecosystem.crls}

    def sizes_at(self, day: datetime.date) -> dict[str, int]:
        return {crl.url: crl.series.size_bytes(day) for crl in self.ecosystem.crls}

    def total_entries(self, day: datetime.date) -> int:
        return sum(crl.series.entry_count(day) for crl in self.ecosystem.crls)
