"""Rapid7-style weekly IPv4 HTTPS scans over the synthetic ecosystem.

Each scan yields a :class:`ScanSnapshot`: the set of Leaf Set certificates
advertised on that date.  The paper used 74 such scans (Oct 2013 -
Mar 2015) to define certificate birth/death and the alive timeline (§3).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.obs import NULL_OBS, Observability
from repro.scan.calibration import Calibration
from repro.scan.ecosystem import Ecosystem

__all__ = ["Rapid7Scanner", "ScanSnapshot"]


@dataclass(frozen=True)
class ScanSnapshot:
    """Certificates observed advertised in one full-IPv4 scan."""

    date: datetime.date
    cert_ids: frozenset[int]

    def __len__(self) -> int:
        return len(self.cert_ids)

    def __contains__(self, cert_id: int) -> bool:
        return cert_id in self.cert_ids


class Rapid7Scanner:
    """Runs the weekly scan series against an ecosystem."""

    def __init__(
        self, ecosystem: Ecosystem, obs: Observability | None = None
    ) -> None:
        self.ecosystem = ecosystem
        self.calibration: Calibration = ecosystem.calibration
        self.obs = obs if obs is not None else NULL_OBS

    def scan(self, date: datetime.date) -> ScanSnapshot:
        # Vectorised via the ecosystem's LeafIndex: one mask comparison
        # over precomputed date ordinals instead of a per-leaf Python loop.
        alive = frozenset(self.ecosystem.alive_ids(date))
        if self.obs.enabled:
            self.obs.tracer.event(
                "scan.snapshot", date=date.isoformat(), alive=len(alive)
            )
            self.obs.metrics.counter("scan.certs_observed").inc(len(alive))
        return ScanSnapshot(date=date, cert_ids=alive)

    def run_all(self) -> list[ScanSnapshot]:
        with self.obs.tracer.span(
            "scan.series", scans=len(self.calibration.scan_dates)
        ):
            return [self.scan(date) for date in self.calibration.scan_dates]

    def birth_death_table(
        self, snapshots: list[ScanSnapshot]
    ) -> dict[int, tuple[datetime.date, datetime.date]]:
        """First/last scan date each certificate was seen -- how the paper
        derives lifetimes from scans (scan-granularity, not ground truth)."""
        seen: dict[int, tuple[datetime.date, datetime.date]] = {}
        for snapshot in snapshots:
            for cert_id in snapshot.cert_ids:
                if cert_id in seen:
                    first, _ = seen[cert_id]
                    seen[cert_id] = (first, snapshot.date)
                else:
                    seen[cert_id] = (snapshot.date, snapshot.date)
        return seen
