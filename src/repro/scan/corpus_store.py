"""On-disk corpus artifact store (SQLite, columnar).

One ``corpus-<calibration_digest>.sqlite`` file per calibration holds
the generated corpus as numpy column blobs plus a small key/value meta
table.  The write path is crash-safe (temp file + ``os.replace``, the
same discipline as the old pickle cache); readers open the file through
a read-only URI, so any number of ``run_all`` workers can share one
store without locking against each other.

Compared to pickling the ecosystem (the pre-sharding cache), the store
is ~20x smaller and ~50x faster to load: only generated randomness is
persisted (see :mod:`repro.scan.corpus`); the deterministic scaffold is
rebuilt from the calibration on load.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path

import numpy as np

__all__ = [
    "quarantine_store",
    "read_corpus",
    "read_meta",
    "verify_store",
    "write_corpus",
]

_SCHEMA = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE arrays (
    name  TEXT PRIMARY KEY,
    dtype TEXT NOT NULL,
    shape TEXT NOT NULL,
    data  BLOB NOT NULL
);
"""


def write_corpus(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    meta: dict,
    *,
    fault=None,
) -> Path:
    """Atomically write (or replace) the store file at ``path``.

    ``fault`` is a storage-fault hook from
    :meth:`repro.exec.faults.ExecFaultPlan.decide_write`: a callable
    applied to the final path *after* the rename, modelling corruption
    that survives the atomic-write discipline (torn sectors, bit rot).
    Callers that inject it must re-validate with :func:`verify_store`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        tmp.unlink(missing_ok=True)
        connection = sqlite3.connect(tmp)
        try:
            connection.executescript(_SCHEMA)
            connection.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [(key, json.dumps(value)) for key, value in meta.items()],
            )
            connection.executemany(
                "INSERT INTO arrays (name, dtype, shape, data) VALUES (?, ?, ?, ?)",
                [
                    (
                        name,
                        str(array.dtype),
                        json.dumps(list(array.shape)),
                        np.ascontiguousarray(array).tobytes(),
                    )
                    for name, array in arrays.items()
                ],
            )
            connection.commit()
        finally:
            connection.close()
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    if fault is not None:
        fault(path)
    return path


def _connect_readonly(path: Path) -> sqlite3.Connection:
    # mode=ro keeps concurrent run_all workers from ever taking a write
    # lock (and from "repairing" a file another process is replacing).
    return sqlite3.connect(f"file:{path}?mode=ro", uri=True)


def read_meta(path: str | Path) -> dict:
    """Just the meta table (corpus inspection without loading columns)."""
    connection = _connect_readonly(Path(path))
    try:
        rows = connection.execute("SELECT key, value FROM meta").fetchall()
    finally:
        connection.close()
    return {key: json.loads(value) for key, value in rows}


def read_corpus(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load (columns, meta); raises on any malformed or foreign file."""
    path = Path(path)
    connection = _connect_readonly(path)
    try:
        meta_rows = connection.execute("SELECT key, value FROM meta").fetchall()
        array_rows = connection.execute(
            "SELECT name, dtype, shape, data FROM arrays"
        ).fetchall()
    finally:
        connection.close()
    meta = {key: json.loads(value) for key, value in meta_rows}
    arrays = {
        name: np.frombuffer(data, dtype=np.dtype(dtype)).reshape(
            json.loads(shape)
        )
        for name, dtype, shape, data in array_rows
    }
    return arrays, meta


def verify_store(path: str | Path) -> list[str]:
    """Integrity-check a store file; returns problems (empty == sound).

    Self-contained -- no calibration needed: the meta table carries the
    whole-corpus content digest plus per-brand layouts and digests
    (:func:`repro.scan.corpus.encode_corpus`), so corruption is both
    *detected* (sqlite-level damage, truncation, any flipped byte in a
    column blob) and *localised* to the brand slice it landed in.
    Never raises on a damaged file; unreadable is just another finding.
    """
    from repro.scan import corpus

    path = Path(path)
    if not path.exists():
        return ["store file does not exist"]
    try:
        arrays, meta = read_corpus(path)
    except Exception as exc:
        return [f"unreadable store: {type(exc).__name__}: {exc}"]
    problems: list[str] = []
    if meta.get("format") != corpus.CORPUS_FORMAT:
        problems.append(f"unsupported corpus format {meta.get('format')!r}")
    missing = [name for name in corpus.ALL_COLUMNS if name not in arrays]
    if missing:
        problems.append(f"missing columns: {', '.join(missing)}")
        return problems
    try:
        digest = corpus.corpus_digest(arrays)
    except Exception as exc:
        return problems + [f"undigestable columns: {type(exc).__name__}: {exc}"]
    if digest != meta.get("corpus_digest"):
        problems.append(
            f"corpus digest mismatch: stored {meta.get('corpus_digest')!r}, "
            f"computed {digest!r}"
        )
    # Always cross-check the per-brand digests: a tampered digest in the
    # meta table leaves the whole-corpus digest intact but would still
    # read as a datastore miss, so ``corpus verify`` must flag it too.
    layouts = meta.get("brand_layouts") or []
    expected = meta.get("brand_digests") or {}
    for row in layouts:
        try:
            actual = corpus.brand_digests(arrays, [row])[row[0]]
        except Exception:
            problems.append(f"brand {row[0]}: slice unreadable")
            continue
        if actual != expected.get(row[0]):
            problems.append(f"brand {row[0]}: slice digest mismatch")
    return problems


def quarantine_store(path: str | Path) -> Path:
    """Move a corrupt store aside (``<name>.quarantined``) so the next
    build starts clean instead of tripping over the damaged file."""
    path = Path(path)
    target = path.with_name(path.name + ".quarantined")
    os.replace(path, target)
    return target
