"""Sharded, seed-stable ecosystem generation.

The generator's unit of work is one CA *brand*: every brand's scaffold
(intermediates + CRL shards), leaf population, revocation assignment,
and synthetic CRL population is a pure function of ``(calibration,
profile)`` drawing from its own :func:`~repro.scan.streams.substream`.
Leaf blocks of :data:`LEAF_BLOCK` certificates get their own substream
too, so a brand's leaves never depend on how many leaves precede them.

Because no stage reads a shared RNG, brands can be built in any order,
grouped into any number of shards, and farmed out to worker processes --
the merged corpus is byte-identical in every case (the shard-determinism
property tests in ``tests/scan/test_shardgen.py`` assert exactly this).
Only two steps are global and run at merge time: the Alexa rank shuffle
(one ``"alexa"`` substream over the merged Leaf Set) and the invalid-
certificate count (pure arithmetic).

Deterministic ID geometry (:class:`BrandLayout`) replaces the old
sequential allocators: ``cert_id`` ranges are the running sum of
``scaled_certs`` in profile order (so ``leaves[i].cert_id == i`` after
the merge), ``intermediate_id`` ranges the running sum of
``profile.intermediates``, sequential serials are ``1000 + index-within-
brand``, and synthetic CRL entries draw serials from a per-CRL band
above :data:`SYNTH_SERIAL_BASE` -- disjoint from every leaf serial.
"""

from __future__ import annotations

import bisect
import datetime
import math
from dataclasses import dataclass
from itertools import accumulate

from repro.ca.authority import CertificateAuthority
from repro.ca.profiles import PAPER_CA_PROFILES, CaProfile
from repro.revocation.reason import ReasonCode
from repro.revocation.sizing import representative_entry_size
from repro.scan.calibration import Calibration
from repro.scan.crl_model import CrlEntryRecord, EcosystemCrl
from repro.scan.hidden import HiddenPopulation
from repro.scan.records import IntermediateRecord, LeafRecord
from repro.scan.streams import substream

__all__ = [
    "BrandLayout",
    "BrandState",
    "LEAF_BLOCK",
    "MATERIALIZE_THRESHOLD",
    "SYNTH_SERIAL_BASE",
    "SYNTH_SERIAL_STRIDE",
    "assign_alexa_ranks",
    "build_brand",
    "build_brand_leaves",
    "build_brand_scaffold",
    "build_root_ca",
    "build_roots",
    "layout_brands",
    "plan_shards",
]

_UTC = datetime.timezone.utc

#: leaves per RNG block: each (brand, block) pair draws from its own
#: substream, so intra-brand generation order is partition-independent.
LEAF_BLOCK = 4096

#: materialise individual synthetic entries only below this expected
#: count (bigger CRLs are dropped by the CRLSet pipeline anyway, so they
#: only need bulk counts).
MATERIALIZE_THRESHOLD = 15_000

#: synthetic entries on sequential-serial brands take serials from a
#: per-CRL band: BASE + global_crl_index * STRIDE + counter.  Leaf
#: serials (1000 + index) never reach BASE, and a materialised CRL holds
#: far fewer than STRIDE entries, so the bands collide with nothing.
SYNTH_SERIAL_BASE = 10**12
SYNTH_SERIAL_STRIDE = 10**7


def _dt(day: datetime.date) -> datetime.datetime:
    return datetime.datetime(day.year, day.month, day.day, tzinfo=_UTC)


def _draw_mix(rng, mix):
    """Draw from a ((value, probability), ...) mixture."""
    roll = rng.random()
    cumulative = 0.0
    for value, probability in mix:
        cumulative += probability
        if roll < cumulative:
            return value
    return mix[-1][0]


def _draw_mix_triple(rng, mix):
    roll = rng.random()
    cumulative = 0.0
    for entry in mix:
        cumulative += entry[-1]
        if roll < cumulative:
            return entry
    return mix[-1]


# ---------------------------------------------------------------------------
# layout
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BrandLayout:
    """Deterministic ID geometry for one brand.

    All ranges are running sums in profile declaration order, so they
    depend only on the profile tuple and the scale -- never on which
    shard or process builds the brand.
    """

    name: str
    index: int
    cert_base: int
    cert_count: int
    intermediate_base: int
    crl_base: int
    crl_count: int


def layout_brands(
    calibration: Calibration, profiles: tuple[CaProfile, ...]
) -> tuple[BrandLayout, ...]:
    layouts = []
    cert_base = intermediate_base = crl_base = 0
    for index, profile in enumerate(profiles):
        cert_count = profile.scaled_certs(calibration.scale)
        crl_count = profile.scaled_crl_count(calibration.scale)
        layouts.append(
            BrandLayout(
                name=profile.name,
                index=index,
                cert_base=cert_base,
                cert_count=cert_count,
                intermediate_base=intermediate_base,
                crl_base=crl_base,
                crl_count=crl_count,
            )
        )
        cert_base += cert_count
        intermediate_base += profile.intermediates
        crl_base += crl_count
    return tuple(layouts)


def plan_shards(
    calibration: Calibration,
    profiles: tuple[CaProfile, ...],
    shards: int,
) -> tuple[tuple[str, ...], ...]:
    """Partition brands into ``shards`` groups, balanced by leaf count.

    Deterministic greedy bin-packing: brands in descending ``scaled_certs``
    (ties broken by name) onto the least-loaded shard (ties broken by
    shard index).  The partition never affects the corpus -- only which
    worker builds what.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, len(profiles))
    bins: list[list[str]] = [[] for _ in range(shards)]
    loads = [0] * shards
    order = sorted(
        profiles, key=lambda p: (-p.scaled_certs(calibration.scale), p.name)
    )
    for profile in order:
        target = min(range(shards), key=lambda i: (loads[i], i))
        bins[target].append(profile.name)
        loads[target] += profile.scaled_certs(calibration.scale)
    declaration = {profile.name: i for i, profile in enumerate(profiles)}
    return tuple(
        tuple(sorted(group, key=declaration.__getitem__)) for group in bins
    )


# ---------------------------------------------------------------------------
# roots + scaffold
# ---------------------------------------------------------------------------

_ROOT_NOT_BEFORE = datetime.date(2006, 1, 1)
_ROOT_NOT_AFTER = datetime.date(2030, 1, 1)


def build_root_ca(
    calibration: Calibration, profile: CaProfile
) -> CertificateAuthority:
    return CertificateAuthority.create_root(
        common_name=f"{profile.name} Root CA",
        seed=f"root/{profile.name}/{calibration.seed}",
        not_before=_dt(_ROOT_NOT_BEFORE),
        not_after=_dt(_ROOT_NOT_AFTER),
    )


def build_roots(
    calibration: Calibration, profiles: tuple[CaProfile, ...]
) -> tuple[dict[str, CertificateAuthority], list]:
    """(brand -> root CA, all root certificates incl. idle fillers)."""
    root_cas = {p.name: build_root_ca(calibration, p) for p in profiles}
    roots = [ca.certificate for ca in root_cas.values()]
    extra = max(0, calibration.root_count - len(profiles))
    for i in range(extra):
        ca = CertificateAuthority.create_root(
            common_name=f"Idle Root CA {i}",
            seed=f"root/idle{i}/{calibration.seed}",
            not_before=_dt(_ROOT_NOT_BEFORE),
            not_after=_dt(_ROOT_NOT_AFTER),
        )
        roots.append(ca.certificate)
    return root_cas, roots


class BrandState:
    """Scaffold for one CA brand: intermediates, CRL shards, URL tables."""

    def __init__(self, profile: CaProfile, layout: BrandLayout) -> None:
        self.profile = profile
        self.layout = layout
        self.intermediate_cas: list[CertificateAuthority] = []
        self.intermediate_records: list[IntermediateRecord] = []
        self.crls: list[EcosystemCrl] = []
        self.ocsp_urls: list[str] = []
        self.crl_by_url: dict[str, EcosystemCrl] = {}
        #: cert_ids of this brand's leaves (contiguous by construction).
        self.leaf_ids: list[int] = []


def _serial_bytes(profile: CaProfile) -> int:
    return 21 if profile.serial_style == "random_long" else 4


def build_brand_scaffold(
    calibration: Calibration,
    profile: CaProfile,
    layout: BrandLayout,
    root_ca: CertificateAuthority,
) -> BrandState:
    """Intermediate CAs, their records, and the brand's CRL shards.

    Draw order (one ``"scaffold"`` substream per brand): per-intermediate
    revocation-pointer rolls, then the per-CRL lognormal size factors,
    then one reissue-period draw per CRL.
    """
    cal = calibration
    rng = substream(cal.seed, "scaffold", profile.name)
    state = BrandState(profile, layout)

    for k in range(profile.intermediates):
        not_before = _dt(datetime.date(2008 + (k % 5), 3, 1))
        not_after = _dt(datetime.date(2020 + (k % 5), 3, 1))
        child = root_ca.create_intermediate(
            common_name=f"{profile.name} Issuing CA {k}",
            seed=f"int/{profile.name}/{k}/{cal.seed}",
            not_before=not_before,
            not_after=not_after,
            include_crl=False,
            include_ocsp=False,
        )
        # Intermediate certificates' own revocation pointers follow the
        # paper's §3.2 fractions, independent of the brand.
        draw = rng.random()
        if draw < cal.intermediate_neither_fraction:
            has_crl, has_ocsp = False, False
        else:
            has_crl = rng.random() < cal.intermediate_crl_fraction
            has_ocsp = rng.random() < cal.intermediate_ocsp_fraction
            if not has_crl and not has_ocsp:
                has_crl = True
        record = IntermediateRecord(
            intermediate_id=layout.intermediate_base + k,
            brand=profile.name,
            subject=f"{profile.name} Issuing CA {k}",
            spki_hash=child.keys.key_id,
            has_crl=has_crl,
            has_ocsp=has_ocsp,
            not_before=not_before.date(),
            not_after=not_after.date(),
        )
        state.intermediate_cas.append(child)
        state.intermediate_records.append(record)
        state.ocsp_urls.append(f"http://ocsp.{profile.name.lower()}.example/i{k}")

    # A handful of intermediates get revoked during the study (the
    # DigiNotar/Trustwave-style incidents of §1; Mozilla's OneCRL listed
    # 8 such certificates).  Their leaves stay in the corpus --
    # revocation status is what the clients are supposed to discover.
    if profile.name == "Other" and len(state.intermediate_records) >= 2:
        state.intermediate_records[1].revoked_at = datetime.date(2014, 7, 9)
        state.intermediate_records[
            3 % len(state.intermediate_records)
        ].revoked_at = datetime.date(2013, 12, 2)

    _build_brand_crls(cal, state, rng)
    return state


def _build_brand_crls(cal: Calibration, state: BrandState, rng) -> None:
    profile = state.profile
    shard_count = state.layout.crl_count

    # Per-shard size targets: lognormal variance around the Table 1
    # average, normalised so the mean is exact.
    factors = [
        math.exp(rng.gauss(0.0, cal.shard_size_sigma)) for _ in range(shard_count)
    ]
    mean_factor = sum(factors) / len(factors)
    factors = [f / mean_factor for f in factors]

    plain = representative_entry_size(_serial_bytes(profile), False)
    with_reason = representative_entry_size(_serial_bytes(profile), True)
    effective_entry = 0.7 * plain + 0.3 * with_reason

    for i, factor in enumerate(factors):
        ca = state.intermediate_cas[i % len(state.intermediate_cas)]
        record = state.intermediate_records[i % len(state.intermediate_records)]
        target_bytes = profile.avg_crl_kb * 1024.0 * factor
        target_entries = max(1, int((target_bytes - 400.0) / effective_entry))
        reissue_hours = _draw_mix(rng, cal.crl_reissue_hours_mix)
        crl = EcosystemCrl(
            url=f"http://crl.{profile.name.lower()}.example/crl{i}.crl",
            brand=profile.name,
            intermediate_id=record.intermediate_id,
            issuer_name=ca.name,
            issuer_key_hash=ca.keys.key_id,
            signature_size=ca.keys.backend.signature_size,
            signature_algorithm_oid=ca.keys.backend.algorithm_oid,
            serial_bytes=_serial_bytes(profile),
            reissue_hours=reissue_hours,
            covered=profile.crlset_covered,
        )
        crl._target_entries = target_entries  # consumed in population
        state.crls.append(crl)
        state.crl_by_url[crl.url] = crl


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------


def _issue_distribution(cal: Calibration):
    """Monthly issuance volume: geometric growth from 2011 onwards,
    precomputed as cumulative weights for O(log n) sampling."""
    months: list[datetime.date] = []
    weights: list[float] = []
    cursor = cal.issuance_start
    weight = 1.0
    scan_end = cal.scan_end
    while cursor < scan_end:
        months.append(cursor)
        weights.append(weight)
        weight *= cal.monthly_growth
        year, month = cursor.year, cursor.month + 1
        if month > 12:
            year, month = year + 1, 1
        cursor = datetime.date(year, month, 1)
    cum_weights = list(accumulate(weights))
    return months, cum_weights, cum_weights[-1]


def _sample_issue_date(rng, cal, months, cum_weights, total_weight):
    """Sample (issue date, validity days), conditioned on the cert's
    alive window overlapping the scan window (the Leaf Set is, by
    definition, the set of certificates the scans observed)."""
    scan_start, scan_end = cal.scan_start, cal.scan_end
    for _ in range(40):
        month = months[bisect.bisect(cum_weights, rng.random() * total_weight)]
        day = rng.randint(1, 28)
        issue = datetime.date(month.year, month.month, day)
        validity = _draw_mix(rng, cal.validity_mix)
        not_after = issue + datetime.timedelta(days=validity)
        # Must be advertisable within the scan window.
        if not_after >= scan_start and issue <= scan_end:
            return issue, validity
    return scan_start, 365


def _draw_stapling(rng, cal: Calibration, server_count: int, is_ev: bool) -> int:
    all_p = cal.ev_stapling_all_fraction if is_ev else cal.stapling_all_fraction
    partial_p = (
        cal.ev_stapling_partial_fraction if is_ev else cal.stapling_partial_fraction
    )
    roll = rng.random()
    if roll < all_p:
        return server_count
    if roll < all_p + partial_p:
        if server_count <= 1:
            return 0
        return rng.randint(1, server_count - 1)
    return 0


def build_brand_leaves(
    calibration: Calibration, state: BrandState
) -> list[LeafRecord]:
    """The brand's Leaf Set slice, in cert_id order.

    Each :data:`LEAF_BLOCK`-sized block draws from its own substream, so
    any block -- hence any brand, hence any shard -- can be generated
    independently and still merge byte-identically.
    """
    cal = calibration
    profile = state.profile
    layout = state.layout
    months, cum_weights, total_weight = _issue_distribution(cal)
    count = layout.cert_count
    n_crls = len(state.crls)
    random_long = profile.serial_style == "random_long"
    crl_assigned = [0] * n_crls
    leaves: list[LeafRecord] = []

    for block_start in range(0, count, LEAF_BLOCK):
        rng = substream(
            cal.seed, "leaves", profile.name, block_start // LEAF_BLOCK
        )
        for i in range(block_start, min(block_start + LEAF_BLOCK, count)):
            issue, validity = _sample_issue_date(
                rng, cal, months, cum_weights, total_weight
            )
            not_after = issue + datetime.timedelta(days=validity)
            birth = issue + datetime.timedelta(
                days=rng.randint(0, cal.birth_lag_max_days)
            )
            if rng.random() < cal.early_death_fraction:
                # Replaced mid-life (rekeyed, reissued, site retired).
                death = birth + datetime.timedelta(
                    days=rng.randint(30, max(31, validity))
                )
            elif rng.random() < cal.advertise_past_expiry:
                death = not_after + datetime.timedelta(
                    days=rng.randint(1, cal.expiry_overrun_max_days)
                )
            else:
                death = not_after - datetime.timedelta(days=rng.randint(0, 21))
            death = max(death, birth)

            intermediate_index = rng.randrange(len(state.intermediate_cas))
            serial = rng.getrandbits(160) if random_long else 1000 + i

            crl_url = None
            if n_crls and rng.random() < profile.crl_inclusion:
                crl_index = rng.randrange(n_crls)
                crl_assigned[crl_index] += 1
                crl_url = state.crls[crl_index].url

            ocsp_url = None
            adoption = profile.ocsp_since
            if profile.ocsp_ramp_days:
                adoption = adoption + datetime.timedelta(
                    days=rng.randint(0, profile.ocsp_ramp_days)
                )
            if issue >= adoption and (
                rng.random() < cal.ocsp_inclusion_after_adoption
            ):
                ocsp_url = state.ocsp_urls[intermediate_index]

            is_ev = rng.random() < profile.ev_fraction
            low, high, _ = _draw_mix_triple(rng, cal.server_count_mix)
            server_count = rng.randint(low, high)
            stapling_servers = _draw_stapling(rng, cal, server_count, is_ev)

            cert_id = layout.cert_base + i
            leaves.append(
                LeafRecord(
                    cert_id=cert_id,
                    brand=profile.name,
                    intermediate_id=state.intermediate_records[
                        intermediate_index
                    ].intermediate_id,
                    serial_number=serial,
                    not_before=issue,
                    not_after=not_after,
                    birth=birth,
                    death=death,
                    is_ev=is_ev,
                    crl_url=crl_url,
                    ocsp_url=ocsp_url,
                    server_count=server_count,
                    stapling_servers=stapling_servers,
                )
            )
            state.leaf_ids.append(cert_id)

    for crl, assigned in zip(state.crls, crl_assigned):
        crl.assigned_cert_count += assigned
    return leaves


# ---------------------------------------------------------------------------
# revocation
# ---------------------------------------------------------------------------


def _weighted_sample(rng, items: list, weights: list, k: int) -> list:
    """Weighted sampling without replacement (Efraimidis-Spirakis)."""
    keyed = [
        (rng.random() ** (1.0 / weight), item)
        for item, weight in zip(items, weights)
    ]
    keyed.sort(reverse=True)
    return [item for _, item in keyed[:k]]


def _steady_revocation_date(rng, cal: Calibration, leaf: LeafRecord):
    start = leaf.not_before + datetime.timedelta(days=7)
    end = min(leaf.not_after, cal.measurement_end)
    if end <= start:
        return start
    span = (end - start).days
    return start + datetime.timedelta(days=rng.randint(0, span))


def _revoke_leaf(
    rng, cal: Calibration, state: BrandState, leaf: LeafRecord, when
) -> None:
    leaf.revoked_at = when
    reason_name = _draw_mix(rng, cal.reason_mix)
    leaf.revocation_reason = (
        None if reason_name is None else ReasonCode[reason_name]
    )
    if rng.random() >= cal.keep_advertising_after_revoke:
        # Most administrators deploy the replacement certificate right
        # around the revocation (often just before requesting it).
        takedown = when + datetime.timedelta(days=rng.randint(-14, 3))
        leaf.death = max(leaf.birth, min(leaf.death, takedown))
    if leaf.crl_url is not None:
        state.crl_by_url[leaf.crl_url].add_entry(
            CrlEntryRecord(
                serial_number=leaf.serial_number,
                revoked_at=when,
                reason=leaf.revocation_reason,
                cert_not_after=leaf.not_after,
                cert_id=leaf.cert_id,
            )
        )


def assign_brand_revocations(
    calibration: Calibration, state: BrandState, leaves: list[LeafRecord]
) -> None:
    """Steady-state churn + the Heartbleed burst, one substream per brand.

    Mutates leaf records in place and appends observed entries to the
    brand's CRLs; depends only on this brand's own leaves.
    """
    cal = calibration
    profile = state.profile
    target = profile.scaled_revoked(cal.scale)
    if not leaves or target == 0:
        return
    rng = substream(cal.seed, "revoke", profile.name)

    steady_p = min(cal.steady_cap, profile.revoked_fraction * cal.steady_share)
    steady_count = min(target, round(len(leaves) * steady_p))
    chosen = rng.sample(range(len(leaves)), min(len(leaves), steady_count))
    revoked: set[int] = set()
    for index in chosen:
        leaf = leaves[index]
        _revoke_leaf(
            rng, cal, state, leaf, _steady_revocation_date(rng, cal, leaf)
        )
        revoked.add(index)

    remaining = target - len(revoked)
    if remaining > 0:
        heartbleed = cal.heartbleed_date
        eligible = [
            index
            for index, leaf in enumerate(leaves)
            if index not in revoked
            and leaf.is_fresh(heartbleed)
            and leaf.is_alive(heartbleed)
        ]
        # Bias toward certificates with more remaining validity: a
        # revocation is only worth requesting if the certificate would
        # otherwise stay valid for a while (cf. [52]).
        weights = [
            max(1.0, (leaves[index].not_after - heartbleed).days) ** 0.75
            for index in eligible
        ]
        take = min(remaining, len(eligible))
        picked = _weighted_sample(rng, eligible, weights, take)
        for index in picked:
            leaf = leaves[index]
            offset = min(
                int(rng.expovariate(1.0 / cal.heartbleed_decay_days)),
                cal.heartbleed_window_days,
            )
            when = heartbleed + datetime.timedelta(days=offset)
            when = min(when, leaf.not_after)
            _revoke_leaf(rng, cal, state, leaf, when)
            revoked.add(index)

        # Any shortfall (tiny corpora) becomes late steady churn.
        leftovers = [i for i in range(len(leaves)) if i not in revoked]
        for index in leftovers[: max(0, target - len(revoked))]:
            leaf = leaves[index]
            _revoke_leaf(
                rng, cal, state, leaf, _steady_revocation_date(rng, cal, leaf)
            )


# ---------------------------------------------------------------------------
# synthetic CRL populations
# ---------------------------------------------------------------------------

_SYNTH_WINDOW_START = datetime.date(2013, 1, 1)


def populate_brand_synthetic(calibration: Calibration, state: BrandState) -> None:
    """Fill each CRL up to its size target with never-observed entries:
    individually identified records on small (CRLSet-eligible) CRLs, bulk
    :class:`HiddenPopulation` counts on big ones.  One substream per CRL,
    so even CRLs within a brand are order-independent."""
    cal = calibration
    profile = state.profile
    for local_index, crl in enumerate(state.crls):
        target = getattr(crl, "_target_entries", 0)
        observed_end = sum(
            1 for e in crl.entries if e.visible_on(cal.measurement_end)
        )
        synthetic_needed = max(0, target - observed_end)
        if synthetic_needed == 0:
            continue
        if target > MATERIALIZE_THRESHOLD:
            crl.hidden = HiddenPopulation(
                target_end=synthetic_needed,
                window_start=_SYNTH_WINDOW_START,
                window_end=cal.measurement_end,
                heartbleed_date=cal.heartbleed_date,
            )
            continue
        rng = substream(cal.seed, "synth", profile.name, local_index)
        serial_band = SYNTH_SERIAL_BASE + SYNTH_SERIAL_STRIDE * (
            state.layout.crl_base + local_index
        )
        random_long = profile.serial_style == "random_long"
        counter = 0

        def next_serial():
            nonlocal counter
            if random_long:
                return rng.getrandbits(160)
            serial = serial_band + counter
            counter += 1
            return serial

        def make_entry(revoked_at):
            reason_name = _draw_mix(rng, cal.reason_mix)
            return CrlEntryRecord(
                serial_number=next_serial(),
                revoked_at=revoked_at,
                reason=None if reason_name is None else ReasonCode[reason_name],
                cert_not_after=revoked_at,  # finalised by the FIFO sweep
                cert_id=None,
            )

        schedule = HiddenPopulation(
            target_end=synthetic_needed,
            window_start=_SYNTH_WINDOW_START,
            window_end=cal.measurement_end,
            heartbleed_date=cal.heartbleed_date,
        )
        # Materialised entries follow the *same* additions/removals
        # schedule as the bulk-modelled big CRLs: entries expire in FIFO
        # order on the schedule's removal days, so the visible count on
        # any day matches the schedule exactly (and equals the size
        # target at the measurement end).
        fifo: list[CrlEntryRecord] = []
        for _ in range(schedule.initial_count):
            revoked_at = _SYNTH_WINDOW_START - datetime.timedelta(
                days=rng.randint(1, 500)
            )
            fifo.append(make_entry(revoked_at))
        fifo.sort(key=lambda entry: entry.revoked_at)
        cursor = 0
        day = _SYNTH_WINDOW_START
        while day <= cal.measurement_end:
            for _ in range(schedule.additions_on(day)):
                fifo.append(make_entry(day))
            for _ in range(schedule.removals_on(day)):
                if cursor < len(fifo):
                    entry = fifo[cursor]
                    entry.cert_not_after = max(
                        entry.revoked_at, day - datetime.timedelta(days=1)
                    )
                    cursor += 1
            day += datetime.timedelta(days=1)
        # Survivors expire after the study window.
        for entry in fifo[cursor:]:
            entry.cert_not_after = cal.measurement_end + datetime.timedelta(
                days=rng.randint(30, 700)
            )
        for entry in fifo:
            crl.add_entry(entry)
        # The FIFO sweep finalised cert_not_after on entries already
        # appended; drop any timeline built against interim state.
        crl.invalidate_series()


# ---------------------------------------------------------------------------
# whole-brand chain + merge-time stages
# ---------------------------------------------------------------------------


def build_brand(
    calibration: Calibration,
    profile: CaProfile,
    layout: BrandLayout,
    root_ca: CertificateAuthority | None = None,
) -> tuple[BrandState, list[LeafRecord]]:
    """The full per-brand chain: scaffold -> leaves -> revocations ->
    synthetic population.  Pure in ``(calibration, profile, layout)``;
    ``root_ca`` is itself seed-derived and rebuilt when not passed (the
    worker path)."""
    if root_ca is None:
        root_ca = build_root_ca(calibration, profile)
    state = build_brand_scaffold(calibration, profile, layout, root_ca)
    leaves = build_brand_leaves(calibration, state)
    assign_brand_revocations(calibration, state, leaves)
    populate_brand_synthetic(calibration, state)
    return state, leaves


def assign_alexa_ranks(calibration: Calibration, leaves: list[LeafRecord]) -> None:
    """Merge-time global stage: one ``"alexa"`` substream over the merged
    Leaf Set (rank assignment must see every brand)."""
    cal = calibration
    rng = substream(cal.seed, "alexa")
    top_n = cal.scaled(1_000_000)
    # Popular sites are alive near the end of the study and skew toward
    # the big commercial CAs; sample among late-alive leaves.
    cutoff = cal.measurement_end - datetime.timedelta(days=270)
    candidates = [leaf for leaf in leaves if leaf.death >= cutoff]
    rng.shuffle(candidates)
    for rank, leaf in enumerate(candidates[:top_n], start=1):
        leaf.alexa_rank = rank


def _shard_layouts(
    calibration: Calibration,
    profiles: tuple[CaProfile, ...],
    brand_names: tuple[str, ...],
) -> list[tuple[CaProfile, BrandLayout]]:
    layouts = {layout.name: layout for layout in layout_brands(calibration, profiles)}
    by_name = {profile.name: profile for profile in profiles}
    return [(by_name[name], layouts[name]) for name in brand_names]


def build_shard_parts(
    calibration: Calibration,
    brand_names: tuple[str, ...],
    profiles: tuple[CaProfile, ...] = PAPER_CA_PROFILES,
) -> dict[str, dict]:
    """Worker entry point: build every brand in ``brand_names`` and return
    columnar parts (cheap to pickle back to the parent -- record objects
    are 40x bigger on the wire)."""
    from repro.scan import corpus

    parts: dict[str, dict] = {}
    for profile, layout in _shard_layouts(calibration, profiles, brand_names):
        state, leaves = build_brand(calibration, profile, layout)
        parts[profile.name] = corpus.encode_brand_parts(state, leaves)
    return parts
