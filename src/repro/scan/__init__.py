"""Synthetic Web-PKI ecosystem and Internet-scan simulation.

Replaces the paper's Rapid7 / U. Michigan scan datasets (unavailable
offline) with a generator calibrated to the paper's reported aggregates.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.scan.calibration import Calibration, PaperTargets
from repro.scan.records import IntermediateRecord, LeafRecord
from repro.scan.ecosystem import Ecosystem
from repro.scan.scanner import Rapid7Scanner, ScanSnapshot
from repro.scan.crawler import CrlCrawler, CrlDailyObservation
from repro.scan.tls_scanner import StaplingProbeResult, TlsHandshakeScanner

__all__ = [
    "Calibration",
    "CrlCrawler",
    "CrlDailyObservation",
    "Ecosystem",
    "IntermediateRecord",
    "LeafRecord",
    "PaperTargets",
    "Rapid7Scanner",
    "ScanSnapshot",
    "StaplingProbeResult",
    "TlsHandshakeScanner",
]
