"""The synthetic Web-PKI ecosystem.

:class:`Ecosystem` generates, deterministically from a seed, everything
the paper's scans observed: a root store, an Intermediate Set of real CA
certificates, a Leaf Set of certificate lifecycle records, per-CA CRLs
(with realistic sharding, entry populations, and byte sizes), revocation
events including the Heartbleed burst of April 2014, hosting/stapling
deployment, and Alexa popularity ranks.

Calibration targets come from :class:`~repro.scan.calibration.Calibration`
and the per-CA profiles in :mod:`repro.ca.profiles`; DESIGN.md §2 explains
why this substitution preserves the behaviour the paper measures.
"""

from __future__ import annotations

import datetime
import math
import random

from repro.ca.authority import CertificateAuthority
from repro.ca.profiles import PAPER_CA_PROFILES, CaProfile
from repro.pki.certificate import Certificate, CertificateBuilder
from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.reason import ReasonCode
from repro.revocation.sizing import representative_entry_size
from repro.scan.calibration import Calibration
from repro.scan.crl_model import CrlEntryRecord, EcosystemCrl
from repro.scan.hidden import HiddenPopulation
from repro.scan.records import IntermediateRecord, LeafRecord

__all__ = ["Ecosystem"]

_UTC = datetime.timezone.utc

#: materialise individual synthetic entries only below this expected count
#: (bigger CRLs are dropped by the CRLSet pipeline anyway, so they only
#: need bulk counts).
_MATERIALIZE_THRESHOLD = 15_000


def _dt(day: datetime.date) -> datetime.datetime:
    return datetime.datetime(day.year, day.month, day.day, tzinfo=_UTC)


class _BrandState:
    """Generator bookkeeping for one CA brand."""

    def __init__(self, profile: CaProfile) -> None:
        self.profile = profile
        self.intermediate_cas: list[CertificateAuthority] = []
        self.intermediate_records: list[IntermediateRecord] = []
        self.crls: list[EcosystemCrl] = []
        self.ocsp_urls: list[str] = []
        self.next_serial = 1000
        self.leaf_ids: list[int] = []

    def allocate_serial(self, rng: random.Random) -> int:
        if self.profile.serial_style == "random_long":
            return rng.getrandbits(160)
        serial = self.next_serial
        self.next_serial += 1
        return serial


class Ecosystem:
    """Deterministic synthetic PKI ecosystem (see module docstring)."""

    def __init__(
        self,
        calibration: Calibration | None = None,
        profiles: tuple[CaProfile, ...] = PAPER_CA_PROFILES,
    ) -> None:
        self.calibration = calibration or Calibration()
        self.profiles = profiles
        self._rng = random.Random(self.calibration.seed)

        self.roots: list[Certificate] = []
        self.root_store: frozenset[bytes] = frozenset()
        self.brands: dict[str, _BrandState] = {}
        self.intermediates: list[IntermediateRecord] = []
        self.leaves: list[LeafRecord] = []
        self.crls: list[EcosystemCrl] = []
        self._crl_by_url: dict[str, EcosystemCrl] = {}
        self._leaf_by_id: dict[int, LeafRecord] = {}
        #: count of scan-visible but invalid certificates (self-signed
        #: router certs etc.); tracked as a count, per §3.1.
        self.invalid_cert_count = 0

        self._build_roots()
        self._build_brands()
        self._build_leaves()
        self._assign_revocations()
        self._populate_synthetic_entries()
        self._assign_alexa_ranks()
        self._count_invalid_certs()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_roots(self) -> None:
        start = _dt(datetime.date(2006, 1, 1))
        end = _dt(datetime.date(2030, 1, 1))
        self._root_cas: dict[str, CertificateAuthority] = {}
        for profile in self.profiles:
            ca = CertificateAuthority.create_root(
                common_name=f"{profile.name} Root CA",
                seed=f"root/{profile.name}/{self.calibration.seed}",
                not_before=start,
                not_after=end,
            )
            self._root_cas[profile.name] = ca
            self.roots.append(ca.certificate)
        # Extra trusted roots that issue nothing we observe (real root
        # stores carry hundreds of mostly-idle roots).
        extra = max(0, self.calibration.root_count - len(self.profiles))
        for i in range(extra):
            ca = CertificateAuthority.create_root(
                common_name=f"Idle Root CA {i}",
                seed=f"root/idle{i}/{self.calibration.seed}",
                not_before=start,
                not_after=end,
            )
            self.roots.append(ca.certificate)
        self.root_store = frozenset(cert.fingerprint for cert in self.roots)

    def _build_brands(self) -> None:
        cal = self.calibration
        rng = self._rng
        next_intermediate_id = 0
        for profile in self.profiles:
            state = _BrandState(profile)
            self.brands[profile.name] = state
            root = self._root_cas[profile.name]
            for k in range(profile.intermediates):
                not_before = _dt(datetime.date(2008 + (k % 5), 3, 1))
                not_after = _dt(datetime.date(2020 + (k % 5), 3, 1))
                child = root.create_intermediate(
                    common_name=f"{profile.name} Issuing CA {k}",
                    seed=f"int/{profile.name}/{k}/{cal.seed}",
                    not_before=not_before,
                    not_after=not_after,
                    include_crl=False,
                    include_ocsp=False,
                )
                # Intermediate certificates' own revocation pointers follow
                # the paper's §3.2 fractions, independent of the brand.
                draw = rng.random()
                if draw < cal.intermediate_neither_fraction:
                    has_crl, has_ocsp = False, False
                else:
                    has_crl = rng.random() < cal.intermediate_crl_fraction
                    has_ocsp = rng.random() < cal.intermediate_ocsp_fraction
                    if not has_crl and not has_ocsp:
                        has_crl = True
                record = IntermediateRecord(
                    intermediate_id=next_intermediate_id,
                    brand=profile.name,
                    subject=f"{profile.name} Issuing CA {k}",
                    spki_hash=child.keys.key_id,
                    has_crl=has_crl,
                    has_ocsp=has_ocsp,
                    not_before=not_before.date(),
                    not_after=not_after.date(),
                )
                next_intermediate_id += 1
                state.intermediate_cas.append(child)
                state.intermediate_records.append(record)
                state.ocsp_urls.append(
                    f"http://ocsp.{profile.name.lower()}.example/i{k}"
                )
                self.intermediates.append(record)
            self._build_brand_crls(state)
        # A handful of intermediates get revoked during the study (the
        # DigiNotar/Trustwave-style incidents of §1; Mozilla's OneCRL
        # listed 8 such certificates).  Their leaves stay in the corpus --
        # revocation status is what the clients are supposed to discover.
        other = self.brands.get("Other")
        if other is not None and len(other.intermediate_records) >= 2:
            other.intermediate_records[1].revoked_at = datetime.date(2014, 7, 9)
            other.intermediate_records[3 % len(other.intermediate_records)].revoked_at = datetime.date(2013, 12, 2)

    def _build_brand_crls(self, state: _BrandState) -> None:
        cal = self.calibration
        rng = self._rng
        profile = state.profile
        shard_count = profile.scaled_crl_count(cal.scale)

        # Per-shard size targets: lognormal variance around the Table 1
        # average, normalised so the mean is exact.
        factors = [
            math.exp(rng.gauss(0.0, cal.shard_size_sigma)) for _ in range(shard_count)
        ]
        mean_factor = sum(factors) / len(factors)
        factors = [f / mean_factor for f in factors]

        plain = representative_entry_size(self._serial_bytes(profile), False)
        with_reason = representative_entry_size(self._serial_bytes(profile), True)
        effective_entry = 0.7 * plain + 0.3 * with_reason

        for i, factor in enumerate(factors):
            ca = state.intermediate_cas[i % len(state.intermediate_cas)]
            record = state.intermediate_records[i % len(state.intermediate_records)]
            target_bytes = profile.avg_crl_kb * 1024.0 * factor
            target_entries = max(1, int((target_bytes - 400.0) / effective_entry))
            reissue_hours = self._draw_mix(cal.crl_reissue_hours_mix)
            crl = EcosystemCrl(
                url=f"http://crl.{profile.name.lower()}.example/crl{i}.crl",
                brand=profile.name,
                intermediate_id=record.intermediate_id,
                issuer_name=ca.name,
                issuer_key_hash=ca.keys.key_id,
                signature_size=ca.keys.backend.signature_size,
                signature_algorithm_oid=ca.keys.backend.algorithm_oid,
                serial_bytes=self._serial_bytes(profile),
                reissue_hours=reissue_hours,
                covered=profile.crlset_covered,
            )
            crl._target_entries = target_entries  # consumed in population
            state.crls.append(crl)
            self.crls.append(crl)
            self._crl_by_url[crl.url] = crl

    @staticmethod
    def _serial_bytes(profile: CaProfile) -> int:
        return 21 if profile.serial_style == "random_long" else 4

    def _draw_mix(self, mix) -> object:
        """Draw from a ((value, probability), ...) mixture."""
        roll = self._rng.random()
        cumulative = 0.0
        for value, probability in mix:
            cumulative += probability
            if roll < cumulative:
                return value
        return mix[-1][0]

    # -- leaves ---------------------------------------------------------

    def _issue_distribution(self) -> tuple[list[datetime.date], list[float]]:
        """Monthly issuance volume: geometric growth from 2011 onwards."""
        cached = getattr(self, "_issue_months_weights", None)
        if cached is not None:
            return cached
        cal = self.calibration
        months: list[datetime.date] = []
        weights: list[float] = []
        cursor = cal.issuance_start
        weight = 1.0
        while cursor < cal.scan_end:
            months.append(cursor)
            weights.append(weight)
            weight *= cal.monthly_growth
            year, month = cursor.year, cursor.month + 1
            if month > 12:
                year, month = year + 1, 1
            cursor = datetime.date(year, month, 1)
        self._issue_months_weights = (months, weights)
        return months, weights

    def _sample_issue_date(self) -> tuple[datetime.date, int]:
        """Sample (issue date, validity days), conditioned on the cert's
        alive window overlapping the scan window (the Leaf Set is, by
        definition, the set of certificates the scans observed)."""
        cal = self.calibration
        rng = self._rng
        months, weights = self._issue_distribution()

        for _ in range(40):
            month = rng.choices(months, weights=weights)[0]
            day = rng.randint(1, 28)
            issue = datetime.date(month.year, month.month, day)
            validity = self._draw_mix(cal.validity_mix)
            not_after = issue + datetime.timedelta(days=validity)
            # Must be advertisable within the scan window.
            if not_after >= cal.scan_start and issue <= cal.scan_end:
                return issue, validity
        return cal.scan_start, 365

    def _build_leaves(self) -> None:
        cal = self.calibration
        rng = self._rng
        cert_id = 0
        for profile in self.profiles:
            state = self.brands[profile.name]
            count = profile.scaled_certs(cal.scale)
            for _ in range(count):
                issue, validity = self._sample_issue_date()
                not_after = issue + datetime.timedelta(days=validity)
                birth = issue + datetime.timedelta(
                    days=rng.randint(0, cal.birth_lag_max_days)
                )
                if rng.random() < cal.early_death_fraction:
                    # Replaced mid-life (rekeyed, reissued, site retired).
                    death = birth + datetime.timedelta(
                        days=rng.randint(30, max(31, validity))
                    )
                elif rng.random() < cal.advertise_past_expiry:
                    death = not_after + datetime.timedelta(
                        days=rng.randint(1, cal.expiry_overrun_max_days)
                    )
                else:
                    death = not_after - datetime.timedelta(days=rng.randint(0, 21))
                death = max(death, birth)

                intermediate_index = rng.randrange(len(state.intermediate_cas))
                serial = state.allocate_serial(rng)

                crl_url = None
                if state.crls and rng.random() < profile.crl_inclusion:
                    crl = rng.choice(state.crls)
                    crl.assigned_cert_count += 1
                    crl_url = crl.url

                ocsp_url = None
                adoption = profile.ocsp_since
                if profile.ocsp_ramp_days:
                    adoption = adoption + datetime.timedelta(
                        days=rng.randint(0, profile.ocsp_ramp_days)
                    )
                if issue >= adoption and (
                    rng.random() < cal.ocsp_inclusion_after_adoption
                ):
                    ocsp_url = state.ocsp_urls[intermediate_index]

                is_ev = rng.random() < profile.ev_fraction
                server_count = self._draw_server_count()
                stapling_servers = self._draw_stapling(server_count, is_ev)

                record = LeafRecord(
                    cert_id=cert_id,
                    brand=profile.name,
                    intermediate_id=state.intermediate_records[
                        intermediate_index
                    ].intermediate_id,
                    serial_number=serial,
                    not_before=issue,
                    not_after=not_after,
                    birth=birth,
                    death=death,
                    is_ev=is_ev,
                    crl_url=crl_url,
                    ocsp_url=ocsp_url,
                    server_count=server_count,
                    stapling_servers=stapling_servers,
                )
                self.leaves.append(record)
                self._leaf_by_id[cert_id] = record
                state.leaf_ids.append(cert_id)
                cert_id += 1

    def _draw_server_count(self) -> int:
        low, high, _ = self._draw_mix_triple(self.calibration.server_count_mix)
        return self._rng.randint(low, high)

    def _draw_mix_triple(self, mix) -> tuple:
        roll = self._rng.random()
        cumulative = 0.0
        for entry in mix:
            cumulative += entry[-1]
            if roll < cumulative:
                return entry
        return mix[-1]

    def _draw_stapling(self, server_count: int, is_ev: bool) -> int:
        cal = self.calibration
        rng = self._rng
        all_p = cal.ev_stapling_all_fraction if is_ev else cal.stapling_all_fraction
        partial_p = (
            cal.ev_stapling_partial_fraction if is_ev else cal.stapling_partial_fraction
        )
        roll = rng.random()
        if roll < all_p:
            return server_count
        if roll < all_p + partial_p:
            if server_count <= 1:
                return 0
            return rng.randint(1, server_count - 1)
        return 0

    # -- revocation ------------------------------------------------------

    def _assign_revocations(self) -> None:
        cal = self.calibration
        rng = self._rng
        for profile in self.profiles:
            state = self.brands[profile.name]
            leaf_ids = state.leaf_ids
            target = profile.scaled_revoked(cal.scale)
            if not leaf_ids or target == 0:
                continue

            steady_p = min(cal.steady_cap, profile.revoked_fraction * cal.steady_share)
            steady_count = min(target, round(len(leaf_ids) * steady_p))
            chosen = rng.sample(leaf_ids, min(len(leaf_ids), steady_count))
            revoked: set[int] = set()
            for cid in chosen:
                leaf = self._leaf_by_id[cid]
                self._revoke_leaf(leaf, self._steady_revocation_date(leaf))
                revoked.add(cid)

            remaining = target - len(revoked)
            if remaining > 0:
                eligible = [
                    cid
                    for cid in leaf_ids
                    if cid not in revoked
                    and self._leaf_by_id[cid].is_fresh(cal.heartbleed_date)
                    and self._leaf_by_id[cid].is_alive(cal.heartbleed_date)
                ]
                # Bias toward certificates with more remaining validity:
                # a revocation is only worth requesting if the certificate
                # would otherwise stay valid for a while (cf. [52]).
                weights = [
                    max(
                        1.0,
                        (self._leaf_by_id[cid].not_after - cal.heartbleed_date).days,
                    )
                    ** 0.75
                    for cid in eligible
                ]
                take = min(remaining, len(eligible))
                picked = self._weighted_sample(eligible, weights, take)
                for cid in picked:
                    leaf = self._leaf_by_id[cid]
                    offset = min(
                        int(rng.expovariate(1.0 / cal.heartbleed_decay_days)),
                        cal.heartbleed_window_days,
                    )
                    when = cal.heartbleed_date + datetime.timedelta(days=offset)
                    when = min(when, leaf.not_after)
                    self._revoke_leaf(leaf, when)
                    revoked.add(cid)

                # Any shortfall (tiny corpora) becomes late steady churn.
                leftovers = [cid for cid in leaf_ids if cid not in revoked]
                for cid in leftovers[: max(0, target - len(revoked))]:
                    leaf = self._leaf_by_id[cid]
                    self._revoke_leaf(leaf, self._steady_revocation_date(leaf))

    def _weighted_sample(self, items: list, weights: list, k: int) -> list:
        """Weighted sampling without replacement (Efraimidis-Spirakis)."""
        rng = self._rng
        keyed = [
            (rng.random() ** (1.0 / weight), item)
            for item, weight in zip(items, weights)
        ]
        keyed.sort(reverse=True)
        return [item for _, item in keyed[:k]]

    def _steady_revocation_date(self, leaf: LeafRecord) -> datetime.date:
        cal = self.calibration
        rng = self._rng
        start = leaf.not_before + datetime.timedelta(days=7)
        end = min(leaf.not_after, cal.measurement_end)
        if end <= start:
            return start
        span = (end - start).days
        return start + datetime.timedelta(days=rng.randint(0, span))

    def _revoke_leaf(self, leaf: LeafRecord, when: datetime.date) -> None:
        cal = self.calibration
        rng = self._rng
        leaf.revoked_at = when
        reason_name = self._draw_mix(cal.reason_mix)
        leaf.revocation_reason = (
            None if reason_name is None else ReasonCode[reason_name]
        )
        if rng.random() >= cal.keep_advertising_after_revoke:
            # Most administrators deploy the replacement certificate right
            # around the revocation (often just before requesting it).
            takedown = when + datetime.timedelta(days=rng.randint(-14, 3))
            leaf.death = max(leaf.birth, min(leaf.death, takedown))
        if leaf.crl_url is not None:
            self._crl_by_url[leaf.crl_url].add_entry(
                CrlEntryRecord(
                    serial_number=leaf.serial_number,
                    revoked_at=when,
                    reason=leaf.revocation_reason,
                    cert_not_after=leaf.not_after,
                    cert_id=leaf.cert_id,
                )
            )

    # -- synthetic CRL populations ----------------------------------------

    def _populate_synthetic_entries(self) -> None:
        """Fill each CRL up to its size target with never-observed entries:
        individually identified records on small (CRLSet-eligible) CRLs,
        bulk :class:`HiddenPopulation` counts on big ones."""
        cal = self.calibration
        rng = self._rng
        window_start = datetime.date(2013, 1, 1)
        for crl in self.crls:
            target = getattr(crl, "_target_entries", 0)
            observed_end = sum(
                1 for e in crl.entries if e.visible_on(cal.measurement_end)
            )
            synthetic_needed = max(0, target - observed_end)
            if synthetic_needed == 0:
                continue
            if target > _MATERIALIZE_THRESHOLD:
                crl.hidden = HiddenPopulation(
                    target_end=synthetic_needed,
                    window_start=window_start,
                    window_end=cal.measurement_end,
                    heartbleed_date=cal.heartbleed_date,
                )
                continue
            state = self.brands[crl.brand]
            schedule = HiddenPopulation(
                target_end=synthetic_needed,
                window_start=window_start,
                window_end=cal.measurement_end,
                heartbleed_date=cal.heartbleed_date,
            )
            # Materialised entries follow the *same* additions/removals
            # schedule as the bulk-modelled big CRLs: entries expire in
            # FIFO order on the schedule's removal days, so the visible
            # count on any day matches the schedule exactly (and equals
            # the size target at the measurement end).
            fifo: list[CrlEntryRecord] = []
            for _ in range(schedule.initial_count):
                revoked_at = window_start - datetime.timedelta(
                    days=rng.randint(1, 500)
                )
                fifo.append(self._make_synthetic_entry(state, revoked_at))
            fifo.sort(key=lambda entry: entry.revoked_at)
            cursor = 0
            day = window_start
            while day <= cal.measurement_end:
                for _ in range(schedule.additions_on(day)):
                    fifo.append(self._make_synthetic_entry(state, day))
                for _ in range(schedule.removals_on(day)):
                    if cursor < len(fifo):
                        entry = fifo[cursor]
                        entry.cert_not_after = max(
                            entry.revoked_at, day - datetime.timedelta(days=1)
                        )
                        cursor += 1
                day += datetime.timedelta(days=1)
            # Survivors expire after the study window.
            for entry in fifo[cursor:]:
                entry.cert_not_after = cal.measurement_end + datetime.timedelta(
                    days=rng.randint(30, 700)
                )
            for entry in fifo:
                crl.add_entry(entry)
            # The FIFO sweep finalised cert_not_after on entries already
            # appended; drop any timeline built against interim state.
            crl.invalidate_series()

    def _make_synthetic_entry(
        self, state: _BrandState, revoked_at: datetime.date
    ) -> CrlEntryRecord:
        rng = self._rng
        reason_name = self._draw_mix(self.calibration.reason_mix)
        reason = None if reason_name is None else ReasonCode[reason_name]
        return CrlEntryRecord(
            serial_number=state.allocate_serial(rng),
            revoked_at=revoked_at,
            reason=reason,
            cert_not_after=revoked_at,  # finalised by the FIFO sweep
            cert_id=None,
        )

    # -- popularity --------------------------------------------------------

    def _assign_alexa_ranks(self) -> None:
        cal = self.calibration
        rng = self._rng
        top_n = cal.scaled(1_000_000)
        # Popular sites are alive near the end of the study and skew
        # toward the big commercial CAs; sample among late-alive leaves.
        candidates = [
            leaf
            for leaf in self.leaves
            if leaf.death >= cal.measurement_end - datetime.timedelta(days=270)
        ]
        rng.shuffle(candidates)
        for rank, leaf in enumerate(candidates[:top_n], start=1):
            leaf.alexa_rank = rank

    def _count_invalid_certs(self) -> None:
        """§3.1: most scanned certs are invalid (self-signed devices);
        the paper saw 38.5 M total vs a 5.07 M Leaf Set."""
        targets = self.calibration.targets
        ratio = targets.unique_certs_seen / targets.leaf_set_size
        self.invalid_cert_count = int(len(self.leaves) * (ratio - 1.0))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def leaf(self, cert_id: int) -> LeafRecord:
        return self._leaf_by_id[cert_id]

    def crl_for_url(self, url: str) -> EcosystemCrl:
        return self._crl_by_url[url]

    def brand_state(self, name: str) -> _BrandState:
        return self.brands[name]

    @property
    def leaf_count(self) -> int:
        return len(self.leaves)

    def fresh_leaves(self, on: datetime.date) -> list[LeafRecord]:
        return [leaf for leaf in self.leaves if leaf.is_fresh(on)]

    def alive_leaves(self, on: datetime.date) -> list[LeafRecord]:
        return [leaf for leaf in self.leaves if leaf.is_alive(on)]

    def total_crl_entries(self, on: datetime.date) -> int:
        return sum(crl.entry_count(on) for crl in self.crls)

    # -- materialisation -----------------------------------------------

    def materialize(self, leaf: LeafRecord) -> Certificate:
        """Build the real, signed certificate for a leaf record."""
        state = self.brands[leaf.brand]
        index = next(
            i
            for i, rec in enumerate(state.intermediate_records)
            if rec.intermediate_id == leaf.intermediate_id
        )
        issuer_ca = state.intermediate_cas[index]
        keys = KeyPair.generate(f"leaf/{leaf.cert_id}/{self.calibration.seed}")
        builder = (
            CertificateBuilder()
            .subject(Name.make(f"site{leaf.cert_id}.example"))
            .issuer(issuer_ca.name)
            .serial_number(leaf.serial_number)
            .public_key(keys.public_key)
            .validity(_dt(leaf.not_before), _dt(leaf.not_after))
        )
        if leaf.crl_url:
            builder.crl_urls([leaf.crl_url])
        if leaf.ocsp_url:
            builder.ocsp_urls([leaf.ocsp_url])
        if leaf.is_ev:
            builder.ev()
        return builder.sign(issuer_ca.keys)

    def chain_for(self, leaf: LeafRecord) -> list[Certificate]:
        """[leaf certificate, intermediate, root] for chain verification."""
        state = self.brands[leaf.brand]
        index = next(
            i
            for i, rec in enumerate(state.intermediate_records)
            if rec.intermediate_id == leaf.intermediate_id
        )
        issuer_ca = state.intermediate_cas[index]
        root_ca = self._root_cas[leaf.brand]
        return [self.materialize(leaf), issuer_ca.certificate, root_ca.certificate]
