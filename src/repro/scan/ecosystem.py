"""The synthetic Web-PKI ecosystem.

:class:`Ecosystem` generates, deterministically from a seed, everything
the paper's scans observed: a root store, an Intermediate Set of real CA
certificates, a Leaf Set of certificate lifecycle records, per-CA CRLs
(with realistic sharding, entry populations, and byte sizes), revocation
events including the Heartbleed burst of April 2014, hosting/stapling
deployment, and Alexa popularity ranks.

Generation is *sharded* (docs/PERFORMANCE.md): every brand is built from
its own seed-stable RNG substreams by :mod:`repro.scan.shardgen`, so the
corpus is byte-identical whether it is built in one pass, split across
``shards`` in-process groups, or farmed out to ``workers`` processes --
and whether it comes out of the generator or back out of the on-disk
corpus store (:meth:`from_corpus`).

Calibration targets come from :class:`~repro.scan.calibration.Calibration`
and the per-CA profiles in :mod:`repro.ca.profiles`; DESIGN.md §2 explains
why this substitution preserves the behaviour the paper measures.
"""

from __future__ import annotations

import datetime

import numpy as np

from repro.ca.profiles import PAPER_CA_PROFILES, CaProfile
from repro.pki.certificate import Certificate, CertificateBuilder
from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.scan import shardgen
from repro.scan.calibration import Calibration
from repro.scan.crl_model import EcosystemCrl
from repro.scan.records import IntermediateRecord, LeafRecord
from repro.scan.shardgen import BrandState

__all__ = ["Ecosystem", "LeafIndex"]

_UTC = datetime.timezone.utc

#: far-future ordinal standing in for "never revoked" in the index.
_NEVER = datetime.date(9999, 1, 1).toordinal()


def _dt(day: datetime.date) -> datetime.datetime:
    return datetime.datetime(day.year, day.month, day.day, tzinfo=_UTC)


class LeafIndex:
    """Columnar view of the Leaf Set for the per-scan hot loops.

    Built once per ecosystem (lazily); fresh/alive sweeps over a
    scale-0.5 corpus drop from ~0.2 s of per-record predicate calls to a
    couple of numpy mask operations.  The Leaf Set is immutable after
    generation, so the index is never invalidated.
    """

    def __init__(self, leaves: list[LeafRecord]) -> None:
        n = len(leaves)
        self.not_before = np.empty(n, np.int64)
        self.not_after = np.empty(n, np.int64)
        self.birth = np.empty(n, np.int64)
        self.death = np.empty(n, np.int64)
        self.revoked = np.empty(n, np.int64)
        self.is_ev = np.empty(n, bool)
        for i, leaf in enumerate(leaves):
            self.not_before[i] = leaf.not_before.toordinal()
            self.not_after[i] = leaf.not_after.toordinal()
            self.birth[i] = leaf.birth.toordinal()
            self.death[i] = leaf.death.toordinal()
            self.revoked[i] = (
                leaf.revoked_at.toordinal() if leaf.revoked_at else _NEVER
            )
            self.is_ev[i] = leaf.is_ev

    def fresh_mask(self, on: datetime.date) -> np.ndarray:
        ordinal = on.toordinal()
        return (self.not_before <= ordinal) & (ordinal <= self.not_after)

    def alive_mask(self, on: datetime.date) -> np.ndarray:
        ordinal = on.toordinal()
        return (self.birth <= ordinal) & (ordinal <= self.death)

    def revoked_mask(self, on: datetime.date) -> np.ndarray:
        return self.revoked <= on.toordinal()

    def timeline_arrays(self):
        """The array tuple :func:`repro.core.timelines.revocation_series`
        consumes, in its declaration order."""
        return (
            self.not_before,
            self.not_after,
            self.birth,
            self.death,
            self.revoked,
            self.is_ev,
        )


class Ecosystem:
    """Deterministic synthetic PKI ecosystem (see module docstring).

    ``shards`` groups brands for generation (the corpus never depends on
    it); ``workers`` additionally builds those groups in parallel
    processes, shipping columnar parts back to the parent.
    """

    def __init__(
        self,
        calibration: Calibration | None = None,
        profiles: tuple[CaProfile, ...] = PAPER_CA_PROFILES,
        *,
        shards: int = 1,
        workers: int | None = None,
    ) -> None:
        self.calibration = calibration or Calibration()
        self.profiles = profiles
        self._scaffold()
        if workers is not None and workers > 1:
            self._build_from_parts(self._generate_parts_parallel(shards, workers))
        else:
            self._build_in_process(shards)
        self._finalize(assign_alexa=True)

    @classmethod
    def from_corpus(
        cls,
        calibration: Calibration,
        arrays: dict,
        meta: dict,
        profiles: tuple[CaProfile, ...] = PAPER_CA_PROFILES,
    ) -> Ecosystem:
        """Rebuild an ecosystem from stored corpus columns.

        The deterministic scaffold (roots, intermediates, CRL shards,
        URL tables) is regenerated from the calibration; only the
        generated randomness is decoded from ``arrays``.  Raises
        ``ValueError`` on a format/seed/scale mismatch.
        """
        from repro.scan import corpus

        if meta.get("format") != corpus.CORPUS_FORMAT:
            raise ValueError(f"unsupported corpus format {meta.get('format')!r}")
        if meta.get("seed") != calibration.seed or meta.get("scale") != repr(
            calibration.scale
        ):
            raise ValueError("corpus was generated under a different calibration")

        self = cls.__new__(cls)
        self.calibration = calibration
        self.profiles = profiles
        self._scaffold()
        if meta.get("leaf_count") != sum(
            layout.cert_count for layout in self._layouts
        ):
            raise ValueError("corpus leaf count does not match the calibration")
        self.leaves = []
        for profile, layout in zip(profiles, self._layouts):
            state = self.brands[profile.name]
            self.leaves.extend(
                corpus.decode_brand_leaves(
                    arrays, state, self.crls, offset=layout.cert_base
                )
            )
        corpus.decode_crl_population(arrays, self.crls, calibration)
        self._finalize(assign_alexa=False)  # ranks came out of the columns
        return self

    @classmethod
    def from_parts(
        cls,
        calibration: Calibration,
        parts_by_brand: dict,
        profiles: tuple[CaProfile, ...] = PAPER_CA_PROFILES,
    ) -> Ecosystem:
        """Assemble an ecosystem from pre-built columnar brand parts.

        The supervised corpus builder checkpoints each shard's parts as
        it completes; a resumed build merges checkpointed and freshly
        generated parts through this one path, so interrupted and
        uninterrupted builds converge on the same ecosystem (the parts
        are keyed on brand substreams, not on which run produced them).
        """
        self = cls.__new__(cls)
        self.calibration = calibration
        self.profiles = profiles
        self._scaffold()
        missing = [
            profile.name
            for profile in profiles
            if profile.name not in parts_by_brand
        ]
        if missing:
            raise ValueError(f"missing brand parts: {', '.join(missing)}")
        self._build_from_parts(parts_by_brand)
        self._finalize(assign_alexa=True)
        return self

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _scaffold(self) -> None:
        """Roots, brand states, CRL shards: cheap, fully deterministic."""
        calibration = self.calibration
        self._layouts = shardgen.layout_brands(calibration, self.profiles)
        self._root_cas, self.roots = shardgen.build_roots(
            calibration, self.profiles
        )
        self.root_store: frozenset[bytes] = frozenset(
            cert.fingerprint for cert in self.roots
        )
        self.brands: dict[str, BrandState] = {}
        self.intermediates: list[IntermediateRecord] = []
        self.crls: list[EcosystemCrl] = []
        self._crl_by_url: dict[str, EcosystemCrl] = {}
        for profile, layout in zip(self.profiles, self._layouts):
            state = shardgen.build_brand_scaffold(
                calibration, profile, layout, self._root_cas[profile.name]
            )
            self.brands[profile.name] = state
            self.intermediates.extend(state.intermediate_records)
            self.crls.extend(state.crls)
            self._crl_by_url.update(state.crl_by_url)

    def _build_in_process(self, shards: int) -> None:
        """Generate every brand here, in ``shards`` groups (grouping is
        pure bookkeeping -- each brand only reads its own substreams)."""
        calibration = self.calibration
        plan = shardgen.plan_shards(calibration, self.profiles, shards)
        leaves_by_brand: dict[str, list[LeafRecord]] = {}
        for group in plan:
            for name in group:
                state = self.brands[name]
                # Scaffold already built; run the remaining brand chain.
                brand_leaves = shardgen.build_brand_leaves(calibration, state)
                shardgen.assign_brand_revocations(
                    calibration, state, brand_leaves
                )
                shardgen.populate_brand_synthetic(calibration, state)
                leaves_by_brand[name] = brand_leaves
        self.leaves = []
        for profile in self.profiles:
            self.leaves.extend(leaves_by_brand[profile.name])

    def _generate_parts_parallel(self, shards: int, workers: int) -> dict:
        """Columnar brand parts from a process pool, one task per shard."""
        from repro.exec.pool import run_pool

        calibration = self.calibration
        shards = max(shards, workers)
        plan = [
            group
            for group in shardgen.plan_shards(calibration, self.profiles, shards)
            if group
        ]
        parts_by_brand: dict[str, dict] = {}
        for shard_parts in run_pool(
            shardgen.build_shard_parts,
            [(calibration, group, self.profiles) for group in plan],
            workers=workers,
        ):
            parts_by_brand.update(shard_parts)
        return parts_by_brand

    def _build_from_parts(self, parts_by_brand: dict) -> None:
        """Decode worker-built columnar parts into this scaffold.

        Fresh brand states generated in the workers carry entries and
        counters; our own states only have the scaffold.  Decoding per
        brand attaches both and rebuilds the leaf records.
        """
        from repro.scan import corpus

        calibration = self.calibration
        self.leaves = []
        for profile, layout in zip(self.profiles, self._layouts):
            state = self.brands[profile.name]
            arrays = parts_by_brand[profile.name]
            self.leaves.extend(
                corpus.decode_brand_leaves(arrays, state, self.crls, offset=0)
            )
            corpus.decode_crl_population(arrays, state.crls, calibration)

    def _finalize(self, assign_alexa: bool) -> None:
        """Merge-time global stages + derived counts."""
        if assign_alexa:
            shardgen.assign_alexa_ranks(self.calibration, self.leaves)
        #: count of scan-visible but invalid certificates (self-signed
        #: router certs etc.); tracked as a count, per §3.1.
        targets = self.calibration.targets
        ratio = targets.unique_certs_seen / targets.leaf_set_size
        self.invalid_cert_count = int(len(self.leaves) * (ratio - 1.0))
        self._leaf_index: LeafIndex | None = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def leaf(self, cert_id: int) -> LeafRecord:
        leaf = self.leaves[cert_id]
        assert leaf.cert_id == cert_id
        return leaf

    def crl_for_url(self, url: str) -> EcosystemCrl:
        return self._crl_by_url[url]

    def brand_state(self, name: str) -> BrandState:
        return self.brands[name]

    @property
    def leaf_count(self) -> int:
        return len(self.leaves)

    @property
    def leaf_index(self) -> LeafIndex:
        if self._leaf_index is None:
            self._leaf_index = LeafIndex(self.leaves)
        return self._leaf_index

    def fresh_leaves(self, on: datetime.date) -> list[LeafRecord]:
        leaves = self.leaves
        return [leaves[i] for i in np.nonzero(self.leaf_index.fresh_mask(on))[0]]

    def alive_leaves(self, on: datetime.date) -> list[LeafRecord]:
        leaves = self.leaves
        return [leaves[i] for i in np.nonzero(self.leaf_index.alive_mask(on))[0]]

    def alive_ids(self, on: datetime.date) -> list[int]:
        """cert_ids advertised on ``on`` (cert_id == index invariant)."""
        return np.nonzero(self.leaf_index.alive_mask(on))[0].tolist()

    def total_crl_entries(self, on: datetime.date) -> int:
        return sum(crl.entry_count(on) for crl in self.crls)

    # -- materialisation -----------------------------------------------

    def materialize(self, leaf: LeafRecord) -> Certificate:
        """Build the real, signed certificate for a leaf record."""
        state = self.brands[leaf.brand]
        index = next(
            i
            for i, rec in enumerate(state.intermediate_records)
            if rec.intermediate_id == leaf.intermediate_id
        )
        issuer_ca = state.intermediate_cas[index]
        keys = KeyPair.generate(f"leaf/{leaf.cert_id}/{self.calibration.seed}")
        builder = (
            CertificateBuilder()
            .subject(Name.make(f"site{leaf.cert_id}.example"))
            .issuer(issuer_ca.name)
            .serial_number(leaf.serial_number)
            .public_key(keys.public_key)
            .validity(_dt(leaf.not_before), _dt(leaf.not_after))
        )
        if leaf.crl_url:
            builder.crl_urls([leaf.crl_url])
        if leaf.ocsp_url:
            builder.ocsp_urls([leaf.ocsp_url])
        if leaf.is_ev:
            builder.ev()
        return builder.sign(issuer_ca.keys)

    def chain_for(self, leaf: LeafRecord) -> list[Certificate]:
        """[leaf certificate, intermediate, root] for chain verification."""
        state = self.brands[leaf.brand]
        index = next(
            i
            for i, rec in enumerate(state.intermediate_records)
            if rec.intermediate_id == leaf.intermediate_id
        )
        issuer_ca = state.intermediate_cas[index]
        root_ca = self._root_cas[leaf.brand]
        return [self.materialize(leaf), issuer_ca.certificate, root_ca.certificate]
