"""Lightweight per-certificate records.

The paper's Leaf Set holds 5 M certificates; even scaled down, carrying a
fully materialised :class:`~repro.pki.certificate.Certificate` per leaf
would dominate memory for no analytical gain.  :class:`LeafRecord` is a
``__slots__`` dataclass holding exactly the fields the analyses consume;
real certificates are materialised on demand (see
:meth:`repro.scan.ecosystem.Ecosystem.materialize`).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.revocation.reason import ReasonCode

__all__ = ["IntermediateRecord", "LeafRecord", "SyntheticRevocation"]


@dataclass(slots=True)
class LeafRecord:
    """One Leaf Set certificate and its observed lifecycle."""

    cert_id: int
    brand: str
    intermediate_id: int
    serial_number: int
    not_before: datetime.date
    not_after: datetime.date
    #: first/last dates the certificate was advertised by any host.
    birth: datetime.date
    death: datetime.date
    is_ev: bool
    crl_url: str | None
    ocsp_url: str | None
    revoked_at: datetime.date | None = None
    revocation_reason: ReasonCode | None = None
    #: number of IPv4 servers advertising this certificate.
    server_count: int = 1
    #: how many of those servers have OCSP Stapling enabled.
    stapling_servers: int = 0
    #: Alexa popularity rank of the certificate's site, if in the top list.
    alexa_rank: int | None = None

    # -- timeline predicates (paper §3.3) -----------------------------------

    def is_fresh(self, on: datetime.date) -> bool:
        """Within [notBefore, notAfter]."""
        return self.not_before <= on <= self.not_after

    def is_alive(self, on: datetime.date) -> bool:
        """Advertised by at least one host on ``on``."""
        return self.birth <= on <= self.death

    def is_revoked_by(self, on: datetime.date) -> bool:
        return self.revoked_at is not None and self.revoked_at <= on

    @property
    def is_revoked(self) -> bool:
        return self.revoked_at is not None

    @property
    def has_crl(self) -> bool:
        return self.crl_url is not None

    @property
    def has_ocsp(self) -> bool:
        return self.ocsp_url is not None

    @property
    def has_revocation_info(self) -> bool:
        return self.has_crl or self.has_ocsp

    @property
    def validity_days(self) -> int:
        return (self.not_after - self.not_before).days


@dataclass(slots=True)
class IntermediateRecord:
    """One Intermediate Set CA certificate."""

    intermediate_id: int
    brand: str
    subject: str
    #: SHA-256 of the intermediate's public key -- the CRLSet parent key.
    spki_hash: bytes
    has_crl: bool
    has_ocsp: bool
    not_before: datetime.date
    not_after: datetime.date
    revoked_at: datetime.date | None = None

    @property
    def has_revocation_info(self) -> bool:
        return self.has_crl or self.has_ocsp


@dataclass(slots=True)
class SyntheticRevocation:
    """A CRL entry for a certificate never observed in scans.

    The paper's CRLs carry 11.46 M entries but only ~420 k belong to
    scan-observed certificates; the rest are modelled either in bulk
    (hidden counts, for the big CRLs) or -- on CRLs small enough to be
    CRLSet-eligible -- as these individually identified records.
    """

    serial_number: int
    revoked_at: datetime.date
    reason: ReasonCode | None
    cert_not_after: datetime.date
