"""Export/import of measurement artefacts.

The paper releases its data at sslresearch.org; this module is the
equivalent for the reproduction: it serialises the study's derived
artefacts (Leaf Set records, scan snapshots, daily CRL series, CRLSet
history) to plain JSON/CSV files so they can be analysed outside this
library, and loads them back for offline analysis.

Layout of an export directory::

    manifest.json        calibration + corpus summary
    leaf_set.csv         one row per Leaf Set certificate
    scans.json           cert-ids observed per weekly scan
    crl_series.csv       per-CRL daily entry counts over the crawl window
    crlset_daily.csv     CRLSet entry counts / additions / removals per day

:class:`ArtifactCache` is the opt-in on-disk cache behind
``MeasurementStudy(cache_dir=...)``: generated ecosystems are persisted
as columnar SQLite corpus stores (:mod:`repro.scan.corpus_store`) keyed
on a digest of the full calibration, so repeated runs with the same
scale/seed/calibration skip regeneration and ``run_all`` workers load
the corpus out-of-core instead of rebuilding it.
"""

from __future__ import annotations

import csv
import dataclasses
import datetime
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.pipeline import MeasurementStudy
from repro.obs import NULL_OBS, Observability
from repro.scan import corpus, corpus_store
from repro.scan.calibration import Calibration
from repro.scan.ecosystem import Ecosystem

__all__ = [
    "ArtifactCache",
    "ExportedStudy",
    "calibration_digest",
    "export_study",
    "load_export",
]

_DATE = "%Y-%m-%d"


def _iso(day: datetime.date) -> str:
    return day.strftime(_DATE)


# -- artifact cache ----------------------------------------------------------


def calibration_digest(calibration: Calibration) -> str:
    """Stable hex digest over every calibration field.

    Any calibration change -- not just scale/seed -- must miss the cache,
    so the digest covers the full field dict (scalars and dates only, so
    ``repr`` is deterministic across processes).
    """
    payload = repr(sorted(dataclasses.asdict(calibration).items()))
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


class ArtifactCache:
    """Out-of-core corpus cache for expensive study substrates.

    Each entry is a ``corpus-<digest>.sqlite`` columnar store holding only
    the corpus's generated randomness (the deterministic scaffold is
    rebuilt from the calibration on load).  Writes are atomic (temp file +
    ``os.replace``) so a crashed or concurrent run can never leave a
    truncated store behind; readers open the file read-only, and anything
    unreadable -- missing, truncated, foreign format, stale schema -- is
    treated as a miss.
    """

    def __init__(
        self, directory: str | Path, obs: Observability | None = None
    ) -> None:
        self.directory = Path(directory)
        self.obs = obs if obs is not None else NULL_OBS

    def ecosystem_path(self, calibration: Calibration) -> Path:
        digest = calibration_digest(calibration)
        return self.directory / f"corpus-{digest}.sqlite"

    def has_ecosystem(self, calibration: Calibration) -> bool:
        """Cheap store-presence probe: meta readable and matching.

        Lets ``run_all`` pre-warm the store without materialising the
        ecosystem in the parent process (workers load it themselves;
        a small parent heap keeps fork cheap).
        """
        path = self.ecosystem_path(calibration)
        try:
            meta = corpus_store.read_meta(path)
            return (
                meta.get("format") == corpus.CORPUS_FORMAT
                and meta.get("seed") == calibration.seed
                and meta.get("scale") == repr(calibration.scale)
            )
        except Exception:
            return False

    def load_ecosystem(self, calibration: Calibration) -> Ecosystem | None:
        path = self.ecosystem_path(calibration)
        digest = calibration_digest(calibration)
        try:
            arrays, meta = corpus_store.read_corpus(path)
            # Digest checks inside the try: silent corruption (a flipped
            # byte in a column blob parses fine) must be a miss too, and
            # per-brand digests catch damage the decoder would absorb.
            if meta.get("corpus_digest") != corpus.corpus_digest(arrays):
                raise ValueError("corpus digest mismatch")
            layouts = meta.get("brand_layouts") or []
            if layouts and meta.get("brand_digests") != corpus.brand_digests(
                arrays, layouts
            ):
                raise ValueError("brand digest mismatch")
            loaded = Ecosystem.from_corpus(calibration, arrays, meta)
        except Exception:
            # A cache read must never fail a run: missing, unreadable,
            # truncated, or garbage entries (sqlite and the decoder raise
            # arbitrary exception types on corrupt input) are all misses.
            if self.obs.enabled:
                self.obs.tracer.event("artifact_cache.miss", calibration=digest)
                self.obs.metrics.counter("artifact_cache.misses").inc()
            return None
        if self.obs.enabled:
            self.obs.tracer.event("artifact_cache.hit", calibration=digest)
            self.obs.metrics.counter("artifact_cache.hits").inc()
        return loaded

    def store_ecosystem(
        self, calibration: Calibration, ecosystem: Ecosystem
    ) -> Path:
        path = self.ecosystem_path(calibration)
        if self.obs.enabled:
            self.obs.tracer.event(
                "artifact_cache.store",
                calibration=calibration_digest(calibration),
            )
            self.obs.metrics.counter("artifact_cache.stores").inc()
        arrays, meta = corpus.encode_corpus(ecosystem)
        return corpus_store.write_corpus(path, arrays, meta)


def export_study(study: MeasurementStudy, directory: str | Path) -> Path:
    """Write the study's artefacts; returns the export directory."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    eco = study.ecosystem
    cal = study.calibration

    manifest = {
        "paper": "An End-to-End Measurement of Certificate Revocation in the Web's PKI (IMC 2015)",
        "scale": cal.scale,
        "seed": cal.seed,
        "leaf_count": len(eco.leaves),
        "intermediate_count": len(eco.intermediates),
        "crl_count": len(eco.crls),
        "scan_dates": [_iso(d) for d in cal.scan_dates],
        "crawl_start": _iso(cal.crawl_start),
        "crawl_end": _iso(cal.crawl_end),
    }
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))

    with open(root / "leaf_set.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "cert_id", "brand", "serial", "not_before", "not_after",
                "birth", "death", "is_ev", "crl_url", "ocsp_url",
                "revoked_at", "reason", "server_count", "stapling_servers",
                "alexa_rank",
            ]
        )
        for leaf in eco.leaves:
            writer.writerow(
                [
                    leaf.cert_id,
                    leaf.brand,
                    leaf.serial_number,
                    _iso(leaf.not_before),
                    _iso(leaf.not_after),
                    _iso(leaf.birth),
                    _iso(leaf.death),
                    int(leaf.is_ev),
                    leaf.crl_url or "",
                    leaf.ocsp_url or "",
                    _iso(leaf.revoked_at) if leaf.revoked_at else "",
                    leaf.revocation_reason.name if leaf.revocation_reason else "",
                    leaf.server_count,
                    leaf.stapling_servers,
                    leaf.alexa_rank if leaf.alexa_rank is not None else "",
                ]
            )

    scans = {
        _iso(snapshot.date): sorted(snapshot.cert_ids) for snapshot in study.scans
    }
    (root / "scans.json").write_text(json.dumps(scans))

    with open(root / "crl_series.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["date", "url", "entry_count", "additions"])
        for day in cal.crawl_dates[:: max(1, len(cal.crawl_dates) // 60)]:
            for observation in study.crawler.crawl_day(day):
                writer.writerow(
                    [
                        _iso(day),
                        observation.url,
                        observation.entry_count,
                        observation.additions,
                    ]
                )

    history = study.crlset_history
    with open(root / "crlset_daily.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["date", "entries", "additions", "removals"])
        for day in sorted(history.daily_entry_counts):
            writer.writerow(
                [
                    _iso(day),
                    history.daily_entry_counts[day],
                    history.daily_additions.get(day, 0),
                    history.daily_removals.get(day, 0),
                ]
            )
    return root


@dataclass(frozen=True)
class ExportedStudy:
    """A loaded export, for analysis without the generator."""

    manifest: dict
    leaves: list[dict]
    scans: dict[datetime.date, frozenset[int]]
    crlset_daily: dict[datetime.date, dict[str, int]]

    @property
    def leaf_count(self) -> int:
        return len(self.leaves)

    def revoked_leaves(self) -> list[dict]:
        return [row for row in self.leaves if row["revoked_at"]]

    def fresh_revoked_fraction(self, on: datetime.date) -> float:
        fresh = [
            row
            for row in self.leaves
            if row["not_before"] <= on <= row["not_after"]
        ]
        if not fresh:
            return 0.0
        revoked = sum(
            1 for row in fresh if row["revoked_at"] and row["revoked_at"] <= on
        )
        return revoked / len(fresh)


def load_export(directory: str | Path) -> ExportedStudy:
    root = Path(directory)
    manifest = json.loads((root / "manifest.json").read_text())

    leaves: list[dict] = []
    with open(root / "leaf_set.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            leaves.append(
                {
                    "cert_id": int(row["cert_id"]),
                    "brand": row["brand"],
                    "not_before": _parse(row["not_before"]),
                    "not_after": _parse(row["not_after"]),
                    "birth": _parse(row["birth"]),
                    "death": _parse(row["death"]),
                    "is_ev": row["is_ev"] == "1",
                    "crl_url": row["crl_url"] or None,
                    "ocsp_url": row["ocsp_url"] or None,
                    "revoked_at": _parse(row["revoked_at"]) if row["revoked_at"] else None,
                    "reason": row["reason"] or None,
                    "alexa_rank": int(row["alexa_rank"]) if row["alexa_rank"] else None,
                }
            )

    scans_raw = json.loads((root / "scans.json").read_text())
    scans = {
        _parse(date): frozenset(cert_ids) for date, cert_ids in scans_raw.items()
    }

    crlset_daily: dict[datetime.date, dict[str, int]] = {}
    with open(root / "crlset_daily.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            crlset_daily[_parse(row["date"])] = {
                "entries": int(row["entries"]),
                "additions": int(row["additions"]),
                "removals": int(row["removals"]),
            }
    return ExportedStudy(
        manifest=manifest, leaves=leaves, scans=scans, crlset_daily=crlset_daily
    )


def _parse(text: str) -> datetime.date:
    return datetime.datetime.strptime(text, _DATE).date()
