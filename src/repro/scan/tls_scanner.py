"""Michigan-style IPv4 TLS handshake scans: OCSP Stapling measurement.

Reproduces §4.3 and Figure 3.  A single-connection scan under-counts
stapling support because nginx-like servers with a cold staple cache omit
the staple on the first request; repeated connections (the paper probed
20,000 random servers 10 times, 3 s apart) reveal the true support level.

The per-server behaviour is mechanistic: each stapling-enabled server has
a staple-cache state (warm with probability ``1 - staple_cold_probability``
at first probe) and a background refetch that completes after a random
delay, exactly like :class:`repro.revocation.stapling.StapleCache`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.obs import NULL_OBS, Observability
from repro.scan.calibration import Calibration
from repro.scan.ecosystem import Ecosystem
from repro.scan.records import LeafRecord

__all__ = ["StaplingProbeResult", "StaplingSummary", "TlsHandshakeScanner"]


@dataclass(frozen=True)
class StaplingProbeResult:
    """Figure 3's series: cumulative stapling observations per probe."""

    probes: int
    #: fraction of stapling-capable servers observed stapling within the
    #: first k probes, indexed 1..probes.
    observed_fraction: list[float]

    @property
    def single_probe_underestimate(self) -> float:
        """How much a single-connection scan under-counts support."""
        return 1.0 - self.observed_fraction[0]


@dataclass(frozen=True)
class StaplingSummary:
    """§4.3's deployment statistics."""

    servers_total: int
    servers_stapling: int
    certs_total: int
    certs_any_stapling: int
    certs_all_stapling: int
    ev_certs_total: int
    ev_certs_any_stapling: int
    ev_certs_all_stapling: int

    @property
    def server_fraction(self) -> float:
        return self.servers_stapling / self.servers_total if self.servers_total else 0.0

    @property
    def cert_any_fraction(self) -> float:
        return self.certs_any_stapling / self.certs_total if self.certs_total else 0.0

    @property
    def cert_all_fraction(self) -> float:
        return self.certs_all_stapling / self.certs_total if self.certs_total else 0.0

    @property
    def ev_any_fraction(self) -> float:
        return (
            self.ev_certs_any_stapling / self.ev_certs_total
            if self.ev_certs_total
            else 0.0
        )

    @property
    def ev_all_fraction(self) -> float:
        return (
            self.ev_certs_all_stapling / self.ev_certs_total
            if self.ev_certs_total
            else 0.0
        )


class TlsHandshakeScanner:
    """Simulates the full-IPv4 TLS handshake scan of March 28, 2015."""

    def __init__(
        self,
        ecosystem: Ecosystem,
        seed: int = 7,
        obs: Observability | None = None,
    ) -> None:
        self.ecosystem = ecosystem
        self.calibration: Calibration = ecosystem.calibration
        self._rng = random.Random(seed)
        self.obs = obs if obs is not None else NULL_OBS

    def _fresh_advertised(self) -> list[LeafRecord]:
        end = self.calibration.measurement_end
        return [
            leaf
            for leaf in self.ecosystem.leaves
            if leaf.is_fresh(end) and leaf.is_alive(end)
        ]

    def summary(self) -> StaplingSummary:
        """One-connection-per-server scan statistics (§4.3)."""
        leaves = self._fresh_advertised()
        if self.obs.enabled:
            self.obs.tracer.event("tls_scan.summary", certs=len(leaves))
        servers_total = sum(leaf.server_count for leaf in leaves)
        servers_stapling = sum(leaf.stapling_servers for leaf in leaves)
        certs_any = sum(1 for leaf in leaves if leaf.stapling_servers > 0)
        certs_all = sum(
            1 for leaf in leaves if leaf.stapling_servers == leaf.server_count
        )
        ev = [leaf for leaf in leaves if leaf.is_ev]
        ev_any = sum(1 for leaf in ev if leaf.stapling_servers > 0)
        ev_all = sum(1 for leaf in ev if leaf.stapling_servers == leaf.server_count)
        return StaplingSummary(
            servers_total=servers_total,
            servers_stapling=servers_stapling,
            certs_total=len(leaves),
            certs_any_stapling=certs_any,
            certs_all_stapling=certs_all,
            ev_certs_total=len(ev),
            ev_certs_any_stapling=ev_any,
            ev_certs_all_stapling=ev_all,
        )

    def probe_experiment(
        self, server_sample: int = 20_000, probes: int = 10
    ) -> StaplingProbeResult:
        """Figure 3: connect repeatedly to stapling-capable servers.

        For each sampled server the cache is warm at the first probe with
        probability ``1 - staple_cold_probability``; cold caches trigger a
        background fetch whose completion delay is drawn uniformly from
        ``staple_fetch_delay_range_s``, so later probes (spaced
        ``probe_interval_s`` apart) progressively observe the staple.
        """
        cal = self.calibration
        rng = self._rng
        if self.obs.enabled:
            self.obs.tracer.event(
                "tls_scan.probe_experiment",
                server_sample=server_sample,
                probes=probes,
            )
        first_seen: list[int] = []  # probe index (1-based) of first staple
        for _ in range(server_sample):
            if rng.random() >= cal.staple_cold_probability:
                first_seen.append(1)
                continue
            delay = rng.uniform(*cal.staple_fetch_delay_range_s)
            # The cold first probe kicks off the fetch at t=0; probe k
            # happens at t=(k-1)*interval and sees the staple once the
            # fetch has completed.
            ready_probe = None
            for k in range(2, probes + 1):
                if (k - 1) * cal.probe_interval_s >= delay:
                    ready_probe = k
                    break
            first_seen.append(ready_probe if ready_probe is not None else probes + 1)
        fractions = []
        for k in range(1, probes + 1):
            fractions.append(
                sum(1 for probe in first_seen if probe <= k) / server_sample
            )
        return StaplingProbeResult(probes=probes, observed_fraction=fractions)
