"""Scan-side CRL model.

:class:`EcosystemCrl` is the generator's view of one published CRL: the
materialised entries it can identify individually (observed leaf
revocations plus, on CRLSet-eligible CRLs, synthetic never-observed
revocations) and -- on the big CRLs -- a bulk :class:`HiddenPopulation`.
Byte sizes use exact DER arithmetic (:mod:`repro.revocation.sizing`).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.pki.name import Name
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.reason import ReasonCode
from repro.scan.crawl_index import CrlSeries
from repro.scan.hidden import HiddenPopulation

__all__ = ["CrlEntryRecord", "EcosystemCrl"]

_UTC = datetime.timezone.utc


def _noon(day: datetime.date) -> datetime.datetime:
    return datetime.datetime(day.year, day.month, day.day, 12, 0, tzinfo=_UTC)


@dataclass(slots=True)
class CrlEntryRecord:
    """One individually identified CRL entry."""

    serial_number: int
    revoked_at: datetime.date
    reason: ReasonCode | None
    cert_not_after: datetime.date
    #: cert_id of the Leaf Set certificate this entry revokes, if observed.
    cert_id: int | None = None

    def visible_on(self, day: datetime.date) -> bool:
        """CAs list an entry from revocation until certificate expiry."""
        return self.revoked_at <= day <= self.cert_not_after


@dataclass
class EcosystemCrl:
    """One CRL in the synthetic ecosystem."""

    url: str
    brand: str
    intermediate_id: int
    issuer_name: Name
    issuer_key_hash: bytes
    signature_size: int
    signature_algorithm_oid: str
    serial_bytes: int
    reissue_hours: int = 24
    #: whether Google's internal crawl covers this CRL (CRLSet pipeline).
    covered: bool = False
    entries: list[CrlEntryRecord] = field(default_factory=list)
    hidden: HiddenPopulation | None = None
    #: Leaf Set certificates whose CRL pointer names this URL.
    assigned_cert_count: int = 0
    #: lazily built event timeline (see :attr:`series`).
    _series: CrlSeries | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name in ("entries", "hidden", "serial_bytes"):
            object.__setattr__(self, "_series", None)

    def add_entry(self, entry: CrlEntryRecord) -> None:
        self.entries.append(entry)
        self._series = None  # timeline is stale; rebuilt on next query

    # -- event timeline ------------------------------------------------------

    @property
    def series(self) -> CrlSeries:
        """The precomputed event timeline.

        Invalidated by ``add_entry`` and by reassigning ``entries``/
        ``hidden``; mutating entry records in place requires an explicit
        ``invalidate_series()``.
        """
        if self._series is None:
            self._series = CrlSeries(self)
        return self._series

    def invalidate_series(self) -> None:
        self._series = None

    # -- daily views ---------------------------------------------------------

    def visible_entries(self, day: datetime.date) -> list[CrlEntryRecord]:
        return [entry for entry in self.entries if entry.visible_on(day)]

    def entry_count(self, day: datetime.date) -> int:
        return self.series.entry_count(day)

    def additions_on(self, day: datetime.date) -> int:
        return self.series.additions_on(day)

    # -- sizing --------------------------------------------------------------

    def size_bytes(self, day: datetime.date) -> int:
        """Exact DER size of this CRL as published on ``day``."""
        return self.series.size_bytes(day)

    # -- real encoding (materialised entries only) ---------------------------

    @staticmethod
    def _to_revoked_entry(entry: CrlEntryRecord) -> RevokedEntry:
        return RevokedEntry(
            serial_number=entry.serial_number,
            revocation_date=_noon(entry.revoked_at),
            reason=entry.reason,
        )

    def to_crl(self, day: datetime.date, issuer_keys) -> CertificateRevocationList:
        """A real signed CRL with the materialised entries visible on
        ``day`` (the big hidden-bulk CRLs are never encoded in full)."""
        this_update = _noon(day)
        return CertificateRevocationList.build(
            issuer=self.issuer_name,
            issuer_keys=issuer_keys,
            entries=[
                self._to_revoked_entry(entry) for entry in self.visible_entries(day)
            ],
            this_update=this_update,
            next_update=this_update + datetime.timedelta(hours=self.reissue_hours),
            url=self.url,
        )
