"""Scan-side CRL model.

:class:`EcosystemCrl` is the generator's view of one published CRL: the
materialised entries it can identify individually (observed leaf
revocations plus, on CRLSet-eligible CRLs, synthetic never-observed
revocations) and -- on the big CRLs -- a bulk :class:`HiddenPopulation`.
Byte sizes use exact DER arithmetic (:mod:`repro.revocation.sizing`).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.pki.name import Name
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.reason import ReasonCode
from repro.revocation.sizing import estimated_crl_size, representative_entry_size
from repro.scan.hidden import HiddenPopulation

__all__ = ["CrlEntryRecord", "EcosystemCrl"]

_UTC = datetime.timezone.utc


def _noon(day: datetime.date) -> datetime.datetime:
    return datetime.datetime(day.year, day.month, day.day, 12, 0, tzinfo=_UTC)


@dataclass(slots=True)
class CrlEntryRecord:
    """One individually identified CRL entry."""

    serial_number: int
    revoked_at: datetime.date
    reason: ReasonCode | None
    cert_not_after: datetime.date
    #: cert_id of the Leaf Set certificate this entry revokes, if observed.
    cert_id: int | None = None

    def visible_on(self, day: datetime.date) -> bool:
        """CAs list an entry from revocation until certificate expiry."""
        return self.revoked_at <= day <= self.cert_not_after


@dataclass
class EcosystemCrl:
    """One CRL in the synthetic ecosystem."""

    url: str
    brand: str
    intermediate_id: int
    issuer_name: Name
    issuer_key_hash: bytes
    signature_size: int
    signature_algorithm_oid: str
    serial_bytes: int
    reissue_hours: int = 24
    #: whether Google's internal crawl covers this CRL (CRLSet pipeline).
    covered: bool = False
    entries: list[CrlEntryRecord] = field(default_factory=list)
    hidden: HiddenPopulation | None = None
    #: Leaf Set certificates whose CRL pointer names this URL.
    assigned_cert_count: int = 0

    def add_entry(self, entry: CrlEntryRecord) -> None:
        self.entries.append(entry)

    # -- daily views ---------------------------------------------------------

    def visible_entries(self, day: datetime.date) -> list[CrlEntryRecord]:
        return [entry for entry in self.entries if entry.visible_on(day)]

    def entry_count(self, day: datetime.date) -> int:
        count = sum(1 for entry in self.entries if entry.visible_on(day))
        if self.hidden is not None:
            count += self.hidden.count_at(day)
        return count

    def additions_on(self, day: datetime.date) -> int:
        count = sum(1 for entry in self.entries if entry.revoked_at == day)
        if self.hidden is not None:
            count += self.hidden.additions_on(day)
        return count

    # -- sizing --------------------------------------------------------------

    def size_bytes(self, day: datetime.date) -> int:
        """Exact DER size of this CRL as published on ``day``."""
        materialized = sum(
            len(self._to_revoked_entry(entry).to_der())
            for entry in self.entries
            if entry.visible_on(day)
        )
        hidden_count = self.hidden.count_at(day) if self.hidden is not None else 0
        return estimated_crl_size(
            issuer=self.issuer_name,
            signature_size=self.signature_size,
            signature_algorithm_oid=self.signature_algorithm_oid,
            materialized_entry_bytes=materialized,
            hidden_entry_count=hidden_count,
            hidden_entry_size=representative_entry_size(self.serial_bytes),
        )

    # -- real encoding (materialised entries only) ---------------------------

    @staticmethod
    def _to_revoked_entry(entry: CrlEntryRecord) -> RevokedEntry:
        return RevokedEntry(
            serial_number=entry.serial_number,
            revocation_date=_noon(entry.revoked_at),
            reason=entry.reason,
        )

    def to_crl(self, day: datetime.date, issuer_keys) -> CertificateRevocationList:
        """A real signed CRL with the materialised entries visible on
        ``day`` (the big hidden-bulk CRLs are never encoded in full)."""
        this_update = _noon(day)
        return CertificateRevocationList.build(
            issuer=self.issuer_name,
            issuer_keys=issuer_keys,
            entries=[
                self._to_revoked_entry(entry) for entry in self.visible_entries(day)
            ],
            this_update=this_update,
            next_update=this_update + datetime.timedelta(hours=self.reissue_hours),
            url=self.url,
        )
