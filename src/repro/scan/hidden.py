"""Bulk model of never-observed CRL entries.

The paper's 2,800 CRLs hold 11.46 M entries, but only ~420 k belong to
scan-observed certificates.  For the big CRLs (which the CRLSet pipeline
drops anyway), the remaining population is modelled in bulk by
:class:`HiddenPopulation`: a deterministic daily additions/removals
schedule with the weekly pattern visible in the paper's Figure 9 and a
Heartbleed burst, constructed so that the population hits an exact target
count at the end of the study.
"""

from __future__ import annotations

import datetime
import math

__all__ = ["HiddenPopulation", "weekday_factor"]

#: CA revocation processing shows strong weekday/weekend structure (Fig 9).
_WEEKDAY_FACTORS = (1.25, 1.30, 1.28, 1.22, 1.15, 0.45, 0.35)  # Mon..Sun


def weekday_factor(day: datetime.date) -> float:
    return _WEEKDAY_FACTORS[day.weekday()]


class HiddenPopulation:
    """A deterministic daily schedule of CRL entry additions/removals.

    Exactness: ``count_at(window_end) == target_end`` by construction --
    additions are distributed proportionally to weekday/Heartbleed weights
    and removals absorb the difference.
    """

    def __init__(
        self,
        target_end: int,
        window_start: datetime.date,
        window_end: datetime.date,
        heartbleed_date: datetime.date | None = None,
        heartbleed_boost: float = 6.0,
        heartbleed_decay_days: float = 14.0,
        churn: float = 0.65,
        growth: float = 0.06,
    ) -> None:
        if target_end < 0:
            raise ValueError("target_end must be non-negative")
        if window_end <= window_start:
            raise ValueError("window_end must follow window_start")
        if not 0.0 <= growth <= churn:
            raise ValueError("growth must be in [0, churn]")
        self.window_start = window_start
        self.window_end = window_end
        self.target_end = target_end

        days = (window_end - window_start).days + 1
        dates = [window_start + datetime.timedelta(days=i) for i in range(days)]

        weights = []
        for day in dates:
            weight = weekday_factor(day)
            if heartbleed_date is not None and day >= heartbleed_date:
                age = (day - heartbleed_date).days
                weight *= 1.0 + heartbleed_boost * math.exp(
                    -age / heartbleed_decay_days
                )
            weights.append(weight)
        total_weight = sum(weights)

        additions_total = round(target_end * churn)
        self._additions: dict[datetime.date, int] = {}
        allocated = 0
        for day, weight in zip(dates, weights):
            amount = int(additions_total * weight / total_weight)
            self._additions[day] = amount
            allocated += amount
        # Distribute the integer remainder over the busiest days.
        remainder = additions_total - allocated
        for day, _ in sorted(
            zip(dates, weights), key=lambda pair: -pair[1]
        )[: max(0, remainder)]:
            self._additions[day] += 1

        removals_total = additions_total - round(target_end * growth)
        self._removals: dict[datetime.date, int] = {}
        per_day = removals_total // days
        extra = removals_total - per_day * days
        for i, day in enumerate(dates):
            self._removals[day] = per_day + (1 if i < extra else 0)

        net = sum(self._additions.values()) - sum(self._removals.values())
        self._initial = target_end - net

        # Cumulative counts for O(1)-ish queries.
        self._cumulative: dict[datetime.date, int] = {}
        running = self._initial
        for day in dates:
            running += self._additions[day] - self._removals[day]
            self._cumulative[day] = running

    def additions_on(self, day: datetime.date) -> int:
        return self._additions.get(day, 0)

    def removals_on(self, day: datetime.date) -> int:
        return self._removals.get(day, 0)

    def count_at(self, day: datetime.date) -> int:
        if day < self.window_start:
            return self._initial
        if day > self.window_end:
            day = self.window_end
        return self._cumulative[day]

    @property
    def initial_count(self) -> int:
        return self._initial
