"""Seed-stable RNG substreams for sharded generation.

The ecosystem generator used to thread ONE ``random.Random`` through
every construction stage, which made the corpus a function of the exact
global draw order -- impossible to shard.  :func:`substream` replaces
that discipline: every generation unit (a brand's scaffold, a block of
leaves, a brand's revocation pass, one CRL's synthetic population, the
global Alexa shuffle) derives its own independent ``random.Random`` from
the study seed plus a stable string path.

Because a unit's stream depends only on ``(seed, path)`` -- never on
which shard or process executes it, nor on what ran before it -- the
merged corpus is byte-identical for any shard count and any worker
layout (``tests/scan/test_shardgen.py`` locks this down).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["stream_seed", "substream"]


def stream_seed(seed: int, *path: object) -> int:
    """A 128-bit integer seed derived from ``seed`` and a stable path.

    Path elements are joined with ``/`` after ``str()`` conversion, so
    only str/int/float-like values with deterministic ``str()`` belong
    in a path (enforced here to keep accidental objects out).
    """
    for element in path:
        if not isinstance(element, (str, int)):
            raise TypeError(
                f"stream path elements must be str or int, got {element!r}"
            )
    material = "/".join([str(seed), *[str(element) for element in path]])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


def substream(seed: int, *path: object) -> random.Random:
    """An independent ``random.Random`` for one generation unit."""
    return random.Random(stream_seed(seed, *path))
