"""Daily CRL crawler.

The paper downloaded each of its 2,800 CRLs once per day from October 2,
2014 to March 31, 2015.  :class:`CrlCrawler` produces the same artefact
from the synthetic ecosystem: per-CRL daily entry counts, additions, and
(on demand) byte sizes and entry identity sets.

All per-day queries go through the shared :class:`CrawlIndex`
(precomputed event timelines, O(log n) per lookup).  The ``*_naive``
methods keep the original per-day rescan semantics as reference
implementations; they back the equality tests and the "before" leg of
``benchmarks/bench_pipeline_scaling.py``.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.scan.calibration import Calibration
from repro.scan.crawl_index import CrawlIndex
from repro.scan.crl_model import EcosystemCrl
from repro.scan.ecosystem import Ecosystem

__all__ = ["CrlCrawler", "CrlDailyObservation"]


@dataclass(frozen=True)
class CrlDailyObservation:
    """What one crawl of one CRL recorded."""

    url: str
    date: datetime.date
    entry_count: int
    additions: int


class CrlCrawler:
    """Crawls every ecosystem CRL daily over the crawl window."""

    def __init__(
        self, ecosystem: Ecosystem, index: CrawlIndex | None = None
    ) -> None:
        self.ecosystem = ecosystem
        self.calibration: Calibration = ecosystem.calibration
        self.index = index if index is not None else CrawlIndex(ecosystem)

    def crawl_day(self, date: datetime.date) -> list[CrlDailyObservation]:
        return [
            CrlDailyObservation(
                url=crl.url,
                date=date,
                entry_count=crl.series.entry_count(date),
                additions=crl.series.additions_on(date),
            )
            for crl in self.ecosystem.crls
        ]

    def daily_total_additions(self) -> dict[datetime.date, int]:
        """Figure 9's upper series: new CRL entries per crawl day."""
        return self.index.daily_total_additions()

    def sizes_at(self, date: datetime.date) -> dict[str, int]:
        """Byte size of every CRL as published on ``date`` (Figures 5-6)."""
        return self.index.sizes_at(date)

    def entry_counts_at(self, date: datetime.date) -> dict[str, int]:
        return self.index.entry_counts_at(date)

    def crls(self) -> list[EcosystemCrl]:
        return list(self.ecosystem.crls)

    # -- reference implementations (pre-index semantics) -------------------

    def daily_total_additions_naive(self) -> dict[datetime.date, int]:
        """Per-day rescan of every entry; O(days x entries)."""
        return {
            date: sum(
                self._additions_on_naive(crl, date) for crl in self.ecosystem.crls
            )
            for date in self.calibration.crawl_dates
        }

    def sizes_at_naive(self, date: datetime.date) -> dict[str, int]:
        """Re-encode every visible entry; the pre-index Figure 5/6 path."""
        from repro.revocation.sizing import (
            estimated_crl_size,
            representative_entry_size,
        )

        sizes = {}
        for crl in self.ecosystem.crls:
            materialized = sum(
                len(EcosystemCrl._to_revoked_entry(entry).to_der())
                for entry in crl.entries
                if entry.visible_on(date)
            )
            hidden = crl.hidden.count_at(date) if crl.hidden is not None else 0
            sizes[crl.url] = estimated_crl_size(
                issuer=crl.issuer_name,
                signature_size=crl.signature_size,
                signature_algorithm_oid=crl.signature_algorithm_oid,
                materialized_entry_bytes=materialized,
                hidden_entry_count=hidden,
                hidden_entry_size=representative_entry_size(crl.serial_bytes),
            )
        return sizes

    def entry_counts_at_naive(self, date: datetime.date) -> dict[str, int]:
        return {
            crl.url: self._entry_count_naive(crl, date)
            for crl in self.ecosystem.crls
        }

    @staticmethod
    def _entry_count_naive(crl: EcosystemCrl, date: datetime.date) -> int:
        count = sum(1 for entry in crl.entries if entry.visible_on(date))
        if crl.hidden is not None:
            count += crl.hidden.count_at(date)
        return count

    @staticmethod
    def _additions_on_naive(crl: EcosystemCrl, date: datetime.date) -> int:
        count = sum(1 for entry in crl.entries if entry.revoked_at == date)
        if crl.hidden is not None:
            count += crl.hidden.additions_on(date)
        return count
