"""Daily CRL crawler.

The paper downloaded each of its 2,800 CRLs once per day from October 2,
2014 to March 31, 2015.  :class:`CrlCrawler` produces the same artefact
from the synthetic ecosystem: per-CRL daily entry counts, additions, and
(on demand) byte sizes and entry identity sets.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.scan.calibration import Calibration
from repro.scan.crl_model import EcosystemCrl
from repro.scan.ecosystem import Ecosystem

__all__ = ["CrlCrawler", "CrlDailyObservation"]


@dataclass(frozen=True)
class CrlDailyObservation:
    """What one crawl of one CRL recorded."""

    url: str
    date: datetime.date
    entry_count: int
    additions: int


class CrlCrawler:
    """Crawls every ecosystem CRL daily over the crawl window."""

    def __init__(self, ecosystem: Ecosystem) -> None:
        self.ecosystem = ecosystem
        self.calibration: Calibration = ecosystem.calibration

    def crawl_day(self, date: datetime.date) -> list[CrlDailyObservation]:
        return [
            CrlDailyObservation(
                url=crl.url,
                date=date,
                entry_count=crl.entry_count(date),
                additions=crl.additions_on(date),
            )
            for crl in self.ecosystem.crls
        ]

    def daily_total_additions(self) -> dict[datetime.date, int]:
        """Figure 9's upper series: new CRL entries per crawl day."""
        return {
            date: sum(crl.additions_on(date) for crl in self.ecosystem.crls)
            for date in self.calibration.crawl_dates
        }

    def sizes_at(self, date: datetime.date) -> dict[str, int]:
        """Byte size of every CRL as published on ``date`` (Figures 5-6)."""
        return {crl.url: crl.size_bytes(date) for crl in self.ecosystem.crls}

    def entry_counts_at(self, date: datetime.date) -> dict[str, int]:
        return {crl.url: crl.entry_count(date) for crl in self.ecosystem.crls}

    def crls(self) -> list[EcosystemCrl]:
        return list(self.ecosystem.crls)
