"""Calibration constants and the paper's reported targets.

:class:`Calibration` collects every tunable the ecosystem generator uses,
with defaults chosen so the generated corpus reproduces the paper's
aggregate statistics at any scale.  :class:`PaperTargets` records what the
paper measured, so experiments can print paper-vs-measured tables
(EXPERIMENTS.md) and tests can assert shape bands.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

__all__ = ["Calibration", "PaperTargets"]


@dataclass(frozen=True)
class PaperTargets:
    """Numbers reported in the paper (full scale), for comparison tables."""

    # §3.1 dataset
    unique_certs_seen: int = 38_514_130
    leaf_set_size: int = 5_067_476
    leaf_alive_in_last_scan_fraction: float = 0.452
    intermediate_set_size: int = 1_946
    root_store_size: int = 222
    # §3.2 revocation pointers
    leaf_with_crl: float = 0.999
    leaf_with_ocsp: float = 0.950
    leaf_with_neither: float = 0.0009
    intermediate_with_crl: float = 0.989
    intermediate_with_ocsp: float = 0.485
    unique_crls: int = 2_800
    unique_ocsp_responders: int = 499
    # §4 admin behaviour
    fresh_revoked_at_end: float = 0.08
    fresh_revoked_pre_heartbleed: float = 0.01
    alive_revoked_at_end: float = 0.006
    ev_fresh_revoked_at_end: float = 0.06
    ev_alive_revoked_at_end: float = 0.005
    # §4.3 stapling
    servers_supporting_stapling: float = 0.026
    certs_with_any_stapling_server: float = 0.0519
    certs_with_all_stapling_servers: float = 0.0309
    ev_certs_with_any_stapling_server: float = 0.0315
    ev_certs_with_all_stapling_servers: float = 0.0195
    single_probe_underestimate: float = 0.18
    # §5 CA behaviour
    crl_bytes_per_entry: float = 38.0
    raw_median_crl_kb: float = 0.9
    weighted_median_crl_kb: float = 51.0
    max_crl_mb: float = 76.0
    total_crl_entries: int = 11_461_935
    # §7 CRLSets
    crlset_coverage_fraction: float = 0.0035
    crlset_entries_in_paper: int = 41_105
    crlset_min_entries: int = 15_922
    crlset_max_entries: int = 24_904
    crlset_covered_crls: int = 295
    crlset_parents: int = 62
    covered_crls_fully_covered_fraction: float = 0.756
    days_to_appear_within_one_day: float = 0.60
    days_to_appear_within_two_days: float = 0.90
    median_removal_before_expiry_days: float = 187.0
    alexa_1m_revocations: int = 42_225
    alexa_1m_in_crlset: int = 1_644
    alexa_1k_revocations: int = 392
    alexa_1k_in_crlset: int = 41


@dataclass(frozen=True)
class Calibration:
    """Generator parameters.

    ``scale`` multiplies the paper's full-scale certificate counts; the
    default 0.002 yields a ~10 k-leaf corpus suitable for tests, while
    benchmarks use 0.01 (~50 k leaves).  Fractions are scale-invariant.
    """

    scale: float = 0.002
    seed: int = 20151028

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.scan_count < 2:
            raise ValueError("need at least two scans")
        if self.crawl_end < self.crawl_start:
            raise ValueError("crawl_end precedes crawl_start")

    # -- study window ------------------------------------------------------
    scan_start: datetime.date = datetime.date(2013, 10, 30)
    scan_count: int = 74
    scan_period_days: int = 7
    crawl_start: datetime.date = datetime.date(2014, 10, 2)
    crawl_end: datetime.date = datetime.date(2015, 3, 31)
    measurement_end: datetime.date = datetime.date(2015, 3, 31)
    issuance_start: datetime.date = datetime.date(2011, 1, 1)

    # -- issuance ----------------------------------------------------------
    monthly_growth: float = 1.03
    validity_mix: tuple[tuple[int, float], ...] = (
        (90, 0.05),
        (365, 0.55),
        (730, 0.25),
        (1095, 0.15),
    )
    birth_lag_max_days: int = 14
    ocsp_inclusion_after_adoption: float = 0.97

    # -- revocation dynamics -----------------------------------------------
    heartbleed_date: datetime.date = datetime.date(2014, 4, 7)
    heartbleed_decay_days: float = 14.0
    heartbleed_window_days: int = 75
    #: per-brand steady-state revocation probability is
    #: min(steady_cap, brand_revoked_fraction * steady_share).
    steady_share: float = 0.40
    steady_cap: float = 0.022
    #: fraction of certificates replaced (stop being advertised) well
    #: before expiry.
    early_death_fraction: float = 0.18
    #: probability a revoked cert keeps being advertised (revoked-but-alive).
    keep_advertising_after_revoke: float = 0.08
    #: probability an expired cert is advertised past notAfter.
    advertise_past_expiry: float = 0.08
    expiry_overrun_max_days: int = 90
    #: reason-code mix for revocations (None means no reason extension).
    reason_mix: tuple[tuple[object, float], ...] = (
        (None, 0.70),
        ("UNSPECIFIED", 0.08),
        ("KEY_COMPROMISE", 0.05),
        ("AFFILIATION_CHANGED", 0.04),
        ("SUPERSEDED", 0.06),
        ("CESSATION_OF_OPERATION", 0.05),
        ("PRIVILEGE_WITHDRAWN", 0.015),
        ("CERTIFICATE_HOLD", 0.005),
    )

    # -- hosting / stapling --------------------------------------------------
    server_count_mix: tuple[tuple[int, int, float], ...] = (
        (1, 2, 0.70),
        (3, 10, 0.25),
        (11, 200, 0.05),
    )
    stapling_all_fraction: float = 0.031
    stapling_partial_fraction: float = 0.021
    ev_stapling_all_fraction: float = 0.0195
    ev_stapling_partial_fraction: float = 0.012
    #: staple-cache cold probability on a random probe, and background
    #: fetch delays (seconds) -- shapes Figure 3.
    staple_cold_probability: float = 0.18
    staple_fetch_delay_range_s: tuple[float, float] = (1.0, 25.0)
    probe_interval_s: float = 3.0

    # -- intermediates / roots ---------------------------------------------
    root_count: int = 14
    intermediate_crl_fraction: float = 0.989
    intermediate_ocsp_fraction: float = 0.485
    intermediate_neither_fraction: float = 0.0092

    # -- CRL publication -----------------------------------------------------
    crl_reissue_hours_mix: tuple[tuple[int, float], ...] = (
        (24, 0.95),
        (168, 0.05),
    )
    #: lognormal sigma for per-shard size variance around the CA target.
    shard_size_sigma: float = 0.45

    # -- CRLSets -------------------------------------------------------------
    crlset_size_cap_bytes_full_scale: int = 250 * 1024
    #: covered-CRL entry-count drop threshold, full scale.
    crlset_max_entries_per_crl_full_scale: int = 12_000
    crlset_build_start: datetime.date = datetime.date(2013, 7, 18)
    crlset_gap_start: datetime.date = datetime.date(2014, 11, 15)
    crlset_gap_end: datetime.date = datetime.date(2014, 12, 1)
    #: the "VeriSign Class 3 EV"-style parent removal event.
    crlset_parent_removal_date: datetime.date = datetime.date(2014, 5, 25)
    #: fraction of covered CRLs whose CRLSet coverage is only partial.
    crlset_partial_coverage_fraction: float = 0.24
    crlset_partial_coverage_range: tuple[float, float] = (0.55, 0.98)
    #: per-covered-CRL internal crawl period (hours): min, max.
    crlset_crawl_period_hours: tuple[int, int] = (4, 56)

    # -- derived -------------------------------------------------------------
    # The date sequences are memoised on the instance (a frozen dataclass
    # still has a __dict__): the generator samples issue dates against
    # ``scan_end`` once per leaf, so rebuilding the list per access used
    # to dominate substrate wall-clock.  ``dataclasses.asdict`` only sees
    # fields, so the caches never enter the calibration digest.

    def _memo(self, key: str, build):
        cached = self.__dict__.get(key)
        if cached is None:
            cached = build()
            object.__setattr__(self, key, cached)
        return cached

    @property
    def scan_dates(self) -> tuple[datetime.date, ...]:
        return self._memo(
            "_scan_dates",
            lambda: tuple(
                self.scan_start + datetime.timedelta(days=self.scan_period_days * i)
                for i in range(self.scan_count)
            ),
        )

    @property
    def scan_end(self) -> datetime.date:
        return self.scan_dates[-1]

    @property
    def crawl_dates(self) -> tuple[datetime.date, ...]:
        def build() -> tuple[datetime.date, ...]:
            days = (self.crawl_end - self.crawl_start).days + 1
            return tuple(
                self.crawl_start + datetime.timedelta(days=i) for i in range(days)
            )

        return self._memo("_crawl_dates", build)

    @property
    def crlset_size_cap_bytes(self) -> int:
        """The cap is a property of Google's pipeline, not of our corpus
        size: per-CRL entry counts are driven by the absolute ``avg_crl_kb``
        targets and do not shrink with ``scale``, so neither does this."""
        return self.crlset_size_cap_bytes_full_scale

    @property
    def crlset_max_entries_per_crl(self) -> int:
        return self.crlset_max_entries_per_crl_full_scale

    @property
    def targets(self) -> PaperTargets:
        return PaperTargets()

    def scaled(self, full_scale_count: int) -> int:
        return max(1, round(full_scale_count * self.scale))
