"""Short-lived certificates vs revocation: attack-window analysis.

Topalovic et al. [46] propose certificates so short-lived that revocation
becomes unnecessary: "revoking a certificate is as easy as not renewing
it."  The paper cites this as one of the viable ways out of the revocation
mess (§8, §9).

:func:`attack_window_study` quantifies the trade-off on the synthetic
ecosystem: draw key-compromise events over the revoked population and
measure how long a MITM attacker can use the stolen key under each
*client/issuance regime*:

* ``SOFT_FAIL``  -- 2015-style browser: never learns of the revocation;
  the window runs until the certificate expires.
* ``HARD_FAIL``  -- a checking client: window = administrator reaction
  time + revocation-information propagation (CRL/OCSP cache lifetime).
* ``SHORT_LIVED`` -- no revocation at all; window = time left until the
  (short) expiry, capped by the administrator simply not renewing.
"""

from __future__ import annotations

import datetime
import enum
import random
from dataclasses import dataclass

from repro.mechanisms.base import (
    attack_window_days,
    residual_life_days,
    staleness_window_days,
)
from repro.scan.ecosystem import Ecosystem

__all__ = ["AttackWindowReport", "RevocationRegime", "attack_window_study"]


class RevocationRegime(enum.Enum):
    SOFT_FAIL = "soft-fail client, 1y certs + revocation"
    HARD_FAIL = "hard-fail client, 1y certs + revocation"
    SHORT_LIVED = "short-lived certs (no revocation)"


@dataclass(frozen=True)
class AttackWindowReport:
    """Attack-window distributions (days) per regime."""

    windows: dict[RevocationRegime, list[float]]
    short_lived_days: int

    def mean(self, regime: RevocationRegime) -> float:
        values = self.windows[regime]
        return sum(values) / len(values) if values else 0.0

    def median(self, regime: RevocationRegime) -> float:
        values = sorted(self.windows[regime])
        if not values:
            return 0.0
        return values[len(values) // 2]

    def improvement_factor(self) -> float:
        """Mean soft-fail window over mean short-lived window."""
        short = self.mean(RevocationRegime.SHORT_LIVED)
        return self.mean(RevocationRegime.SOFT_FAIL) / short if short else float("inf")


def attack_window_study(
    ecosystem: Ecosystem,
    short_lived_days: int = 4,
    admin_reaction_days: float = 3.0,
    revocation_propagation_days: float = 4.0,
    sample: int = 2000,
    seed: int = 5,
) -> AttackWindowReport:
    """Monte-Carlo attack windows over the ecosystem's revoked certs.

    For each sampled revoked certificate, a compromise is assumed to have
    happened ``admin_reaction_days`` before its actual revocation date
    (that is what triggered the revocation).  ``revocation_propagation_
    days`` models CRL/OCSP response cache lifetimes -- a hard-failing
    client may trust stale "good" information for that long (§2.2: OCSP
    responses are cacheable for days).
    """
    rng = random.Random(seed)
    revoked = [leaf for leaf in ecosystem.leaves if leaf.revoked_at is not None]
    if not revoked:
        raise ValueError("ecosystem contains no revocations")
    if sample < len(revoked):
        revoked = rng.sample(revoked, sample)

    windows: dict[RevocationRegime, list[float]] = {
        regime: [] for regime in RevocationRegime
    }
    # The window math is the shared repro.mechanisms.base helpers --
    # hard-fail exposure is reaction + staleness, and every window is
    # clamped to the certificate's residual life.
    hard_exposure = staleness_window_days(
        admin_reaction_days, revocation_propagation_days
    )
    for leaf in revoked:
        compromise = leaf.revoked_at - datetime.timedelta(days=admin_reaction_days)

        # Soft-fail: nothing stops the attacker before expiry.
        soft = residual_life_days(leaf.not_after, compromise)
        windows[RevocationRegime.SOFT_FAIL].append(soft)

        # Hard-fail: reaction + propagation, but never past expiry.
        windows[RevocationRegime.HARD_FAIL].append(
            attack_window_days(soft, hard_exposure)
        )

        # Short-lived: the certificate in force at compromise time expires
        # within `short_lived_days`; the administrator stops renewing once
        # they notice, so the window is the remaining slice of the current
        # short certificate plus the reaction time, capped at reaction +
        # one full lifetime.
        residual = rng.uniform(0.0, short_lived_days)
        windows[RevocationRegime.SHORT_LIVED].append(
            attack_window_days(soft, admin_reaction_days + residual)
        )

    return AttackWindowReport(windows=windows, short_lived_days=short_lived_days)
