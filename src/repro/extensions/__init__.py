"""Extensions the paper points at but could not yet measure.

The paper's discussion sections sketch several "near-term improvements"
(§1, §2.2, §7, §9) that had little or no deployment in 2015.  This
package implements them so their effect can be quantified against the
same synthetic ecosystem:

* :mod:`repro.extensions.multistaple` -- the Multiple Certificate Status
  Request TLS extension (RFC 6961 [37]): stapling OCSP responses for the
  *whole chain*, removing the intermediate-check gap that plain stapling
  leaves open.
* :mod:`repro.extensions.shortlived` -- short-lived certificates [46]:
  making revocation unnecessary by making expiry fast.
* :mod:`repro.extensions.onecrl` -- Mozilla's OneCRL [41]: a pushed
  revocation list for *intermediate* certificates only.
"""

from repro.extensions.multistaple import MultiStapleServer, MultiStapleResult
from repro.extensions.onecrl import OneCrl, build_onecrl
from repro.extensions.shortlived import (
    AttackWindowReport,
    RevocationRegime,
    attack_window_study,
)

__all__ = [
    "AttackWindowReport",
    "MultiStapleResult",
    "MultiStapleServer",
    "OneCrl",
    "RevocationRegime",
    "attack_window_study",
    "build_onecrl",
]
