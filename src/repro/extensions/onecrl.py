"""OneCRL: Mozilla's pushed revocation list for intermediates.

Paper §7 footnote 24: "In contrast to CRLSets, OneCRL is for intermediate
certificates.  As of this writing, there are only 8 revoked certificates
on the list."  Revoking an intermediate is the catastrophic case -- a
compromised CA key signs valid certificates for *any* domain (§3.2) --
and intermediates are few, so a complete pushed list is tiny.

:class:`OneCrl` is that list; :func:`build_onecrl` derives it from an
ecosystem's intermediate records; :func:`blast_radius` counts how many
leaf certificates one compromised intermediate endangers -- the reason a
complete intermediate list matters far more per byte than a CRLSet.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.scan.ecosystem import Ecosystem

__all__ = ["OneCrl", "blast_radius", "build_onecrl"]


@dataclass(frozen=True)
class OneCrl:
    """A complete pushed list of revoked intermediates."""

    date: datetime.date
    #: SPKI hashes of revoked intermediate certificates.
    revoked_spkis: frozenset[bytes] = field(default_factory=frozenset)

    def is_revoked(self, spki_hash: bytes) -> bool:
        return spki_hash in self.revoked_spkis

    def blocks_chain(self, intermediate_spkis: list[bytes]) -> bool:
        return any(spki in self.revoked_spkis for spki in intermediate_spkis)

    @property
    def size_bytes(self) -> int:
        """32 bytes per entry plus a small header -- OneCRL stays tiny
        because the intermediate population is tiny."""
        return 16 + 32 * len(self.revoked_spkis)

    def __len__(self) -> int:
        return len(self.revoked_spkis)


def build_onecrl(ecosystem: Ecosystem, at: datetime.date) -> OneCrl:
    """Assemble the OneCRL from intermediates revoked by ``at``."""
    revoked = frozenset(
        record.spki_hash
        for record in ecosystem.intermediates
        if record.revoked_at is not None and record.revoked_at <= at
    )
    return OneCrl(date=at, revoked_spkis=revoked)


def blast_radius(ecosystem: Ecosystem, intermediate_id: int) -> int:
    """Leaf certificates issued under one intermediate: everything a
    compromise of that single CA key endangers."""
    return sum(
        1 for leaf in ecosystem.leaves if leaf.intermediate_id == intermediate_id
    )
