"""Multiple Certificate Status Request (RFC 6961) stapling.

Plain OCSP Stapling only covers the leaf certificate: "the protocol does
not allow the server to include cached OCSP responses for intermediate
certificates" (paper §2.2).  A client that wants intermediate status must
still contact the CA -- which is exactly the latency the staple was meant
to remove.  RFC 6961 lets the server staple a response for *every* chain
element.

:class:`MultiStapleServer` extends the simulation's TLS server with a
per-chain-element staple cache; :func:`chain_check_cost` quantifies the
§2.2 claim by counting the network fetches a strict client still needs
under each stapling mode.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Callable

from repro.net.tls import TlsServer
from repro.pki.certificate import Certificate
from repro.revocation.checker import CheckOutcome, RevocationChecker
from repro.revocation.ocsp import OcspResponse
from repro.revocation.stapling import StapleCache, StaplePolicy

__all__ = ["MultiStapleResult", "MultiStapleServer", "chain_check_cost"]


@dataclass(frozen=True)
class MultiStapleResult:
    """A handshake carrying one staple per non-root chain element."""

    chain: tuple[Certificate, ...]
    #: staples[i] covers chain[i]; None where the server had none cached.
    staples: tuple[OcspResponse | None, ...]

    @property
    def leaf_staple(self) -> OcspResponse | None:
        return self.staples[0] if self.staples else None

    @property
    def complete(self) -> bool:
        """True when every non-root element came with a staple."""
        return all(staple is not None for staple in self.staples)


class MultiStapleServer:
    """A TLS server implementing RFC 6961-style whole-chain stapling.

    ``staple_fetchers[i](at)`` obtains a fresh OCSP response for chain
    element ``i`` from its issuer's responder (or ``None`` if down); each
    element has its own nginx-like cache.
    """

    def __init__(
        self,
        chain: list[Certificate] | tuple[Certificate, ...],
        staple_fetchers: list[Callable[[datetime.datetime], OcspResponse | None]],
        policy: StaplePolicy = StaplePolicy.GOOD_ONLY,
    ) -> None:
        if len(staple_fetchers) != len(chain) - 1:
            raise ValueError("need one staple fetcher per non-root element")
        self.chain = tuple(chain)
        self._fetchers = list(staple_fetchers)
        self._caches = [StapleCache(policy=policy) for _ in staple_fetchers]

    def warm_all(self, at: datetime.datetime) -> None:
        """Prime every cache (a long-running server in steady state)."""
        for cache, fetcher in zip(self._caches, self._fetchers):
            response = fetcher(at)
            if response is not None:
                cache.warm(response)

    def handshake(
        self, at: datetime.datetime, status_request_v2: bool
    ) -> MultiStapleResult:
        if not status_request_v2:
            return MultiStapleResult(chain=self.chain, staples=())
        staples = tuple(
            cache.get_staple(at, lambda fetcher=fetcher: fetcher(at))
            for cache, fetcher in zip(self._caches, self._fetchers)
        )
        return MultiStapleResult(chain=self.chain, staples=staples)

    def plain_tls_server(self) -> TlsServer:
        """The same site with classic leaf-only stapling, for comparison."""
        leaf_cache = StapleCache(policy=StaplePolicy.GOOD_ONLY)
        return TlsServer(
            chain=self.chain,
            stapling_enabled=True,
            staple_cache=leaf_cache,
            staple_fetcher=self._fetchers[0],
        )


@dataclass(frozen=True)
class ChainCheckCost:
    """Network fetches a strict client performs to validate one chain."""

    fetches: int
    outcomes: tuple[CheckOutcome, ...]

    @property
    def definitive(self) -> bool:
        return all(
            outcome in (CheckOutcome.GOOD, CheckOutcome.REVOKED)
            for outcome in self.outcomes
        )


def chain_check_cost(
    chain: tuple[Certificate, ...],
    staples: tuple[OcspResponse | None, ...],
    checker: RevocationChecker,
    at: datetime.datetime,
) -> ChainCheckCost:
    """Validate every non-root element, preferring staples, falling back
    to live OCSP; counts the live fetches the staples failed to avoid."""
    fetches = 0
    outcomes: list[CheckOutcome] = []
    for index in range(len(chain) - 1):
        staple = staples[index] if index < len(staples) else None
        if staple is not None:
            result = checker.check_staple(staple, at)
            if result.outcome is not CheckOutcome.UNAVAILABLE:
                outcomes.append(result.outcome)
                continue
        issuer = chain[min(index + 1, len(chain) - 1)]
        fetches += 1
        outcomes.append(
            checker.check_ocsp(chain[index], issuer.spki_hash, at).outcome
        )
    return ChainCheckCost(fetches=fetches, outcomes=tuple(outcomes))
