"""The repo-specific rule catalogue (RPR001..RPR016).

Each rule enforces one invariant the reproduction's determinism or PKI
correctness depends on; docs/STATIC_ANALYSIS.md ties every rule back to
the paper sections it protects.  Rules are single-node checks where
possible (dispatched by the engine in one pass) and fall back to a
file-level hook where the invariant spans statements (RPR005, and the
dataflow rules RPR003/RPR013/RPR014 via the shared taint substrate in
:mod:`repro.analysis.dataflow`) or files (RPR007, via the project
pre-pass).
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath

from repro.analysis import dataflow
from repro.analysis.dataflow import WALL_CLOCK_CALLS as _WALL_CLOCK
from repro.analysis.engine import FileContext, Rule
from repro.analysis.project import is_experiment_module

__all__ = ["ALL_RULES", "default_rules", "rules_catalogue"]


class WallClockRule(Rule):
    code = "RPR001"
    name = "no-wall-clock"
    summary = (
        "host-clock reads are banned; all time flows through "
        "repro.net.clock.SimClock"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved in _WALL_CLOCK:
            ctx.report(
                node,
                self.code,
                f"call to {resolved}() reads the host clock; take a "
                "SimClock (repro.net.clock) or an explicit datetime instead",
            )


# --------------------------------------------------------------------------
# RPR002 -- no ambient randomness
# --------------------------------------------------------------------------


class AmbientRandomnessRule(Rule):
    code = "RPR002"
    name = "no-ambient-randomness"
    summary = (
        "randomness must come from an explicitly seeded random.Random "
        "threaded as a parameter"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            return
        if resolved == "random.Random":
            if not node.args and not node.keywords:
                ctx.report(
                    node,
                    self.code,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            return
        if resolved == "random.SystemRandom" or resolved.startswith("secrets."):
            ctx.report(
                node,
                self.code,
                f"{resolved} draws OS entropy; results would differ per run",
            )
            return
        if resolved.startswith("random."):
            ctx.report(
                node,
                self.code,
                f"module-level {resolved}() uses the shared global RNG; "
                "construct random.Random(seed) and thread it as a parameter",
            )
            return
        if resolved in ("os.urandom", "uuid.uuid4"):
            ctx.report(
                node,
                self.code,
                f"{resolved}() is nondeterministic; derive bytes from a "
                "seeded RNG or a hash of the seed",
            )


# --------------------------------------------------------------------------
# RPR003 -- no unordered values flowing to emit boundaries (dataflow)
# --------------------------------------------------------------------------


class UnorderedEmitRule(Rule):
    code = "RPR003"
    name = "no-unordered-emit"
    summary = (
        "set/dict-view values must be sorted() before they flow into "
        "json, digests, or report tables -- tracked across statements"
    )

    def check_file(self, tree: ast.Module, ctx: FileContext) -> None:
        for flow in dataflow.file_flows(tree, ctx):
            if flow.category != dataflow.CAT_EMIT_UNORDERED:
                continue
            taint = flow.taint
            if taint.line != flow.sink_line:
                provenance = (
                    f"{taint.detail} constructed at line {taint.line} flows"
                )
            else:
                provenance = f"{taint.detail} reaches"
            ctx.report(
                flow.carrier,
                self.code,
                f"{provenance} into emit sink {flow.sink_name}(...) with "
                "no defined order; wrap it in sorted(...)",
                suggestion=flow.suggestion,
            )


# --------------------------------------------------------------------------
# RPR013 -- no ambient-RNG / wall-clock values in digest inputs (dataflow)
# --------------------------------------------------------------------------


class NondeterministicDigestInputRule(Rule):
    code = "RPR013"
    name = "no-nondeterministic-digest-input"
    summary = (
        "ambient-RNG or wall-clock *values* must not flow into corpus "
        "arrays, Calibration fields, or digest inputs"
    )

    def check_file(self, tree: ast.Module, ctx: FileContext) -> None:
        for flow in dataflow.file_flows(tree, ctx):
            if flow.category != dataflow.CAT_DIGEST_NONDET:
                continue
            taint = flow.taint
            source_kind = (
                "wall-clock" if taint.kind == dataflow.CLOCK else "ambient-RNG"
            )
            ctx.report(
                flow.carrier,
                self.code,
                f"{source_kind} value from {taint.detail} (line "
                f"{taint.line}) flows into {flow.sink_name}; corpus "
                "arrays, calibration fields, and digest inputs must be "
                "derived from the seed (SimClock / seeded random.Random)",
                suggestion=flow.suggestion,
            )


# --------------------------------------------------------------------------
# RPR014 -- stats exports go through the sorted-key helpers (dataflow)
# --------------------------------------------------------------------------


class StatsExportRule(Rule):
    code = "RPR014"
    name = "stats-export-via-as-dict"
    summary = (
        "FetchStats/FailureRecord values flowing to report emission "
        "must pass through the sorted-key .as_dict() export helpers"
    )

    def check_file(self, tree: ast.Module, ctx: FileContext) -> None:
        for flow in dataflow.file_flows(tree, ctx):
            if flow.category != dataflow.CAT_STATS_EXPORT:
                continue
            ctx.report(
                flow.carrier,
                self.code,
                f"{flow.taint.detail} (line {flow.taint.line}) flows into "
                f"{flow.sink_name}(...) around the export helper; use "
                ".as_dict() so key order and field derivation stay stable",
                suggestion=flow.suggestion,
            )


# --------------------------------------------------------------------------
# RPR004 -- exception taxonomy
# --------------------------------------------------------------------------

_TRANSPORT_EXCEPTIONS = frozenset(
    {
        "DnsError",
        "TimeoutError",
        "TimeoutError_",
        "TlsError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionAbortedError",
        "BrokenPipeError",
        "gaierror",
    }
)
_TAXONOMY_NAMES = ("FailureClass", "FetchOutcome")
_TAXONOMY_PATHS = ("repro/net/", "repro/revocation/")


class ExceptionTaxonomyRule(Rule):
    code = "RPR004"
    name = "exception-taxonomy"
    summary = (
        "no bare/silent excepts; transport errors in net/revocation must "
        "map into FailureClass"
    )
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(
                node,
                self.code,
                "bare 'except:' swallows everything including "
                "KeyboardInterrupt; name the exceptions you expect",
            )
            return
        caught = self._caught_names(node.type)
        if {"Exception", "BaseException"} & caught and self._is_silent(node):
            ctx.report(
                node,
                self.code,
                "'except Exception: pass' hides failures from the "
                "FailureClass taxonomy; classify or re-raise",
            )
            return
        if not any(part in ctx.rel_path for part in _TAXONOMY_PATHS):
            return
        if caught & _TRANSPORT_EXCEPTIONS and not self._classifies(node):
            ctx.report(
                node,
                self.code,
                f"transport exception ({', '.join(sorted(caught & _TRANSPORT_EXCEPTIONS))}) "
                "caught without assigning a FailureClass/FetchOutcome; "
                "every network failure must land in the taxonomy",
            )

    @staticmethod
    def _caught_names(type_node: ast.expr) -> set[str]:
        nodes = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        names: set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        return names

    @staticmethod
    def _is_silent(node: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        )

    @staticmethod
    def _classifies(node: ast.ExceptHandler) -> bool:
        for sub in ast.walk(ast.Module(body=node.body, type_ignores=[])):
            if isinstance(sub, ast.Raise):
                return True  # re-raising defers classification to a caller
            if isinstance(sub, ast.Name) and sub.id in _TAXONOMY_NAMES:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr in _TAXONOMY_NAMES:
                return True
        return False


# --------------------------------------------------------------------------
# RPR005 -- enum-exhaustive dispatch
# --------------------------------------------------------------------------

_EXHAUSTIVE = re.compile(r"#\s*repro:\s*exhaustive\((?P<enum>\w+)\)")


class EnumExhaustiveRule(Rule):
    code = "RPR005"
    name = "enum-exhaustive"
    summary = (
        "exhaustive-dispatch annotations must reference every enum "
        "member; adding a member breaks the build until dispatchers "
        "catch up"
    )

    def check_file(self, tree: ast.Module, ctx: FileContext) -> None:
        statements = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.stmt) and hasattr(node, "lineno")
        ]
        for line_no, text in enumerate(ctx.source_lines, start=1):
            match = _EXHAUSTIVE.search(text)
            if not match:
                continue
            enum_name = match.group("enum")
            stmt = self._statement_for(statements, line_no)
            if stmt is None:
                ctx.report_at(
                    line_no,
                    text.index("#"),
                    self.code,
                    f"exhaustive({enum_name}) annotation is not attached to "
                    "any statement",
                )
                continue
            members = ctx.project.enums.get(enum_name)
            if members is None:
                ctx.report_at(
                    line_no,
                    text.index("#"),
                    self.code,
                    f"exhaustive({enum_name}): no enum named {enum_name!r} "
                    "found in the analysed files",
                )
                continue
            referenced = {
                sub.attr
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Attribute)
                and self._qualifier(sub) == enum_name
            }
            missing = sorted(set(members) - referenced)
            if missing:
                ctx.report_at(
                    stmt.lineno,
                    stmt.col_offset,
                    self.code,
                    f"dispatch on {enum_name} is missing member(s) "
                    f"{', '.join(missing)}; handle them or drop the "
                    "exhaustive annotation",
                )

    @staticmethod
    def _qualifier(attr: ast.Attribute) -> str | None:
        value = attr.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
        return None

    @staticmethod
    def _statement_for(
        statements: list[ast.stmt], line_no: int
    ) -> ast.stmt | None:
        """The statement an annotation on ``line_no`` attaches to.

        Convention: the comment sits either on the statement's first
        line (trailing) or on its own line directly above.
        """

        def span(stmt: ast.stmt) -> int:
            return (stmt.end_lineno or stmt.lineno) - stmt.lineno

        starting = [stmt for stmt in statements if stmt.lineno == line_no]
        if starting:
            return max(starting, key=span)
        following = [stmt for stmt in statements if stmt.lineno == line_no + 1]
        if following:
            return max(following, key=span)
        covering = [
            stmt
            for stmt in statements
            if stmt.lineno <= line_no <= (stmt.end_lineno or stmt.lineno)
        ]
        if covering:
            return min(covering, key=span)
        return None


# --------------------------------------------------------------------------
# RPR006 -- raw DER bytes outside repro/asn1
# --------------------------------------------------------------------------

#: X.690 tag numbers RFC 5280 structures actually use (repro.asn1.der.Tag).
_DER_TAGS = frozenset(
    {
        0x01,  # BOOLEAN
        0x02,  # INTEGER
        0x03,  # BIT STRING
        0x04,  # OCTET STRING
        0x05,  # NULL
        0x06,  # OID
        0x0A,  # ENUMERATED
        0x0C,  # UTF8String
        0x13,  # PrintableString
        0x16,  # IA5String
        0x17,  # UTCTime
        0x18,  # GeneralizedTime
        0x30,  # SEQUENCE
        0x31,  # SET
        0xA0,
        0xA1,
        0xA2,
        0xA3,  # common context-specific constructed tags
    }
)
_DER_HOME = "repro/asn1/"
_TAG_ENCODERS = ("encode_tlv", "encode_context")


class RawDerBytesRule(Rule):
    code = "RPR006"
    name = "raw-der-bytes"
    summary = (
        "DER tag/length literals outside repro/asn1 must use the named "
        "Tag constants"
    )
    node_types = (ast.Constant, ast.Call, ast.Compare)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if _DER_HOME in ctx.rel_path:
            return
        if isinstance(node, ast.Constant):
            self._check_bytes(node, ctx)
        elif isinstance(node, ast.Call):
            self._check_encoder_call(node, ctx)
        elif isinstance(node, ast.Compare):
            self._check_tag_compare(node, ctx)

    def _check_bytes(self, node: ast.Constant, ctx: FileContext) -> None:
        value = node.value
        if (
            isinstance(value, bytes)
            and 1 <= len(value) <= 8
            and value[0] in _DER_TAGS
        ):
            ctx.report(
                node,
                self.code,
                f"bytes literal {value!r} starts with DER tag "
                f"0x{value[0]:02X}; build it via repro.asn1 "
                "(der.encode_tlv / der.Tag constants)",
            )

    def _check_encoder_call(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            return
        if not any(
            resolved == name or resolved.endswith("." + name)
            for name in _TAG_ENCODERS
        ):
            return
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, int
        ):
            ctx.report(
                node.args[0],
                self.code,
                f"raw tag number 0x{node.args[0].value:02X} passed to "
                f"{resolved.rsplit('.', 1)[-1]}; use der.Tag constants",
            )

    def _check_tag_compare(self, node: ast.Compare, ctx: FileContext) -> None:
        if not (
            isinstance(node.left, ast.Attribute) and node.left.attr == "tag"
        ):
            return
        for op, comparator in zip(node.ops, node.comparators):
            if (
                isinstance(op, (ast.Eq, ast.NotEq))
                and isinstance(comparator, ast.Constant)
                and isinstance(comparator.value, int)
            ):
                ctx.report(
                    comparator,
                    self.code,
                    f".tag compared against raw 0x{comparator.value:02X}; "
                    "use der.Tag constants",
                )


# --------------------------------------------------------------------------
# RPR007 -- every experiment module is registered
# --------------------------------------------------------------------------


class ExperimentRegisteredRule(Rule):
    code = "RPR007"
    name = "experiment-registered"
    summary = (
        "every experiments/fig*/table*/section* module must be wired "
        "into runner.ALL_EXPERIMENTS"
    )

    def check_file(self, tree: ast.Module, ctx: FileContext) -> None:
        if not is_experiment_module(ctx.rel_path):
            return
        directory = str(PurePosixPath(ctx.rel_path).parent)
        if directory not in ctx.project.runner_dirs:
            return  # no runner here, nothing to register against
        registered = ctx.project.registrations.get(directory, ())
        module = PurePosixPath(ctx.rel_path).stem
        if module not in registered:
            ctx.report_at(
                1,
                0,
                self.code,
                f"experiment module {module!r} is not registered in "
                f"{directory}/runner.py ALL_EXPERIMENTS; run_all would "
                "silently skip it",
            )


# --------------------------------------------------------------------------
# RPR008 -- no float equality
# --------------------------------------------------------------------------


class FloatEqualityRule(Rule):
    code = "RPR008"
    name = "no-float-equality"
    summary = "== / != against float expressions; use tolerances instead"
    node_types = (ast.Compare,)

    def check(self, node: ast.Compare, ctx: FileContext) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            if any(self._floatish(operand, ctx) for operand in pair):
                ctx.report(
                    node,
                    self.code,
                    "float equality is representation-dependent; use "
                    "math.isclose/pytest.approx or an ordered comparison",
                )
                return

    def _floatish(self, node: ast.expr, ctx: FileContext) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return self._floatish(node.operand, ctx)
        if isinstance(node, ast.BinOp):
            return self._floatish(node.left, ctx) or self._floatish(
                node.right, ctx
            )
        if isinstance(node, ast.Call):
            return ctx.imports.resolve(node.func) == "float"
        return False


# --------------------------------------------------------------------------
# RPR009 -- no mutable default arguments
# --------------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.Counter",
        "collections.deque",
    }
)


class MutableDefaultRule(Rule):
    code = "RPR009"
    name = "no-mutable-default"
    summary = "mutable default arguments alias state across calls"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if self._mutable(default, ctx):
                ctx.report(
                    default,
                    self.code,
                    "mutable default argument is shared across every call; "
                    "default to None and construct inside the function",
                )

    def _mutable(self, node: ast.expr, ctx: FileContext) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            return ctx.imports.resolve(node.func) in _MUTABLE_CONSTRUCTORS
        return False


# --------------------------------------------------------------------------
# RPR010 -- no module-level RNG shared across parallel workers
# --------------------------------------------------------------------------


class SharedWorkerRngRule(Rule):
    code = "RPR010"
    name = "no-shared-worker-rng"
    summary = (
        "module-level random.Random instances are copied into run_all "
        "parallel workers and drift apart"
    )
    node_types = (ast.Assign, ast.AnnAssign)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if ctx.function_depth:
            return
        value = node.value
        if value is None:
            return
        for sub in ast.walk(value):
            if isinstance(sub, ast.Call) and ctx.imports.resolve(sub.func) in (
                "random.Random",
                "random.SystemRandom",
            ):
                ctx.report(
                    sub,
                    self.code,
                    "module-level RNG instance: run_all(parallel=N) workers "
                    "each inherit a copy whose streams diverge from the "
                    "sequential run; construct the Random inside the "
                    "function that consumes it",
                )
                return


# --------------------------------------------------------------------------
# RPR011 -- seeded hypothesis
# --------------------------------------------------------------------------

_GIVEN = "hypothesis.given"
_SEED = "hypothesis.seed"
_SETTINGS = "hypothesis.settings"


class UnseededHypothesisRule(Rule):
    code = "RPR011"
    name = "seeded-hypothesis"
    summary = (
        "@given tests must be derandomized: @seed(...), "
        "@settings(derandomize=True), or an ancestor conftest loading a "
        "derandomize=True profile"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        has_given = False
        derandomized = False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            resolved = ctx.imports.resolve(target)
            if resolved == _GIVEN:
                has_given = True
            elif resolved == _SEED:
                derandomized = True
            elif (
                resolved == _SETTINGS
                and isinstance(decorator, ast.Call)
                and any(
                    kw.arg == "derandomize"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                )
            ):
                derandomized = True
        if not has_given or derandomized:
            return
        if self._covered_by_conftest(ctx):
            return
        ctx.report(
            node,
            self.code,
            "@given test draws different examples every run; add "
            "@seed(...) or @settings(derandomize=True), or register+load "
            "a derandomize=True hypothesis profile in an ancestor "
            "conftest.py",
        )

    @staticmethod
    def _covered_by_conftest(ctx: FileContext) -> bool:
        directory = PurePosixPath(ctx.rel_path).parent
        return any(
            directory == PurePosixPath(root)
            or directory.is_relative_to(root)
            for root in ctx.project.derandomized_roots
        )


# --------------------------------------------------------------------------
# RPR012 -- worker pools live in repro.exec
# --------------------------------------------------------------------------

_EXEC_HOME = "repro/exec/"
#: pool/process constructors whose direct use bypasses the supervised
#: execution layer (docs/ROBUSTNESS.md).
_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.Process",
        "multiprocessing.pool.Pool",
    }
)


class PoolOutsideExecRule(Rule):
    code = "RPR012"
    name = "pool-in-exec-only"
    summary = (
        "process/thread pool construction outside repro/exec bypasses "
        "supervision, checkpointing, and fault injection"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if _EXEC_HOME in ctx.rel_path:
            return
        resolved = ctx.imports.resolve(node.func)
        if resolved not in _POOL_CONSTRUCTORS:
            return
        short = resolved.rsplit(".", 1)[-1]
        ctx.report(
            node,
            self.code,
            f"direct {short} construction: route fan-out through "
            "repro.exec (pool_map / run_pool, or Supervisor for crash "
            "recovery) so every pool gets deadlines, retries, and "
            "checkpoint support",
        )


# --------------------------------------------------------------------------
# RPR015 -- mechanism construction goes through the registry
# --------------------------------------------------------------------------

_MECHANISMS_HOME = "repro/mechanisms/"
#: the abstract base is fine to subclass/reference anywhere; only
#: *concrete* mechanism classes are registry-gated.
_MECHANISM_BASE = "RevocationMechanism"


class MechanismConstructionRule(Rule):
    code = "RPR015"
    name = "mechanism-via-registry"
    summary = (
        "direct construction of a concrete RevocationMechanism outside "
        "repro/mechanisms bypasses the registry (sweep order, name "
        "uniqueness, run_one's mechanism= restriction)"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if _MECHANISMS_HOME in ctx.rel_path:
            return
        resolved = ctx.imports.resolve(node.func)
        if resolved is None or not resolved.startswith("repro.mechanisms"):
            return
        short = resolved.rsplit(".", 1)[-1]
        if not short.endswith("Mechanism") or short == _MECHANISM_BASE:
            return
        ctx.report(
            node,
            self.code,
            f"direct {short}(...) construction: go through the registry "
            "(repro.mechanisms.create / create_suite, or "
            "study.mechanism_suite) so sweeps stay uniform and "
            "docs/MECHANISMS.md's conformance contract applies",
        )


# --------------------------------------------------------------------------
# RPR016 -- no deprecated flat facade aliases in-repo
# --------------------------------------------------------------------------

_API_HOME = "repro/api.py"
#: the pre-2.0 flat names of ``repro.api``, kept as deprecated aliases
#: for external callers only.  Must equal
#: ``repro.api.DEPRECATED_ALIASES.keys()`` -- a meta-test in
#: ``tests/analysis/test_fixtures.py`` pins the two together, so adding
#: or retiring an alias updates both or fails CI.
FLAT_API_ALIASES = frozenset(
    {
        "StudyRun",
        "TraceDiff",
        "build_corpus",
        "corpus_info",
        "crawl_figures_legs",
        "diff_traces",
        "golden_digests",
        "list_corpora",
        "list_experiments",
        "list_mechanisms",
        "load_trace",
        "mechanism_digests",
        "new_study",
        "render_diff",
        "render_report",
        "render_trace",
        "run_analysis",
        "run_experiments",
        "run_one",
        "run_study",
        "verify_corpus",
    }
)


class FacadeAliasRule(Rule):
    code = "RPR016"
    name = "no-flat-facade-alias"
    summary = (
        "in-repo code must use the namespaced repro.api facade "
        "(api.study.*, api.corpus.*, ...); the flat 1.x names are "
        "deprecated aliases reserved for external callers"
    )
    node_types = (ast.ImportFrom, ast.Attribute)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if ctx.rel_path.endswith(_API_HOME):
            return
        if isinstance(node, ast.ImportFrom):
            if node.module != "repro.api":
                return
            for alias in node.names:
                if alias.name in FLAT_API_ALIASES:
                    ctx.report(
                        node,
                        self.code,
                        f"from repro.api import {alias.name} is a "
                        "deprecated 1.x flat alias; import the facade "
                        "and use its namespaced home "
                        "(repro.api.DEPRECATED_ALIASES maps old to new)",
                    )
            return
        resolved = ctx.imports.resolve(node)
        if resolved is None or not resolved.startswith("repro.api."):
            return
        name = resolved[len("repro.api."):]
        if name in FLAT_API_ALIASES:
            ctx.report(
                node,
                self.code,
                f"api.{name} is a deprecated 1.x flat alias; use its "
                "namespaced home (repro.api.DEPRECATED_ALIASES maps "
                "old to new)",
            )


ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    AmbientRandomnessRule,
    UnorderedEmitRule,
    ExceptionTaxonomyRule,
    EnumExhaustiveRule,
    RawDerBytesRule,
    ExperimentRegisteredRule,
    FloatEqualityRule,
    MutableDefaultRule,
    SharedWorkerRngRule,
    UnseededHypothesisRule,
    PoolOutsideExecRule,
    NondeterministicDigestInputRule,
    StatsExportRule,
    MechanismConstructionRule,
    FacadeAliasRule,
)


def default_rules() -> list[Rule]:
    return [rule_cls() for rule_cls in ALL_RULES]


def rules_catalogue() -> list[dict]:
    return [
        {"code": cls.code, "name": cls.name, "summary": cls.summary}
        for cls in ALL_RULES
    ]
