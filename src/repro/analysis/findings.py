"""Finding model, autofix suggestions, and stable fingerprints.

A fingerprint identifies *what* a finding is about, not *where on the
page* it sits: it hashes the rule, the file, the stripped source line
text, and an occurrence counter (for identical lines repeated in one
file) -- never the line number and never the attached suggestion.
Inserting or deleting unrelated lines therefore does not churn the
baseline, which is what lets a baseline file survive ordinary edits
(the same trick ESLint and detekt use), and an autofix-irrelevant
change to how a suggestion is rendered can never invalidate one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: suggestion safety classes.  ``safe`` edits are provably
#: behaviour-preserving at the emit boundary (wrapping an expression in
#: ``sorted(...)`` at the sink, swapping ``vars(x)`` for
#: ``x.as_dict()``) and are the only class ``--fix`` applies;
#: ``unsafe`` edits change a value other code may still observe (e.g.
#: sorting a container that is also used for membership tests) and are
#: surfaced for review only.
SAFETY_SAFE = "safe"
SAFETY_UNSAFE = "unsafe"


@dataclass(frozen=True)
class Suggestion:
    """One machine-applicable edit attached to a finding.

    The span is a half-open source region in the ``ast`` coordinate
    system (1-based lines, 0-based UTF-8 byte columns); ``replacement``
    is the literal text to substitute for it.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str
    safety: str  # SAFETY_SAFE | SAFETY_UNSAFE
    description: str = ""

    def as_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "replacement": self.replacement,
            "safety": self.safety,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Suggestion":
        return cls(
            line=int(raw["line"]),
            col=int(raw["col"]),
            end_line=int(raw["end_line"]),
            end_col=int(raw["end_col"]),
            replacement=raw["replacement"],
            safety=raw["safety"],
            description=raw.get("description", ""),
        )


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int  # 1-based
    col: int  # 0-based, as in the ast module
    message: str
    fingerprint: str = ""
    suggestion: Suggestion | None = None

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suggestion": (
                self.suggestion.as_dict() if self.suggestion else None
            ),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        suggestion = raw.get("suggestion")
        return cls(
            rule=raw["rule"],
            path=raw["path"],
            line=int(raw["line"]),
            col=int(raw["col"]),
            message=raw["message"],
            fingerprint=raw.get("fingerprint", ""),
            suggestion=(
                Suggestion.from_dict(suggestion) if suggestion else None
            ),
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def compute_fingerprint(
    rule: str, path: str, line_text: str, occurrence: int
) -> str:
    payload = "|".join((rule, path, line_text.strip(), str(occurrence)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(
    findings: list[Finding], source_lines: list[str]
) -> list[Finding]:
    """Attach fingerprints to per-file findings, counting duplicates.

    ``occurrence`` disambiguates several violations of the same rule on
    textually identical lines: the first gets 0, the next 1, and so on,
    in source order, so each keeps a distinct stable identity.
    """
    seen: dict[tuple[str, str], int] = {}
    out: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.line, f.col, f.rule)):
        if 1 <= finding.line <= len(source_lines):
            text = source_lines[finding.line - 1]
        else:
            text = ""
        key = (finding.rule, text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                fingerprint=compute_fingerprint(
                    finding.rule, finding.path, text, occurrence
                ),
                suggestion=finding.suggestion,
            )
        )
    return out
