"""Finding model and stable fingerprints.

A fingerprint identifies *what* a finding is about, not *where on the
page* it sits: it hashes the rule, the file, the stripped source line
text, and an occurrence counter (for identical lines repeated in one
file) -- never the line number.  Inserting or deleting unrelated lines
therefore does not churn the baseline, which is what lets a baseline
file survive ordinary edits (the same trick ESLint and detekt use).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int  # 1-based
    col: int  # 0-based, as in the ast module
    message: str
    fingerprint: str = ""

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        return cls(
            rule=raw["rule"],
            path=raw["path"],
            line=int(raw["line"]),
            col=int(raw["col"]),
            message=raw["message"],
            fingerprint=raw.get("fingerprint", ""),
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def compute_fingerprint(
    rule: str, path: str, line_text: str, occurrence: int
) -> str:
    payload = "|".join((rule, path, line_text.strip(), str(occurrence)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(
    findings: list[Finding], source_lines: list[str]
) -> list[Finding]:
    """Attach fingerprints to per-file findings, counting duplicates.

    ``occurrence`` disambiguates several violations of the same rule on
    textually identical lines: the first gets 0, the next 1, and so on,
    in source order, so each keeps a distinct stable identity.
    """
    seen: dict[tuple[str, str], int] = {}
    out: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.line, f.col, f.rule)):
        if 1 <= finding.line <= len(source_lines):
            text = source_lines[finding.line - 1]
        else:
            text = ""
        key = (finding.rule, text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                fingerprint=compute_fingerprint(
                    finding.rule, finding.path, text, occurrence
                ),
            )
        )
    return out
