"""Machine application of finding suggestions (``analyze --fix``).

Every dataflow finding may carry a :class:`~repro.analysis.findings.
Suggestion` -- a source span plus replacement text and a safety class.
This module turns the ``safe`` ones into edits:

* spans use the ``ast`` coordinate system (1-based lines, 0-based UTF-8
  *byte* columns), so edits are applied on the encoded source and
  decoded back -- multi-byte characters cannot skew offsets;
* overlapping suggestions are resolved deterministically: spans are
  applied back-to-front and a span that overlaps an already-applied one
  is skipped (it will be re-derived, against fresh offsets, on the next
  fix round);
* the driver loops apply-then-relint until a round applies nothing,
  which is what makes ``--fix`` idempotent: a ``sorted(...)`` wrap
  sanitises the taint that produced it, so the second pass has no safe
  suggestion left to apply.

Nothing here writes to disk -- the CLI owns I/O; this module maps
``(source, findings) -> (new_source, applied)`` so the same machinery
backs ``--fix`` (write), ``--diff`` (render), and the tests.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.analysis.findings import SAFETY_SAFE, Finding, Suggestion

__all__ = ["FixOutcome", "apply_suggestions", "fixable", "render_diff"]

#: bound on apply-relint rounds; each round strictly shrinks the safe
#: suggestion set, so this is a backstop against a misbehaving rule,
#: not a tuning knob.
MAX_ROUNDS = 5


@dataclass
class FixOutcome:
    """What one apply pass over one file did."""

    source: str
    applied: list[Suggestion] = field(default_factory=list)
    skipped_overlap: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def fixable(findings: list[Finding]) -> list[Finding]:
    """The findings ``--fix`` may act on: safe-class suggestions only."""
    return [
        finding
        for finding in findings
        if finding.suggestion is not None
        and finding.suggestion.safety == SAFETY_SAFE
    ]


def _line_starts(data: bytes) -> list[int]:
    """Byte offset of the start of each (1-based) line."""
    starts = [0]
    for index, byte in enumerate(data):
        if byte == 0x0A:  # \n
            starts.append(index + 1)
    return starts


def _abs_span(
    suggestion: Suggestion, starts: list[int], size: int
) -> tuple[int, int] | None:
    if not 1 <= suggestion.line <= len(starts):
        return None
    if not 1 <= suggestion.end_line <= len(starts):
        return None
    begin = starts[suggestion.line - 1] + suggestion.col
    end = starts[suggestion.end_line - 1] + suggestion.end_col
    if not 0 <= begin <= end <= size:
        return None
    return begin, end


def apply_suggestions(
    source: str, suggestions: list[Suggestion]
) -> FixOutcome:
    """Apply non-overlapping suggestion spans to ``source``.

    Spans are applied from the end of the file backwards so earlier
    offsets stay valid; between two overlapping spans the one starting
    earlier wins (deterministic regardless of input order).
    """
    data = source.encode("utf-8")
    starts = _line_starts(data)
    located: list[tuple[int, int, Suggestion]] = []
    for suggestion in suggestions:
        span = _abs_span(suggestion, starts, len(data))
        if span is not None:
            located.append((span[0], span[1], suggestion))
    located.sort(key=lambda item: (item[0], item[1]))

    chosen: list[tuple[int, int, Suggestion]] = []
    skipped = 0
    last_end = -1
    for begin, end, suggestion in located:
        if begin < last_end or (chosen and (begin, end) == chosen[-1][:2]):
            skipped += 1
            continue
        chosen.append((begin, end, suggestion))
        last_end = end

    out = data
    for begin, end, suggestion in reversed(chosen):
        out = out[:begin] + suggestion.replacement.encode("utf-8") + out[end:]
    return FixOutcome(
        source=out.decode("utf-8"),
        applied=[suggestion for _, _, suggestion in chosen],
        skipped_overlap=skipped,
    )


def render_diff(rel_path: str, before: str, after: str) -> str:
    """Unified diff of one file's fix pass, empty if nothing changed."""
    if before == after:
        return ""
    lines = difflib.unified_diff(
        before.splitlines(keepends=True),
        after.splitlines(keepends=True),
        fromfile=f"a/{rel_path}",
        tofile=f"b/{rel_path}",
    )
    return "".join(lines)
