"""Baseline files: accepted findings that do not fail the gate.

A baseline is a JSON document mapping fingerprints (stable under line
shifts, see :mod:`repro.analysis.findings`) to a human-readable sketch
of the finding they grandfathered.  The CLI exits non-zero only for
findings *not* in the baseline, so a legacy violation can be admitted
explicitly while every new one still breaks the build.  This repo ships
an empty baseline on purpose -- the tree is violation-free -- but the
mechanism is what lets the gate be adopted by a dirtier tree without a
flag day.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["load_baseline", "write_baseline", "partition"]

BASELINE_VERSION = 1


def load_baseline(path: Path) -> set[str]:
    """Fingerprints accepted by ``path``; empty set if it doesn't exist."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or "fingerprints" not in raw:
        raise ValueError(
            f"baseline {path} lacks a 'fingerprints' key; "
            "regenerate it with --update-baseline"
        )
    fingerprints = raw["fingerprints"]
    if isinstance(fingerprints, dict):
        return set(fingerprints)
    return set(fingerprints)


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Persist every current finding as accepted, sorted for stable diffs."""
    entries = {
        finding.fingerprint: f"{finding.rule} {finding.path}: {finding.message}"
        for finding in findings
    }
    document = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(entries.items())),
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: list[Finding], accepted: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split into (new, baselined) preserving order."""
    new = [f for f in findings if f.fingerprint not in accepted]
    old = [f for f in findings if f.fingerprint in accepted]
    return new, old
