"""AST-based determinism & PKI-invariant linter (docs/STATIC_ANALYSIS.md).

The reproduction's headline property -- byte-identical reports for a
fixed seed, across reruns, vantage points, and ``run_all(parallel=N)``
worker counts -- rests on conventions no interpreter enforces: time
flows through :mod:`repro.net.clock`, randomness through explicitly
seeded ``random.Random`` instances, DER bytes through
:mod:`repro.asn1`, and network failures through the
:class:`~repro.revocation.checker.FailureClass` taxonomy.  This package
checks those conventions mechanically on every commit:

* :mod:`repro.analysis.engine` -- single-pass AST walker with per-node
  rule dispatch and ``# repro: noqa RPRxxx`` suppression;
* :mod:`repro.analysis.dataflow` -- intraprocedural def-use/taint
  substrate: unordered, ambient-RNG, wall-clock, and stats values are
  tracked from construction site to sink across statement boundaries;
* :mod:`repro.analysis.rules` -- the RPR001..RPR014 catalogue (RPR003,
  RPR013, RPR014 ride on the dataflow substrate);
* :mod:`repro.analysis.fixes` -- machine application of the ``safe``
  suggestions findings carry (``analyze --fix`` / ``--diff``);
* :mod:`repro.analysis.project` -- cross-file facts (enum members,
  experiment registration) for the non-local rules;
* :mod:`repro.analysis.baseline` / :mod:`repro.analysis.cache` --
  accepted-findings file and the content-hash warm cache;
* :mod:`repro.analysis.cli` -- the ``python -m repro.analysis`` gate.
"""

from repro.analysis.engine import ENGINE_VERSION, analyze_file, analyze_source
from repro.analysis.findings import Finding, Suggestion, compute_fingerprint
from repro.analysis.fixes import apply_suggestions, fixable
from repro.analysis.rules import ALL_RULES, default_rules, rules_catalogue

__all__ = [
    "ALL_RULES",
    "ENGINE_VERSION",
    "Finding",
    "Suggestion",
    "analyze_file",
    "analyze_source",
    "apply_suggestions",
    "compute_fingerprint",
    "default_rules",
    "fixable",
    "rules_catalogue",
]
