"""AST-based determinism & PKI-invariant linter (docs/STATIC_ANALYSIS.md).

The reproduction's headline property -- byte-identical reports for a
fixed seed, across reruns, vantage points, and ``run_all(parallel=N)``
worker counts -- rests on conventions no interpreter enforces: time
flows through :mod:`repro.net.clock`, randomness through explicitly
seeded ``random.Random`` instances, DER bytes through
:mod:`repro.asn1`, and network failures through the
:class:`~repro.revocation.checker.FailureClass` taxonomy.  This package
checks those conventions mechanically on every commit:

* :mod:`repro.analysis.engine` -- single-pass AST walker with per-node
  rule dispatch and ``# repro: noqa RPRxxx`` suppression;
* :mod:`repro.analysis.rules` -- the RPR001..RPR010 catalogue;
* :mod:`repro.analysis.project` -- cross-file facts (enum members,
  experiment registration) for the non-local rules;
* :mod:`repro.analysis.baseline` / :mod:`repro.analysis.cache` --
  accepted-findings file and the content-hash warm cache;
* :mod:`repro.analysis.cli` -- the ``python -m repro.analysis`` gate.
"""

from repro.analysis.engine import ENGINE_VERSION, analyze_file, analyze_source
from repro.analysis.findings import Finding, compute_fingerprint
from repro.analysis.rules import ALL_RULES, default_rules, rules_catalogue

__all__ = [
    "ALL_RULES",
    "ENGINE_VERSION",
    "Finding",
    "analyze_file",
    "analyze_source",
    "compute_fingerprint",
    "default_rules",
    "rules_catalogue",
]
