"""Cross-file facts the per-file rules need.

Three rules cannot be decided from one file alone:

* **RPR005** (enum-exhaustive dispatch) needs every enum's member list,
  parsed from wherever the enum is defined;
* **RPR007** (experiment-registered) needs the set of experiment modules
  actually wired into ``runner.py``'s ``ALL_EXPERIMENTS``;
* **RPR011** (seeded-hypothesis) needs to know which directories are
  covered by a ``conftest.py`` that registers *and* loads a
  ``derandomize=True`` hypothesis profile.

This module does one cheap AST pre-pass over the analysed file set and
distils it into a :class:`ProjectContext`.  Its :meth:`digest` feeds the
per-file result cache key, so editing an enum definition correctly
invalidates cached findings for every file that dispatches on it.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

__all__ = ["ProjectContext", "build_project_context"]

_ENUM_BASES = {"Enum", "IntEnum", "StrEnum", "IntFlag", "Flag"}
_EXPERIMENT_MODULE = re.compile(r"^(fig|table|section)\w*$")


@dataclass
class ProjectContext:
    #: enum class name -> sorted tuple of member names.
    enums: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: experiments dir (POSIX rel path) -> module names in ALL_EXPERIMENTS.
    registrations: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: experiments dirs that actually contain a runner.py.
    runner_dirs: frozenset[str] = frozenset()
    #: dirs (POSIX rel paths) whose conftest.py registers and loads a
    #: derandomize=True hypothesis profile; tests under them are
    #: deterministic without per-test decorators (RPR011).
    derandomized_roots: frozenset[str] = frozenset()

    def digest(self) -> str:
        payload = json.dumps(
            {
                "enums": {k: list(v) for k, v in sorted(self.enums.items())},
                "registrations": {
                    k: list(v) for k, v in sorted(self.registrations.items())
                },
                "runner_dirs": sorted(self.runner_dirs),
                "derandomized_roots": sorted(self.derandomized_roots),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _enum_members(cls: ast.ClassDef) -> tuple[str, ...]:
    members: list[str] = []
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                members.append(target.id)
    return tuple(members)


def collect_enums(tree: ast.AST) -> dict[str, tuple[str, ...]]:
    enums: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            _base_name(base) in _ENUM_BASES for base in node.bases
        ):
            enums[node.name] = _enum_members(node)
    return enums


def _registered_modules(tree: ast.AST) -> tuple[str, ...] | None:
    """Module names referenced inside the ``ALL_EXPERIMENTS`` assignment."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "ALL_EXPERIMENTS"
            for t in node.targets
        ):
            names = {
                sub.id
                for sub in ast.walk(node.value)
                if isinstance(sub, ast.Name)
            }
            return tuple(sorted(names))
    return None


def _registers_derandomized_profile(tree: ast.AST) -> bool:
    """True when a conftest both registers and loads a hypothesis profile
    with ``derandomize=True``.

    Matched structurally (``settings.register_profile(...,
    derandomize=True)`` + ``settings.load_profile(...)``) rather than
    through the import map: conftests are executed by pytest, not
    imported by the analysed code, and the two-call idiom is what the
    hypothesis docs prescribe.
    """
    registered = loaded = False
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr == "register_profile" and any(
            kw.arg == "derandomize"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        ):
            registered = True
        elif node.func.attr == "load_profile":
            loaded = True
    return registered and loaded


def is_experiment_module(rel_path: str) -> bool:
    path = PurePosixPath(rel_path)
    return (
        len(path.parts) >= 2
        and path.parent.name == "experiments"
        and bool(_EXPERIMENT_MODULE.match(path.stem))
    )


def build_project_context(
    files: list[tuple[str, Path]]
) -> ProjectContext:
    """Pre-pass over ``(rel_path, abs_path)`` pairs.

    Parse failures are ignored here -- the per-file pass reports them as
    findings; this pass just extracts what it can.
    """
    enums: dict[str, tuple[str, ...]] = {}
    registrations: dict[str, tuple[str, ...]] = {}
    runner_dirs: set[str] = set()
    derandomized_roots: set[str] = set()
    for rel_path, abs_path in files:
        posix = PurePosixPath(rel_path)
        wants_enums = True  # enums may live anywhere
        is_runner = posix.name == "runner.py" and posix.parent.name == "experiments"
        is_conftest = posix.name == "conftest.py"
        if not (wants_enums or is_runner or is_conftest):
            continue
        try:
            tree = ast.parse(abs_path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError):
            continue
        if is_conftest and _registers_derandomized_profile(tree):
            derandomized_roots.add(str(posix.parent))
        found = collect_enums(tree)
        for name, members in found.items():
            if name in enums and enums[name] != members:
                # Same class name defined twice with different members:
                # keep the intersection so RPR005 never demands a member
                # that one of the definitions lacks.
                enums[name] = tuple(
                    sorted(set(enums[name]) & set(members))
                )
            else:
                enums.setdefault(name, members)
        if is_runner:
            runner_dirs.add(str(posix.parent))
            registered = _registered_modules(tree)
            if registered is not None:
                registrations[str(posix.parent)] = registered
    return ProjectContext(
        enums=enums,
        registrations=registrations,
        runner_dirs=frozenset(runner_dirs),
        derandomized_roots=frozenset(derandomized_roots),
    )
