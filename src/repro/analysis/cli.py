"""``python -m repro.analysis`` -- the determinism & PKI-invariant gate.

Usage::

    python -m repro.analysis [paths...] [--format text|json]
        [--baseline FILE] [--select RPR001,RPR005] [--ignore RPR003]
        [--no-cache] [--cache-dir DIR] [--update-baseline] [--list-rules]
        [--fix] [--diff]

Exit codes: 0 -- no new findings; 1 -- new findings (or parse errors);
2 -- usage/configuration error.  Findings already recorded in the
baseline never fail the gate; this repo ships an empty baseline, so any
finding fails CI (docs/STATIC_ANALYSIS.md).

``--fix`` applies every ``safe``-class autofix suggestion in place,
re-lints the touched files, and repeats until a pass applies nothing --
so running it twice is a byte-identical no-op.  ``--diff`` renders the
same edits as a unified diff without writing anything.  The exit code
always describes the tree the command leaves behind: after ``--fix`` it
reflects the remaining (unfixable) findings.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.baseline import load_baseline, partition, write_baseline
from repro.analysis.cache import ResultCache
from repro.analysis.config import AnalysisConfig, find_project_root, load_config
from repro.analysis.engine import ENGINE_VERSION, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.fixes import (
    MAX_ROUNDS,
    apply_suggestions,
    fixable,
    render_diff,
)
from repro.analysis.project import build_project_context
from repro.analysis.rules import default_rules, rules_catalogue

__all__ = ["main"]

DEFAULT_BASELINE = ".repro-analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="AST-based determinism & PKI-invariant linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: [tool.repro.analysis] paths)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"accepted-findings file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to enable exclusively",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to disable",
    )
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: .repro-analysis-cache)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record every current finding as accepted and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply safe-class autofix suggestions in place and re-lint",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="show the --fix edits as a unified diff without writing",
    )
    return parser


def _discover(root: Path, targets: list[Path], config: AnalysisConfig):
    """Yield (rel_path, abs_path) for every analysable .py file."""
    seen: set[str] = set()
    for target in targets:
        if target.is_file():
            candidates = [target]
        else:
            candidates = sorted(target.rglob("*.py"))
        for path in candidates:
            if path.suffix != ".py":
                continue
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in path.parts
            ):
                continue
            resolved = path.resolve()
            try:
                rel = resolved.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            if rel in seen or config.is_excluded(rel):
                continue
            seen.add(rel)
            yield rel, resolved


def _parse_codes(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(
        code.strip().upper() for code in raw.split(",") if code.strip()
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for entry in rules_catalogue():
            print(f"{entry['code']} {entry['name']:24s} {entry['summary']}")
        return 0

    started = time.perf_counter()
    root = find_project_root(Path.cwd())
    config = load_config(root)
    raw_targets = args.paths or list(config.paths)
    targets: list[Path] = []
    for raw in raw_targets:
        path = Path(raw)
        if not path.exists():
            print(f"repro.analysis: no such path: {raw}", file=sys.stderr)
            return 2
        targets.append(path)

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore) or frozenset()
    known = {entry["code"] for entry in rules_catalogue()}
    for code in (select or frozenset()) | ignore:
        if code not in known and code != "RPR000":
            print(f"repro.analysis: unknown rule {code}", file=sys.stderr)
            return 2

    files = list(_discover(root, targets, config))
    # The project pre-pass also covers the configured default roots so
    # cross-file rules see enum definitions even when analysing a subset
    # (e.g. `python -m repro.analysis tests`).
    context_files = dict(files)
    for raw in config.paths:
        path = root / raw
        if path.exists():
            context_files.update(_discover(root, [path], config))
    project = build_project_context(sorted(context_files.items()))

    cache = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir or config.cache_dir)
        if not cache_dir.is_absolute():
            cache_dir = root / cache_dir
        cache = ResultCache(
            cache_dir, ENGINE_VERSION, config.digest(), project.digest()
        )

    rules = default_rules()
    sources: dict[str, str] = {}
    findings_by_path: dict[str, list[Finding]] = {}
    cached_hits = 0
    for rel_path, abs_path in files:
        try:
            data = abs_path.read_bytes()
        except OSError as exc:
            findings_by_path[rel_path] = [
                Finding(
                    "RPR000", rel_path, 1, 0, f"unreadable: {exc}", "unreadable"
                )
            ]
            continue
        content_hash = ResultCache.content_hash(data)
        file_findings = (
            cache.load(rel_path, content_hash) if cache is not None else None
        )
        source = data.decode("utf-8", errors="replace")
        if file_findings is None:
            file_findings = analyze_source(source, rel_path, rules, project)
            if cache is not None:
                cache.store(rel_path, content_hash, file_findings)
        else:
            cached_hits += 1
        sources[rel_path] = source
        findings_by_path[rel_path] = file_findings

    # Post-filters: per-path config ignores, then --select/--ignore.
    # RPR000 (parse failure) is never filtered -- a file the engine
    # cannot read is a finding regardless of rule selection.
    def keep(finding: Finding) -> bool:
        if finding.rule == "RPR000":
            return True
        if finding.rule in config.ignored_rules(finding.path):
            return False
        if select is not None and finding.rule not in select:
            return False
        return finding.rule not in ignore

    def collect() -> list[Finding]:
        return sorted(
            (
                f
                for file_findings in findings_by_path.values()
                for f in file_findings
                if keep(f)
            ),
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )

    findings = collect()

    baseline_path = Path(args.baseline or config.baseline or DEFAULT_BASELINE)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"baseline updated: {len(findings)} finding(s) recorded in "
            f"{baseline_path}",
            file=sys.stderr,
        )
        return 0
    try:
        accepted = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2
    new, baselined = partition(findings, accepted)

    # -- autofix loop (--fix / --diff): apply safe suggestions against
    # the in-memory sources, re-lint what changed, repeat until a round
    # applies nothing.  --diff renders the edits instead of writing.
    fix_mode = args.fix or args.diff
    writes_back = args.fix and not args.diff
    originals: dict[str, str] = {}
    fixed_paths: set[str] = set()
    applied_count = 0
    rounds = 0
    if fix_mode:
        pre_fix = (findings, new, baselined)
        abs_by_rel = {rel: abs_path for rel, abs_path in files}
        while rounds < MAX_ROUNDS:
            by_path: dict[str, list[Finding]] = {}
            for finding in fixable(new):
                if config.is_fix_excluded(finding.path):
                    continue
                if finding.path not in sources:
                    continue
                by_path.setdefault(finding.path, []).append(finding)
            if not by_path:
                break
            rounds += 1
            progressed = False
            for rel_path, path_findings in sorted(by_path.items()):
                outcome = apply_suggestions(
                    sources[rel_path],
                    [f.suggestion for f in path_findings],
                )
                if not outcome.changed:
                    continue
                progressed = True
                originals.setdefault(rel_path, sources[rel_path])
                sources[rel_path] = outcome.source
                fixed_paths.add(rel_path)
                applied_count += len(outcome.applied)
                file_findings = analyze_source(
                    outcome.source, rel_path, rules, project
                )
                findings_by_path[rel_path] = file_findings
                if cache is not None:
                    cache.store(
                        rel_path,
                        ResultCache.content_hash(
                            outcome.source.encode("utf-8")
                        ),
                        file_findings,
                    )
            if not progressed:
                break
            findings = collect()
            new, baselined = partition(findings, accepted)
        if writes_back:
            for rel_path in sorted(fixed_paths):
                abs_by_rel[rel_path].write_text(
                    sources[rel_path], encoding="utf-8"
                )
        else:
            # Preview mode leaves the tree untouched, so the findings,
            # counts, and exit code must describe the on-disk state.
            findings, new, baselined = pre_fix

    diffs = {
        rel_path: render_diff(rel_path, originals[rel_path], sources[rel_path])
        for rel_path in sorted(fixed_paths)
    }

    if args.fmt == "json":
        document = {
            "engine_version": ENGINE_VERSION,
            "counts": {
                "files": len(files),
                "findings": len(findings),
                "new": len(new),
                "baselined": len(baselined),
            },
            "findings": [finding.as_dict() for finding in new],
            "baselined": [finding.as_dict() for finding in baselined],
            "fixes": {
                "applied": applied_count,
                "files": sorted(fixed_paths),
                "rounds": rounds,
                "written": bool(writes_back and fixed_paths),
            },
        }
        if args.diff:
            document["diffs"] = diffs
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        if args.diff:
            for rel_path in sorted(diffs):
                sys.stdout.write(diffs[rel_path])
        for finding in new:
            print(finding.render())
        elapsed = time.perf_counter() - started
        if fix_mode:
            verb = "previewed" if args.diff else "applied"
            print(
                f"autofix: {applied_count} edit(s) {verb} in "
                f"{len(fixed_paths)} file(s) over {rounds} round(s)",
                file=sys.stderr,
            )
        print(
            f"{len(new)} new finding(s), {len(baselined)} baselined; "
            f"{len(files)} file(s) analysed ({cached_hits} cached) "
            f"in {elapsed:.2f}s",
            file=sys.stderr,
        )
    return 1 if new else 0
