"""Intraprocedural dataflow/taint substrate for the dataflow rules.

The syntactic rules inspect one AST node at a time; this module gives
the rules that need more -- RPR003 (unordered emission), RPR013
(nondeterministic values in digest inputs), RPR014 (stats exported
around the sorted-key helpers) -- a shared per-function forward taint
analysis over the stdlib ``ast``:

* **Scopes.**  Every function (at any nesting), every class body, and
  the module top level is analysed as its own scope, in isolation --
  the analysis is deliberately intraprocedural: a value that crosses a
  call boundary is assumed sanitised (an unknown callee may impose
  order), which keeps the false-positive rate near zero at the cost of
  missing cross-function flows.
* **Taints.**  A taint records *what kind* of nondeterminism a value
  carries (``unordered``, ``rng``, ``clock``, ``stats``), *where* it
  was introduced, and whether the value still *is* the tainted object
  (``direct``) or merely embeds it inside a container -- the bit that
  decides whether wrapping the carrier in ``sorted(...)`` at the sink
  is a safe mechanical fix.
* **Propagation.**  Assignments (plain, augmented, annotated, tuple
  unpacking, walrus), ``for``/comprehension targets, f-strings, binary
  and boolean operators, subscripts, and in-place mutations
  (``.add``/``.update``/``.append``/``.extend``) all forward taint;
  loop bodies are executed twice so loop-carried taint converges.
* **Sanitizers.**  ``sorted``/``min``/``max``/``sum``/``len``/``any``/
  ``all`` clear the ``unordered`` kind (order cannot reach the output
  through them), ``.as_dict()`` clears ``stats``, membership tests
  clear ``unordered``, and seeded ``random.Random(seed)`` instances
  never introduce ``rng`` in the first place.  Sanitizers are
  kind-specific on purpose: ``sum(times)`` is order-neutral but still
  clock-derived.

The result of a file pass is a list of :class:`Flow` records -- taint
kind, sink, minimal carrier expression, and (where one exists) a
machine-applicable :class:`~repro.analysis.findings.Suggestion` -- that
the rules in :mod:`repro.analysis.rules` turn into findings.  Flows are
computed once per file and cached on the :class:`FileContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from repro.analysis.findings import SAFETY_SAFE, SAFETY_UNSAFE, Suggestion

__all__ = [
    "Flow",
    "Taint",
    "file_flows",
    "WALL_CLOCK_CALLS",
    "EMIT_SINKS",
    "EMIT_SINK_SUFFIXES",
    "ORDER_NEUTRAL_CALLS",
]

# -- taint kinds -----------------------------------------------------------

UNORDERED = "unordered"
RNG = "rng"
CLOCK = "clock"
STATS = "stats"

# -- flow categories (one per dataflow rule) -------------------------------

CAT_EMIT_UNORDERED = "emit-unordered"  # RPR003
CAT_DIGEST_NONDET = "digest-nondet"  # RPR013
CAT_STATS_EXPORT = "stats-export"  # RPR014

# -- sources and sinks -----------------------------------------------------

WALL_CLOCK_CALLS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)

_AMBIENT_RNG_CALLS = frozenset({"os.urandom", "uuid.uuid4"})

EMIT_SINKS = frozenset({"json.dump", "json.dumps"})
EMIT_SINK_SUFFIXES = ("format_table",)

ORDER_NEUTRAL_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all"}
)

#: constructors whose output feeds the corpus substrate (RPR013 sinks).
_ARRAY_SINKS = frozenset(
    {
        "numpy.array",
        "numpy.asarray",
        "numpy.frombuffer",
        "numpy.fromiter",
        "array.array",
    }
)

#: builtins that preserve both the value and its iteration order.
_ORDER_PRESERVING = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate", "zip", "map", "filter"}
)

#: builtins that derive a new value embedding the old one.
_DERIVING = frozenset({"str", "repr", "bytes", "bytearray", "format", "dict"})

#: dataclasses whose instances must export through ``.as_dict()``
#: (the sorted-key report helpers) rather than ``vars``/``asdict``.
_STATS_CLASSES = frozenset({"FetchStats", "FailureRecord"})

#: in-place mutators that pour their argument's taint into the receiver.
_MUTATORS = frozenset({"add", "update", "append", "extend", "insert", "appendleft"})


@dataclass(frozen=True)
class Taint:
    """One kind of nondeterminism attached to a value."""

    kind: str
    line: int
    col: int
    detail: str  # human description of the introducing construct
    direct: bool = True  # the value IS the tainted object, not a container of it

    def embedded(self) -> "Taint":
        return replace(self, direct=False) if self.direct else self


@dataclass(frozen=True)
class Flow:
    """One tainted value reaching one sink."""

    category: str
    sink_name: str  # resolved sink display, e.g. "json.dumps"
    sink_line: int
    sink_col: int
    carrier: ast.AST  # minimal expression carrying the taint at the sink
    taint: Taint
    suggestion: Suggestion | None


_EMPTY: frozenset[Taint] = frozenset()


def _strip(taints: frozenset[Taint], kind: str) -> frozenset[Taint]:
    return frozenset(t for t in taints if t.kind != kind)


def _embed(taints: frozenset[Taint]) -> frozenset[Taint]:
    return frozenset(t.embedded() for t in taints)


def _has(taints: frozenset[Taint], kind: str) -> bool:
    return any(t.kind == kind for t in taints)


class _ScopeAnalyzer:
    """Forward taint propagation over one scope's statements."""

    def __init__(self, ctx, source: str) -> None:
        self.ctx = ctx
        self.source = source
        self.env: dict[str, frozenset[Taint]] = {}
        self.types: dict[str, str] = {}
        self.memo: dict[int, frozenset[Taint]] = {}
        self.flows: list[Flow] = []
        self._flow_keys: set[tuple] = set()

    # -- entry points ------------------------------------------------------

    def run_function(self, node: ast.AST) -> None:
        args = node.args
        for arg in [
            *getattr(args, "posonlyargs", []),
            *args.args,
            *args.kwonlyargs,
            *filter(None, [args.vararg, args.kwarg]),
        ]:
            if arg.annotation is not None:
                resolved = self.ctx.imports.resolve(arg.annotation)
                if resolved and resolved.rsplit(".", 1)[-1] in _STATS_CLASSES:
                    self.types[arg.arg] = resolved.rsplit(".", 1)[-1]
        self._exec_block(node.body)

    def run_statements(self, body: list[ast.stmt]) -> None:
        self._exec_block(body)

    # -- statement execution ----------------------------------------------

    def _exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are analysed separately
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, stmt.value, self._eval(stmt.value))
            elif isinstance(stmt.target, ast.Name) and stmt.annotation is not None:
                resolved = self.ctx.imports.resolve(stmt.annotation)
                if resolved and resolved.rsplit(".", 1)[-1] in _STATS_CLASSES:
                    self.types[stmt.target.id] = resolved.rsplit(".", 1)[-1]
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = (
                    self.env.get(stmt.target.id, _EMPTY) | taints
                )
            else:
                self._taint_base(stmt.target, taints)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            self._apply_mutation(stmt.value)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            value = getattr(stmt, "value", None) or getattr(stmt, "exc", None)
            if value is not None:
                self._eval(value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_block(stmt.body)
            after_body = self.env
            self.env = before
            self._exec_block(stmt.orelse)
            self._merge(after_body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self._eval(stmt.iter)
            self._bind(stmt.target, stmt.iter, _embed(iter_taints))
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)  # loop-carried taint converges
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, item.context_expr, taints)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif stmt.__class__.__name__ == "Match":
            self._eval(stmt.subject)
            merged = dict(self.env)
            for case in stmt.cases:
                self.env = dict(merged)
                self._exec_block(case.body)
                for name, taints in self.env.items():
                    merged[name] = merged.get(name, _EMPTY) | taints
            self.env = merged
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)

    def _merge(self, other_env: dict[str, frozenset[Taint]]) -> None:
        for name, taints in other_env.items():
            self.env[name] = self.env.get(name, _EMPTY) | taints

    def _bind(
        self, target: ast.expr, value: ast.expr | None, taints: frozenset[Taint]
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taints
            self.types.pop(target.id, None)
            if isinstance(value, ast.Call):
                resolved = self.ctx.imports.resolve(value.func)
                if resolved:
                    short = resolved.rsplit(".", 1)[-1]
                    if short in _STATS_CLASSES:
                        self.types[target.id] = short
                    elif resolved.startswith("hashlib."):
                        self.types[target.id] = "_digest"
                    elif resolved == "random.Random":
                        self.types[target.id] = (
                            "_seeded_rng"
                            if value.args or value.keywords
                            else "_unseeded_rng"
                        )
                    elif resolved == "random.SystemRandom":
                        self.types[target.id] = "_unseeded_rng"
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = (
                value.elts
                if isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                else None
            )
            for index, element in enumerate(target.elts):
                if elements is not None:
                    self._bind(
                        element, elements[index], self.memo.get(id(elements[index]), _EMPTY)
                    )
                else:
                    self._bind(element, None, _embed(taints))
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, _embed(taints))
        else:
            # obj.attr = tainted / d[k] = tainted: the container absorbs it.
            self._taint_base(target, _embed(taints))

    def _taint_base(self, target: ast.expr, taints: frozenset[Taint]) -> None:
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            self.env[node.id] = self.env.get(node.id, _EMPTY) | taints

    def _apply_mutation(self, expr: ast.expr) -> None:
        """``x.add(v)`` / ``x.update(v)`` / ``x.append(v)`` pour taint into x."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _MUTATORS
        ):
            return
        arg_taints: frozenset[Taint] = frozenset()
        for arg in [*expr.args, *[kw.value for kw in expr.keywords]]:
            arg_taints |= self.memo.get(id(arg), _EMPTY)
        if arg_taints:
            self._taint_base(expr.func.value, _embed(arg_taints))

    # -- expression evaluation --------------------------------------------

    def _eval(self, node: ast.expr) -> frozenset[Taint]:
        taints = self._eval_inner(node)
        self.memo[id(node)] = taints
        return taints

    def _eval_inner(self, node: ast.expr) -> frozenset[Taint]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Set):
            inner: frozenset[Taint] = frozenset()
            for element in node.elts:
                inner |= self._eval(element)
            return _embed(_strip(inner, UNORDERED)) | {
                Taint(UNORDERED, node.lineno, node.col_offset, "set literal")
            }
        if isinstance(node, ast.SetComp):
            inner = self._eval_comp(node)
            return _embed(_strip(inner, UNORDERED)) | {
                Taint(
                    UNORDERED, node.lineno, node.col_offset, "set comprehension"
                )
            }
        if isinstance(node, (ast.List, ast.Tuple)):
            out: frozenset[Taint] = frozenset()
            for element in node.elts:
                out |= _embed(self._eval(element))
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for key in node.keys:
                if key is not None:
                    out |= _embed(self._eval(key))
            for value in node.values:
                out |= _embed(self._eval(value))
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comp(node)
        if isinstance(node, ast.DictComp):
            gen_taints = self._eval_generators(node.generators)
            local = dict(self.env)
            key_taints = _embed(self._eval(node.key))
            value_taints = _embed(self._eval(node.value))
            self.env = local
            # a dict built by iterating an unordered source has
            # nondeterministic insertion order, but sorting the dict
            # itself is not a mechanical fix -- keep the taint embedded.
            return _embed(gen_taints) | key_taints | value_taints
        if isinstance(node, ast.JoinedStr):
            out = frozenset()
            for value in node.values:
                out |= self._eval(value)
            return _embed(out)
        if isinstance(node, ast.FormattedValue):
            taints = self._eval(node.value)
            if node.format_spec is not None:
                taints |= self._eval(node.format_spec)
            return taints
        if isinstance(node, (ast.BinOp,)):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            out = frozenset()
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            out = self._eval(node.left)
            for comparator in node.comparators:
                out |= self._eval(comparator)
            # comparisons (incl. membership) collapse to a bool: order
            # can no longer reach the output, derived values still can.
            return _embed(_strip(out, UNORDERED))
        if isinstance(node, ast.Subscript):
            taints = self._eval(node.value)
            if isinstance(node.slice, ast.expr):
                taints |= self._eval(node.slice)
            return _embed(taints)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            if node.attr == "__dict__":
                stats_cls = self._stats_class_of(node.value)
                if stats_cls is not None:
                    return base | {
                        Taint(
                            STATS,
                            node.lineno,
                            node.col_offset,
                            f"{stats_cls}.__dict__",
                        )
                    }
            return _embed(base)
        if isinstance(node, ast.IfExp):
            return (
                _embed(self._eval(node.test))
                | self._eval(node.body)
                | self._eval(node.orelse)
            )
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value)
            self._bind(node.target, node.value, taints)
            return taints
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            return self._eval(node.value) if node.value is not None else _EMPTY
        if isinstance(node, ast.Lambda):
            return _EMPTY  # its body is a separate (unanalysed) scope
        if isinstance(node, ast.Slice):
            out = frozenset()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out |= self._eval(part)
            return out
        return _EMPTY

    def _eval_generators(self, generators) -> frozenset[Taint]:
        """Bind comprehension targets; returns the iterables' taint."""
        out: frozenset[Taint] = frozenset()
        for gen in generators:
            iter_taints = self._eval(gen.iter)
            out |= iter_taints
            self._bind(gen.target, None, _embed(iter_taints))
            for cond in gen.ifs:
                self._eval(cond)
        return out

    def _eval_comp(self, node) -> frozenset[Taint]:
        local = dict(self.env)
        gen_taints = self._eval_generators(node.generators)
        element_taints = _embed(self._eval(node.elt))
        self.env = local
        # a list/generator over an unordered iterable inherits that
        # order nondeterminism *directly*: wrapping the whole
        # comprehension in sorted(...) is a faithful fix.
        return gen_taints | element_taints

    # -- calls: sources, sanitizers, sinks ---------------------------------

    def _eval_call(self, node: ast.Call) -> frozenset[Taint]:
        resolved = self.ctx.imports.resolve(node.func)
        arg_nodes = [*node.args, *[kw.value for kw in node.keywords]]
        arg_taints = frozenset()
        for arg in arg_nodes:
            arg_taints |= self._eval(arg)

        self._check_sinks(node, resolved, arg_nodes)

        if resolved in ORDER_NEUTRAL_CALLS:
            return _embed(_strip(arg_taints, UNORDERED))
        if resolved in ("set", "frozenset"):
            return _embed(_strip(arg_taints, UNORDERED)) | {
                Taint(
                    UNORDERED,
                    node.lineno,
                    node.col_offset,
                    f"{resolved}(...)",
                )
            }
        if resolved in WALL_CLOCK_CALLS:
            return arg_taints | {
                Taint(CLOCK, node.lineno, node.col_offset, f"{resolved}()")
            }
        if resolved is not None and self._is_ambient_rng(resolved, node):
            return arg_taints | {
                Taint(RNG, node.lineno, node.col_offset, f"{resolved}()")
            }
        if resolved == "vars" and len(node.args) == 1:
            stats_cls = self._stats_class_of(node.args[0])
            if stats_cls is not None:
                return arg_taints | {
                    Taint(
                        STATS,
                        node.lineno,
                        node.col_offset,
                        f"vars({stats_cls})",
                    )
                }
        if resolved in ("dataclasses.asdict", "dataclasses.astuple") and node.args:
            stats_cls = self._stats_class_of(node.args[0])
            if stats_cls is not None:
                return arg_taints | {
                    Taint(
                        STATS,
                        node.lineno,
                        node.col_offset,
                        f"{resolved.rsplit('.', 1)[-1]}({stats_cls})",
                    )
                }
        if resolved in _ORDER_PRESERVING:
            return arg_taints
        if resolved in _DERIVING:
            return _embed(arg_taints)
        if resolved == "random.Random":
            return _EMPTY  # the instance itself; draws are typed via _bind

        if isinstance(node.func, ast.Attribute):
            return self._eval_method_call(node, arg_taints)

        # Unknown plain function: assume it may impose an order or sort
        # its keys (keeps the false-positive rate down), but a value
        # computed *from* a clock/RNG read stays derived from it.
        return _embed(
            frozenset(t for t in arg_taints if t.kind in (RNG, CLOCK))
        )

    def _eval_method_call(
        self, node: ast.Call, arg_taints: frozenset[Taint]
    ) -> frozenset[Taint]:
        func = node.func
        receiver_taints = self._eval(func.value)
        if func.attr == "as_dict":
            return _embed(_strip(receiver_taints, STATS))
        if func.attr in ("values", "keys") and not node.args and not node.keywords:
            return _embed(receiver_taints) | {
                Taint(
                    UNORDERED,
                    node.lineno,
                    node.col_offset,
                    f".{func.attr}()",
                )
            }
        if func.attr == "join":
            # order flows through join verbatim: "".join(sorted(x)) is
            # clean because sorted() already stripped the taint.
            return receiver_taints | arg_taints
        if isinstance(func.value, ast.Name):
            receiver_type = self.types.get(func.value.id)
            if receiver_type == "_unseeded_rng":
                return arg_taints | {
                    Taint(
                        RNG,
                        node.lineno,
                        node.col_offset,
                        f"{func.value.id}.{func.attr}() (unseeded RNG)",
                    )
                }
            if receiver_type == "_seeded_rng":
                return _embed(arg_taints)
        return receiver_taints | _embed(arg_taints)

    @staticmethod
    def _is_ambient_rng(resolved: str, node: ast.Call) -> bool:
        if resolved in _AMBIENT_RNG_CALLS or resolved.startswith("secrets."):
            return True
        if resolved in ("random.Random", "random.SystemRandom"):
            return False  # instance construction, handled via types
        return resolved.startswith("random.")

    def _stats_class_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            cls = self.types.get(node.id)
            if cls in _STATS_CLASSES:
                return cls
        if isinstance(node, ast.Call):
            resolved = self.ctx.imports.resolve(node.func)
            if resolved and resolved.rsplit(".", 1)[-1] in _STATS_CLASSES:
                return resolved.rsplit(".", 1)[-1]
        return None

    # -- sinks -------------------------------------------------------------

    def _sink_names(self, node: ast.Call, resolved: str | None) -> tuple[str | None, str | None]:
        """(emit_sink_name, digest_sink_name) this call represents."""
        emit = digest = None
        if resolved is not None:
            if resolved in EMIT_SINKS:
                emit = resolved
            elif resolved.startswith("hashlib."):
                emit = resolved
                digest = resolved
            elif any(
                resolved == suffix or resolved.endswith("." + suffix)
                for suffix in EMIT_SINK_SUFFIXES
            ):
                emit = resolved.rsplit(".", 1)[-1]
            elif resolved in _ARRAY_SINKS:
                digest = resolved
            elif resolved == "Calibration" or resolved.endswith(".Calibration"):
                digest = "Calibration(...)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and isinstance(node.func.value, ast.Name)
            and self.types.get(node.func.value.id) == "_digest"
        ):
            emit = digest = f"{node.func.value.id}.update (digest)"
        return emit, digest

    def _check_sinks(
        self, node: ast.Call, resolved: str | None, arg_nodes: list[ast.expr]
    ) -> None:
        emit, digest = self._sink_names(node, resolved)
        if emit is None and digest is None:
            return
        for arg in arg_nodes:
            if emit is not None:
                for carrier, taint in self._carriers(arg, UNORDERED):
                    self._record(
                        CAT_EMIT_UNORDERED, emit, node, carrier, taint,
                        self._sorted_suggestion(carrier, taint),
                    )
                for carrier, taint in self._carriers(arg, STATS):
                    self._record(
                        CAT_STATS_EXPORT, emit, node, carrier, taint,
                        self._as_dict_suggestion(carrier),
                    )
            if digest is not None:
                for kind in (RNG, CLOCK):
                    for carrier, taint in self._carriers(arg, kind):
                        self._record(
                            CAT_DIGEST_NONDET, digest, node, carrier, taint, None
                        )

    def _carriers(
        self, node: ast.AST, kind: str
    ) -> list[tuple[ast.AST, Taint]]:
        """Minimal sub-expressions of ``node`` carrying ``kind``.

        Descends only while a child also carries the kind; among the
        minimal carriers, the ones whose taint is ``direct`` (the value
        *is* the tainted object) shadow indirect ones -- they are the
        root cause the fix should target.
        """
        if not _has(self.memo.get(id(node), _EMPTY), kind):
            return []
        found: list[tuple[ast.AST, Taint]] = []
        self._collect_carriers(node, kind, found)
        if any(taint.direct for _, taint in found):
            found = [(n, t) for n, t in found if t.direct]
        return found

    def _collect_carriers(
        self, node: ast.AST, kind: str, out: list[tuple[ast.AST, Taint]]
    ) -> None:
        own = [t for t in self.memo.get(id(node), _EMPTY) if t.kind == kind]
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)) and any(
            t.direct for t in own
        ):
            # a comprehension over an unordered iterable is itself the
            # sortable sequence; fix at the comprehension, not inside it.
            out.append((node, next(t for t in own if t.direct)))
            return
        tainted_children = [
            child
            for child in ast.iter_child_nodes(node)
            if _has(self.memo.get(id(child), _EMPTY), kind)
        ]
        if not tainted_children:
            taints = [
                t for t in self.memo.get(id(node), _EMPTY) if t.kind == kind
            ]
            direct = [t for t in taints if t.direct]
            out.append((node, (direct or taints)[0]))
            return
        for child in tainted_children:
            self._collect_carriers(child, kind, out)

    # -- suggestions -------------------------------------------------------

    def _segment(self, node: ast.AST) -> str | None:
        if getattr(node, "end_lineno", None) is None:
            return None
        return ast.get_source_segment(self.source, node)

    def _span(self, node: ast.AST) -> tuple[int, int, int, int] | None:
        if getattr(node, "end_lineno", None) is None:
            return None
        return (node.lineno, node.col_offset, node.end_lineno, node.end_col_offset)

    def _sorted_suggestion(
        self, carrier: ast.AST, taint: Taint
    ) -> Suggestion | None:
        segment = self._segment(carrier)
        span = self._span(carrier)
        if segment is None or span is None:
            return None
        wrappable = isinstance(
            carrier,
            (ast.Name, ast.Set, ast.SetComp, ast.ListComp, ast.GeneratorExp),
        ) or (
            isinstance(carrier, ast.Call)
            and (
                self.ctx.imports.resolve(carrier.func) in ("set", "frozenset")
                or (
                    isinstance(carrier.func, ast.Attribute)
                    and carrier.func.attr in ("values", "keys")
                )
            )
        )
        if isinstance(carrier, ast.GeneratorExp):
            segment = f"({segment})" if not segment.startswith("(") else segment
        safety = SAFETY_SAFE if (taint.direct and wrappable) else SAFETY_UNSAFE
        return Suggestion(
            line=span[0],
            col=span[1],
            end_line=span[2],
            end_col=span[3],
            replacement=f"sorted({segment})",
            safety=safety,
            description="wrap the unordered value in sorted(...) at the emit site",
        )

    def _as_dict_suggestion(self, carrier: ast.AST) -> Suggestion | None:
        span = self._span(carrier)
        if span is None:
            return None
        target: ast.expr | None = None
        if isinstance(carrier, ast.Call) and len(carrier.args) == 1:
            target = carrier.args[0]
        elif isinstance(carrier, ast.Attribute) and carrier.attr == "__dict__":
            target = carrier.value
        if target is None or not isinstance(target, (ast.Name, ast.Attribute)):
            return None
        segment = self._segment(target)
        if segment is None:
            return None
        return Suggestion(
            line=span[0],
            col=span[1],
            end_line=span[2],
            end_col=span[3],
            replacement=f"{segment}.as_dict()",
            safety=SAFETY_SAFE,
            description="export through the sorted-key .as_dict() helper",
        )

    def _record(
        self,
        category: str,
        sink_name: str,
        sink_node: ast.Call,
        carrier: ast.AST,
        taint: Taint,
        suggestion: Suggestion | None,
    ) -> None:
        key = (
            category,
            sink_node.lineno,
            sink_node.col_offset,
            getattr(carrier, "lineno", 0),
            getattr(carrier, "col_offset", 0),
            taint.kind,
        )
        if key in self._flow_keys:
            return  # loop bodies run twice; record each flow once
        self._flow_keys.add(key)
        self.flows.append(
            Flow(
                category=category,
                sink_name=sink_name,
                sink_line=sink_node.lineno,
                sink_col=sink_node.col_offset,
                carrier=carrier,
                taint=taint,
                suggestion=suggestion,
            )
        )


def _iter_scopes(tree: ast.Module):
    """(kind, node-or-body) for every scope: module, classes, functions."""
    yield "body", tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield "function", node
        elif isinstance(node, ast.ClassDef):
            yield "body", node.body


def compute_file_flows(tree: ast.Module, ctx) -> list[Flow]:
    source = "\n".join(ctx.source_lines)
    flows: list[Flow] = []
    for kind, scope in _iter_scopes(tree):
        analyzer = _ScopeAnalyzer(ctx, source)
        if kind == "function":
            analyzer.run_function(scope)
        else:
            analyzer.run_statements(scope)
        flows.extend(analyzer.flows)
    return flows


def file_flows(tree: ast.Module, ctx) -> list[Flow]:
    """Flows for ``tree``, computed once per file and cached on ``ctx``."""
    cached = ctx.scratch.get("dataflow")
    if cached is None or ctx.scratch.get("dataflow_tree_id") != id(tree):
        cached = compute_file_flows(tree, ctx)
        ctx.scratch["dataflow"] = cached
        ctx.scratch["dataflow_tree_id"] = id(tree)
    return cached
