"""Content-hash result cache under ``.repro-analysis-cache/``.

A warm run re-analyses only files whose bytes changed: each entry is
keyed by the file's relative path and guarded by the content hash plus
the engine/config/project digests, any of which invalidates it.  The
project digest matters for the cross-file rules -- editing an enum
definition must re-check every cached dispatcher -- and is why the
cache key cannot be the content hash alone.

Entries are written atomically (temp file + ``os.replace``) so parallel
or interrupted runs can never leave a truncated entry behind; unreadable
entries are treated as misses, mirroring
:class:`repro.scan.datastore.ArtifactCache`.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["ResultCache"]


class ResultCache:
    def __init__(
        self,
        directory: Path,
        engine_version: str,
        config_digest: str,
        project_digest: str,
    ) -> None:
        self.directory = Path(directory)
        self._guard = f"{engine_version}/{config_digest}/{project_digest}"

    @staticmethod
    def content_hash(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def _entry_path(self, rel_path: str) -> Path:
        name = hashlib.sha256(rel_path.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"{name}.json"

    def load(self, rel_path: str, content_hash: str) -> list[Finding] | None:
        """Cached findings, or None on any miss/mismatch/corruption."""
        try:
            raw = json.loads(self._entry_path(rel_path).read_text("utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            not isinstance(raw, dict)
            or raw.get("guard") != self._guard
            or raw.get("content_hash") != content_hash
            or raw.get("rel_path") != rel_path
        ):
            return None
        try:
            return [Finding.from_dict(item) for item in raw["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def store(
        self, rel_path: str, content_hash: str, findings: list[Finding]
    ) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._entry_path(rel_path)
        payload = json.dumps(
            {
                "guard": self._guard,
                "rel_path": rel_path,
                "content_hash": content_hash,
                "findings": [finding.as_dict() for finding in findings],
            }
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # The cache is an optimisation; never fail the run over it.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
