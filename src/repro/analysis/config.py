"""Analysis configuration, read from ``[tool.repro.analysis]`` in
pyproject.toml.

Recognised keys::

    [tool.repro.analysis]
    paths = ["src", "tests", "benchmarks"]   # default CLI targets
    exclude = ["tests/analysis/fixtures"]    # never analysed
    fix-exclude = ["tests"]                  # analysed but never autofixed
    baseline = ".repro-analysis-baseline.json"
    cache-dir = ".repro-analysis-cache"

    [tool.repro.analysis.per-path-ignores]
    "src/repro/net/clock.py" = ["RPR001"]    # the one blessed clock
    "tests/asn1" = ["RPR006"]                # DER tests write raw DER

Paths in ``exclude`` and ``per-path-ignores`` are repo-relative with
POSIX separators; a directory entry covers everything beneath it.
"""

from __future__ import annotations

import hashlib
import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["AnalysisConfig", "load_config"]


@dataclass(frozen=True)
class AnalysisConfig:
    root: Path
    paths: tuple[str, ...] = ("src", "tests", "benchmarks")
    exclude: tuple[str, ...] = ()
    #: paths the linter analyses but ``--fix`` must never edit.  Not
    #: part of :meth:`digest` -- autofix eligibility cannot change what
    #: the analysis finds, so it must not invalidate cached findings.
    fix_exclude: tuple[str, ...] = ()
    baseline: str | None = None
    cache_dir: str = ".repro-analysis-cache"
    per_path_ignores: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def digest(self) -> str:
        """Hash of everything that can change findings (cache key part)."""
        payload = json.dumps(
            {
                "exclude": sorted(self.exclude),
                "per_path_ignores": {
                    key: sorted(value)
                    for key, value in sorted(self.per_path_ignores.items())
                },
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def is_excluded(self, rel_path: str) -> bool:
        return any(_covers(prefix, rel_path) for prefix in self.exclude)

    def is_fix_excluded(self, rel_path: str) -> bool:
        return any(_covers(prefix, rel_path) for prefix in self.fix_exclude)

    def ignored_rules(self, rel_path: str) -> frozenset[str]:
        ignored: set[str] = set()
        for prefix, rules in self.per_path_ignores.items():
            if _covers(prefix, rel_path):
                ignored.update(rules)
        return frozenset(ignored)


def _covers(prefix: str, rel_path: str) -> bool:
    prefix = prefix.rstrip("/")
    return rel_path == prefix or rel_path.startswith(prefix + "/")


def find_project_root(start: Path) -> Path:
    """Walk upward until a pyproject.toml (or .git) is found."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file() or (
            candidate / ".git"
        ).exists():
            return candidate
    return start


def load_config(root: Path) -> AnalysisConfig:
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return AnalysisConfig(root=root)
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro", {}).get("analysis", {})
    ignores_raw = section.get("per-path-ignores", {})
    return AnalysisConfig(
        root=root,
        paths=tuple(section.get("paths", ("src", "tests", "benchmarks"))),
        exclude=tuple(section.get("exclude", ())),
        fix_exclude=tuple(section.get("fix-exclude", ())),
        baseline=section.get("baseline"),
        cache_dir=section.get("cache-dir", ".repro-analysis-cache"),
        per_path_ignores={
            str(key): tuple(value) for key, value in ignores_raw.items()
        },
    )
