"""Single-pass AST rule engine.

Each file is read, parsed, and walked exactly once.  Rules register the
node types they care about; the walker dispatches every node to the
rules subscribed to its type, so the cost per file is O(nodes) plus a
constant per rule -- adding a rule does not add a traversal.

The walker maintains the little bit of context rules need but the raw
AST lacks: resolved import aliases (``from random import Random as R``
still resolves ``R()`` to ``random.Random``), the current function
nesting depth (to tell module-level state from locals), and the source
lines (for ``# repro: noqa RPRxxx`` suppression and fingerprints).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, Suggestion, assign_fingerprints
from repro.analysis.project import ProjectContext

__all__ = ["FileContext", "Rule", "analyze_source", "analyze_file"]

#: bump when rule semantics change -- invalidates the result cache.
#: "3": RPR003 rewritten on the dataflow substrate, RPR013/RPR014
#: added, findings carry autofix suggestions.
#: "4": RPR015 (mechanism construction goes through the registry).
ENGINE_VERSION = "5"

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\s+(?P<rules>[A-Z0-9, ]+))?")


class ImportMap:
    """Resolves dotted references through the file's import aliases."""

    def __init__(self, tree: ast.AST) -> None:
        self.modules: dict[str, str] = {}
        self.symbols: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports never hit stdlib bans
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.symbols[local] = f"{node.module}.{alias.name}"

    def dotted(self, node: ast.expr) -> list[str] | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return parts

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted name with the head resolved through imports.

        Returns e.g. ``"datetime.datetime.now"`` for ``datetime.now()``
        under ``from datetime import datetime``.  Unresolvable heads
        (local variables, attributes of unknown objects) are returned
        verbatim so rules can still pattern-match plain builtins.
        """
        parts = self.dotted(node)
        if not parts:
            return None
        head = parts[0]
        if head in self.symbols:
            return ".".join([self.symbols[head], *parts[1:]])
        if head in self.modules:
            return ".".join([self.modules[head], *parts[1:]])
        return ".".join(parts)


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    rel_path: str
    source_lines: list[str]
    imports: ImportMap
    project: ProjectContext
    function_depth: int = 0
    _findings: list[Finding] = field(default_factory=list)
    #: per-file scratch space for substrates shared across rules (the
    #: dataflow pass computes once here, RPR003/013/014 all read it).
    scratch: dict = field(default_factory=dict)

    def report(
        self,
        node: ast.AST,
        rule: str,
        message: str,
        suggestion: Suggestion | None = None,
    ) -> None:
        self._findings.append(
            Finding(
                rule=rule,
                path=self.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                suggestion=suggestion,
            )
        )

    def report_at(
        self,
        line: int,
        col: int,
        rule: str,
        message: str,
        suggestion: Suggestion | None = None,
    ) -> None:
        self._findings.append(
            Finding(
                rule=rule,
                path=self.rel_path,
                line=line,
                col=col,
                message=message,
                suggestion=suggestion,
            )
        )


class Rule:
    """Base class: subscribe to node types, emit findings via ctx."""

    code: str = "RPR000"
    name: str = "base"
    summary: str = ""
    #: AST node classes this rule wants to see (empty: file-level only).
    node_types: tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> None:  # pragma: no cover
        """Called once per matching node."""

    def check_file(self, tree: ast.Module, ctx: FileContext) -> None:
        """Called once per file after the node pass."""


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _walk(
    node: ast.AST,
    ctx: FileContext,
    dispatch: dict[type, list[Rule]],
) -> None:
    for rule in dispatch.get(type(node), ()):
        rule.check(node, ctx)
    entering_function = isinstance(node, _FUNCTION_NODES)
    if entering_function:
        ctx.function_depth += 1
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, dispatch)
    if entering_function:
        ctx.function_depth -= 1


def _suppressed(finding: Finding, source_lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _NOQA.search(source_lines[finding.line - 1])
    if not match:
        return False
    rules = match.group("rules")
    if not rules:
        return True  # blanket noqa
    codes = {code.strip() for code in rules.replace(",", " ").split()}
    return finding.rule in codes


def analyze_source(
    source: str,
    rel_path: str,
    rules: list[Rule],
    project: ProjectContext | None = None,
) -> list[Finding]:
    """Run ``rules`` over one file's text; returns fingerprinted findings."""
    project = project or ProjectContext()
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            rule="RPR000",
            path=rel_path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )
        return assign_fingerprints([finding], source_lines)
    ctx = FileContext(
        rel_path=rel_path,
        source_lines=source_lines,
        imports=ImportMap(tree),
        project=project,
    )
    dispatch: dict[type, list[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    _walk(tree, ctx, dispatch)
    for rule in rules:
        rule.check_file(tree, ctx)
    kept = [f for f in ctx._findings if not _suppressed(f, source_lines)]
    return assign_fingerprints(kept, source_lines)


def analyze_file(
    path: Path,
    rel_path: str,
    rules: list[Rule],
    project: ProjectContext | None = None,
) -> list[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                rule="RPR000",
                path=rel_path,
                line=1,
                col=0,
                message=f"file is unreadable: {exc}",
                fingerprint="unreadable",
            )
        ]
    return analyze_source(source, rel_path, rules, project)
