"""CRLSets: Chrome's pushed revocation list (paper §7).

Implements the documented CRLSet construction rules, coverage/dynamics
analyses, and the paper's proposed Bloom-filter replacement (§7.4) plus
Langley's Golomb-Compressed-Set refinement.
"""

from repro.crlset.bloom import BloomFilter, optimal_k, false_positive_rate
from repro.crlset.gcs import GolombCompressedSet
from repro.crlset.format import CrlSetSnapshot
from repro.crlset.builder import CrlSetBuilder, CrlSetHistory, EntryHistory
from repro.crlset.coverage import CoverageReport, analyze_coverage
from repro.crlset.dynamics import DynamicsReport, analyze_dynamics

__all__ = [
    "BloomFilter",
    "CoverageReport",
    "CrlSetBuilder",
    "CrlSetHistory",
    "CrlSetSnapshot",
    "DynamicsReport",
    "EntryHistory",
    "GolombCompressedSet",
    "analyze_coverage",
    "analyze_dynamics",
    "false_positive_rate",
    "optimal_k",
]
