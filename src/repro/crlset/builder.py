"""CRLSet construction pipeline.

Implements the documented rules the paper lists in §7.1:

1. the CRLSet file is capped at 250 KB;
2. it is populated from an internal list of crawled CRLs, fetched on the
   order of hours (we give each covered CRL a deterministic crawl lag);
3. a CRL with too many entries is dropped;
4. only revocations with a CRLSet-eligible reason code are included.

Plus the phenomena the paper observes empirically: a subset of covered
CRLs is only partially reflected (Fig 7's tail), a two-week update gap in
Nov-Dec 2014 (Fig 9), and the May 2014 removal of a large "VeriSign EV"
parent that shrank the CRLSet by a quarter (Fig 8).

The builder runs one chronological sweep over the study window and
records, per entry, when it first appeared in and was removed from the
CRLSet -- the raw material for Figures 8, 9, and 10.

The sweep synchronises membership incrementally: on build days where the
set of included CRLs is unchanged, only the entries whose underlying
crawled state changed since the last build are reconsidered, instead of
re-unioning every included CRL's active set.  ``run(incremental=False)``
keeps the original full-rebuild path as a reference; the two are
asserted identical in ``tests/crlset/test_builder_analyses.py``.
"""

from __future__ import annotations

import datetime
import hashlib
import random
from dataclasses import dataclass

from repro.crlset.format import CrlSetSnapshot, serial_to_bytes
from repro.revocation.reason import is_crlset_eligible
from repro.scan.calibration import Calibration
from repro.scan.crawl_index import CrawlIndex
from repro.scan.crl_model import EcosystemCrl
from repro.scan.ecosystem import Ecosystem

__all__ = ["CrlSetBuilder", "CrlSetHistory", "EntryHistory"]

_DAY = datetime.timedelta(days=1)


@dataclass(slots=True)
class EntryHistory:
    """CRLSet lifecycle of one revocation entry."""

    parent: bytes
    serial: int
    crl_url: str
    revoked_at: datetime.date
    cert_not_after: datetime.date
    eligible: bool
    in_partial_subset: bool
    first_appeared: datetime.date | None = None
    removed_at: datetime.date | None = None

    @property
    def days_to_appear(self) -> int | None:
        if self.first_appeared is None:
            return None
        return (self.first_appeared - self.revoked_at).days

    @property
    def removed_before_expiry_days(self) -> int | None:
        """Days between CRLSet removal and certificate expiry (Fig 10)."""
        if self.removed_at is None or self.removed_at >= self.cert_not_after:
            return None
        return (self.cert_not_after - self.removed_at).days


@dataclass
class CrlSetHistory:
    """Everything one builder sweep produced."""

    daily_entry_counts: dict[datetime.date, int]
    daily_additions: dict[datetime.date, int]
    daily_removals: dict[datetime.date, int]
    entry_histories: list[EntryHistory]
    final_snapshot: CrlSetSnapshot
    covered_urls: frozenset[str]
    #: CRLs dropped for exceeding the entry threshold (rule 3).
    dropped_urls: frozenset[str]
    parents_ever: frozenset[bytes]

    def snapshot_count_on(self, day: datetime.date) -> int:
        return self.daily_entry_counts.get(day, 0)


class _CrlTrack:
    """Builder-internal per-CRL state."""

    __slots__ = (
        "crl",
        "lag_days",
        "partial_fraction",
        "active",
        "byte_size",
        "included",
        "parent_removed",
    )

    def __init__(self, crl: EcosystemCrl, lag_days: int, partial_fraction: float):
        self.crl = crl
        self.lag_days = lag_days
        self.partial_fraction = partial_fraction
        #: entry keys currently listed on the (lagged) crawled CRL.
        self.active: set[tuple[bytes, int]] = set()
        self.byte_size = 36  # parent hash + count, charged once per CRL
        self.included = False
        self.parent_removed = False

    def crawled_entry_count(self, day) -> int:
        """What Google's crawler sees listed on this CRL: the eligible
        materialised entries plus the bulk-modelled hidden population
        (present on the wire even though we never identify each entry)."""
        hidden = self.crl.hidden.count_at(day) if self.crl.hidden is not None else 0
        return len(self.active) + hidden


class CrlSetBuilder:
    """Builds the daily CRLSet series for an ecosystem."""

    def __init__(
        self,
        ecosystem: Ecosystem,
        removal_brand: str = "VerisignEV",
        seed: int = 11,
        blocked_spki_count: int = 11,
        apply_reason_filter: bool = True,
        max_entries_override: int | None = None,
        size_cap_override: int | None = None,
        index: CrawlIndex | None = None,
    ) -> None:
        """The three ``*_override``/``apply_*`` knobs exist for the
        ablation benches: they disable, respectively, the reason-code
        filter (rule 4), the per-CRL entry drop threshold (rule 3), and
        the 250 KB cap (rule 1).  ``index`` shares one
        :class:`CrawlIndex` (and hence the per-CRL event timelines) with
        the crawler and dynamics analysis."""
        self.ecosystem = ecosystem
        self.calibration: Calibration = ecosystem.calibration
        self.index = index if index is not None else CrawlIndex(ecosystem)
        self.removal_brand = removal_brand
        self.apply_reason_filter = apply_reason_filter
        self.max_entries = (
            max_entries_override
            if max_entries_override is not None
            else self.calibration.crlset_max_entries_per_crl
        )
        self.size_cap = (
            size_cap_override
            if size_cap_override is not None
            else self.calibration.crlset_size_cap_bytes
        )
        self._rng = random.Random(seed)
        self._blocked_spkis = frozenset(
            hashlib.sha256(f"blocked-spki-{i}".encode()).digest()
            for i in range(blocked_spki_count)
        )

    # -- deterministic per-CRL attributes ---------------------------------

    def _crawl_lag_days(self, url: str) -> int:
        low, high = self.calibration.crlset_crawl_period_hours
        digest = hashlib.sha256(url.encode()).digest()
        hours = low + digest[0] % (high - low + 1)
        return max(0, (hours + 12) // 24)  # crawled within `hours`

    def _partial_fraction(self, url: str) -> float:
        cal = self.calibration
        digest = hashlib.sha256(b"partial" + url.encode()).digest()
        if digest[0] / 255.0 >= cal.crlset_partial_coverage_fraction:
            return 1.0
        low, high = cal.crlset_partial_coverage_range
        return low + (digest[1] / 255.0) * (high - low)

    @staticmethod
    def _in_partial_subset(serial: int, fraction: float) -> bool:
        if fraction >= 1.0:
            return True
        digest = hashlib.sha256(b"subset" + serial_to_bytes(serial)).digest()
        return digest[0] / 256.0 < fraction

    # -- the sweep ----------------------------------------------------------

    def run(
        self,
        start: datetime.date | None = None,
        end: datetime.date | None = None,
        incremental: bool = True,
    ) -> CrlSetHistory:
        """Sweep the build window.

        ``incremental=False`` forces the original full member-set rebuild
        on every build day (reference path for equality tests).
        """
        cal = self.calibration
        start = start or cal.crlset_build_start
        end = end or cal.measurement_end

        tracks: dict[str, _CrlTrack] = {}
        histories: dict[tuple[bytes, int], EntryHistory] = {}
        adds_by_day: dict[datetime.date, list[tuple[str, tuple[bytes, int]]]] = {}
        removes_by_day: dict[datetime.date, list[tuple[str, tuple[bytes, int]]]] = {}

        for crl in self.ecosystem.crls:
            if not crl.covered:
                continue
            track = _CrlTrack(
                crl,
                lag_days=self._crawl_lag_days(crl.url),
                partial_fraction=self._partial_fraction(crl.url),
            )
            tracks[crl.url] = track
            for entry in crl.entries:
                key = (crl.issuer_key_hash, entry.serial_number)
                history = EntryHistory(
                    parent=crl.issuer_key_hash,
                    serial=entry.serial_number,
                    crl_url=crl.url,
                    revoked_at=entry.revoked_at,
                    cert_not_after=entry.cert_not_after,
                    eligible=(
                        is_crlset_eligible(entry.reason)
                        if self.apply_reason_filter
                        else True
                    ),
                    in_partial_subset=self._in_partial_subset(
                        entry.serial_number, track.partial_fraction
                    ),
                )
                histories[key] = history
                if not history.eligible or not history.in_partial_subset:
                    continue  # never enters the CRLSet
                add_day = entry.revoked_at + datetime.timedelta(days=track.lag_days)
                remove_day = entry.cert_not_after + _DAY
                if add_day <= end and remove_day > max(add_day, start):
                    adds_by_day.setdefault(max(add_day, start), []).append(
                        (crl.url, key)
                    )
                    if remove_day <= end:
                        removes_by_day.setdefault(remove_day, []).append(
                            (crl.url, key)
                        )

        members: set[tuple[bytes, int]] = set()
        daily_counts: dict[datetime.date, int] = {}
        daily_additions: dict[datetime.date, int] = {}
        daily_removals: dict[datetime.date, int] = {}
        dropped_urls: set[str] = set()
        parents_ever: set[bytes] = set()
        entry_sizes: dict[tuple[bytes, int], int] = {}

        def entry_size(key: tuple[bytes, int]) -> int:
            size = entry_sizes.get(key)
            if size is None:
                size = 1 + len(serial_to_bytes(key[1]))
                entry_sizes[key] = size
            return size

        day = start
        removal_applied = False
        #: included-URL set as of the last build day (None forces a full
        #: rebuild: first day, or the parent-removal discontinuity).
        prev_included: frozenset[str] | None = None
        #: key -> url for entries whose crawled state changed since the
        #: last build day (the only membership candidates when the
        #: included-URL set is unchanged).
        pending: dict[tuple[bytes, int], str] = {}
        while day <= end:
            in_gap = cal.crlset_gap_start <= day < cal.crlset_gap_end
            added_today = 0
            removed_today = 0

            # 1. underlying crawled-CRL state always advances.
            for url, key in adds_by_day.get(day, ()):
                track = tracks[url]
                track.active.add(key)
                track.byte_size += entry_size(key)
                pending[key] = url
            for url, key in removes_by_day.get(day, ()):
                track = tracks[url]
                track.active.discard(key)
                track.byte_size -= entry_size(key)
                pending[key] = url

            # 2. the parent-removal event.
            if not removal_applied and day >= cal.crlset_parent_removal_date:
                for track in tracks.values():
                    if track.crl.brand == self.removal_brand:
                        track.parent_removed = True
                removal_applied = True
                prev_included = None  # inclusion set changes discontinuously

            # 3. on build days, recompute inclusion and sync the member set.
            if not in_gap:
                included_urls = self._included_urls(tracks, day)
                if (
                    incremental
                    and prev_included is not None
                    and included_urls == prev_included
                ):
                    added_today, removed_today = self._sync_pending(
                        tracks, members, histories, pending, included_urls, day
                    )
                else:
                    added_today, removed_today = self._sync_full(
                        tracks, members, histories, included_urls, day
                    )
                prev_included = included_urls
                pending.clear()
                for track in tracks.values():
                    if track.included:
                        parents_ever.add(track.crl.issuer_key_hash)
                    elif track.crawled_entry_count(day) > self.max_entries:
                        dropped_urls.add(track.crl.url)

            daily_counts[day] = len(members)
            daily_additions[day] = added_today
            daily_removals[day] = removed_today
            day += _DAY

        final_parents: dict[bytes, set[int]] = {}
        for parent, serial in members:
            final_parents.setdefault(parent, set()).add(serial)
        final_snapshot = CrlSetSnapshot(
            sequence=len(daily_counts),
            date=end,
            parents={p: frozenset(s) for p, s in final_parents.items()},
            blocked_spkis=self._blocked_spkis,
        )
        return CrlSetHistory(
            daily_entry_counts=daily_counts,
            daily_additions=daily_additions,
            daily_removals=daily_removals,
            entry_histories=list(histories.values()),
            final_snapshot=final_snapshot,
            covered_urls=frozenset(tracks),
            dropped_urls=frozenset(dropped_urls),
            parents_ever=frozenset(parents_ever),
        )

    def _included_urls(
        self, tracks: dict[str, _CrlTrack], day: datetime.date
    ) -> frozenset[str]:
        """Recompute CRL inclusion (rules 1 and 3) and flag the tracks."""
        candidates = [
            track
            for track in tracks.values()
            if not track.parent_removed
            and track.crawled_entry_count(day) <= self.max_entries
        ]
        # Rule 3, applied against the byte cap: if everything does not fit
        # in 250 KB, the CRLs with the most entries are dropped first (a
        # CRL "with too many entries" is dropped, §7.1).
        candidates.sort(key=lambda track: len(track.active))
        budget = self.size_cap - 64  # header overhead
        total = sum(track.byte_size for track in candidates)
        while candidates and total > budget:
            dropped = candidates.pop()  # most entries
            total -= dropped.byte_size
        included_urls = frozenset(track.crl.url for track in candidates)
        for track in tracks.values():
            track.included = track.crl.url in included_urls
        return included_urls

    def _sync_full(
        self,
        tracks: dict[str, _CrlTrack],
        members: set[tuple[bytes, int]],
        histories: dict[tuple[bytes, int], EntryHistory],
        included_urls: frozenset[str],
        day: datetime.date,
    ) -> tuple[int, int]:
        """Rebuild membership as the union of every included active set."""
        new_members: set[tuple[bytes, int]] = set()
        for url in included_urls:
            new_members |= tracks[url].active

        added = 0
        removed = 0
        for key in new_members - members:
            history = histories[key]
            if history.first_appeared is None:
                history.first_appeared = day
            history.removed_at = None
            added += 1
        for key in members - new_members:
            histories[key].removed_at = day
            removed += 1
        members.clear()
        members.update(new_members)
        return added, removed

    def _sync_pending(
        self,
        tracks: dict[str, _CrlTrack],
        members: set[tuple[bytes, int]],
        histories: dict[tuple[bytes, int], EntryHistory],
        pending: dict[tuple[bytes, int], str],
        included_urls: frozenset[str],
        day: datetime.date,
    ) -> tuple[int, int]:
        """Delta path: the included-URL set is unchanged since the last
        build day, so membership can only have changed for entries whose
        crawled state changed in between.  Each key lives on exactly one
        CRL, so its membership is simply its presence on that (included)
        CRL's active set.  Produces states and counts identical to
        :meth:`_sync_full`."""
        added = 0
        removed = 0
        for key, url in pending.items():
            if url not in included_urls:
                continue
            if key in tracks[url].active:
                if key not in members:
                    members.add(key)
                    history = histories[key]
                    if history.first_appeared is None:
                        history.first_appeared = day
                    history.removed_at = None
                    added += 1
            elif key in members:
                members.discard(key)
                histories[key].removed_at = day
                removed += 1
        return added, removed
