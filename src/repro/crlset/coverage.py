"""CRLSet coverage analysis (paper §7.2, Figure 7).

Compares what the CRLSet ever contained against the full CRL corpus:
overall entry coverage (the paper's headline 0.35%), per-covered-CRL
coverage CDFs (all entries vs CRLSet-reason-coded entries), parent
coverage, and Alexa-popularity coverage.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.crlset.builder import CrlSetHistory
from repro.revocation.reason import is_crlset_eligible
from repro.scan.ecosystem import Ecosystem

__all__ = ["CoverageReport", "analyze_coverage"]


@dataclass(frozen=True)
class CoverageReport:
    """§7.2's coverage statistics for one builder run."""

    total_crl_entries: int
    crlset_entries_ever: int
    covered_crl_count: int
    total_crl_count: int
    parents_in_crlset: int
    total_ca_certs: int
    #: per covered CRL: fraction of ALL its entries ever in the CRLSet.
    per_crl_coverage_all: list[float]
    #: per covered CRL: fraction of its REASON-CODED-eligible entries.
    per_crl_coverage_eligible: list[float]
    fully_covered_fraction: float
    alexa_1m_revocations: int
    alexa_1m_in_crlset: int
    alexa_1k_revocations: int
    alexa_1k_in_crlset: int

    @property
    def coverage_fraction(self) -> float:
        if not self.total_crl_entries:
            return 0.0
        return self.crlset_entries_ever / self.total_crl_entries

    @property
    def parent_coverage_fraction(self) -> float:
        if not self.total_ca_certs:
            return 0.0
        return self.parents_in_crlset / self.total_ca_certs

    @property
    def alexa_1m_fraction(self) -> float:
        if not self.alexa_1m_revocations:
            return 0.0
        return self.alexa_1m_in_crlset / self.alexa_1m_revocations


def analyze_coverage(
    ecosystem: Ecosystem,
    history: CrlSetHistory,
    at: datetime.date | None = None,
) -> CoverageReport:
    at = at or ecosystem.calibration.measurement_end

    ever_appeared = {
        (h.parent, h.serial)
        for h in history.entry_histories
        if h.first_appeared is not None
    }
    total_entries = ecosystem.total_crl_entries(at)

    # The paper's "covered CRLs" are those that ever had an entry appear
    # in a CRLSet (295 of 2,800) -- not merely those Google crawls.
    urls_with_appearance = {
        h.crl_url for h in history.entry_histories if h.first_appeared is not None
    }

    # Censor the final crawl lag: an entry revoked in the last few days
    # cannot have propagated into any CRLSet yet, and the paper compares
    # CRL and CRLSet snapshots of the same date.
    lag = datetime.timedelta(hours=ecosystem.calibration.crlset_crawl_period_hours[1])
    cutoff = at - lag - datetime.timedelta(days=1)

    per_all: list[float] = []
    per_eligible: list[float] = []
    covered_count = 0
    for crl in ecosystem.crls:
        if crl.url not in urls_with_appearance:
            continue
        visible = [
            entry
            for entry in crl.visible_entries(at)
            if entry.revoked_at <= cutoff
        ]
        if not visible:
            continue
        covered_count += 1
        in_set = sum(
            1
            for entry in visible
            if (crl.issuer_key_hash, entry.serial_number) in ever_appeared
        )
        per_all.append(in_set / len(visible))
        eligible = [e for e in visible if is_crlset_eligible(e.reason)]
        if eligible:
            eligible_in = sum(
                1
                for entry in eligible
                if (crl.issuer_key_hash, entry.serial_number) in ever_appeared
            )
            per_eligible.append(eligible_in / len(eligible))

    fully = sum(1 for fraction in per_eligible if fraction >= 0.999)
    fully_fraction = fully / len(per_eligible) if per_eligible else 0.0

    # -- Alexa popularity coverage (§7.2, "Un-covered Revocations") --------
    alexa_1m_cut = ecosystem.calibration.scaled(1_000_000)
    alexa_1k_cut = max(1, ecosystem.calibration.scaled(1_000))
    alexa_1m_revoked = 0
    alexa_1m_in = 0
    alexa_1k_revoked = 0
    alexa_1k_in = 0
    parent_by_int = {
        rec.intermediate_id: rec.spki_hash for rec in ecosystem.intermediates
    }
    for leaf in ecosystem.leaves:
        if leaf.alexa_rank is None or not leaf.is_revoked:
            continue
        key = (parent_by_int[leaf.intermediate_id], leaf.serial_number)
        covered = key in ever_appeared
        if leaf.alexa_rank <= alexa_1m_cut:
            alexa_1m_revoked += 1
            alexa_1m_in += covered
        if leaf.alexa_rank <= alexa_1k_cut:
            alexa_1k_revoked += 1
            alexa_1k_in += covered

    # CA certificates: intermediates + roots, as in the paper's 2,168.
    total_ca_certs = len(ecosystem.intermediates) + len(ecosystem.roots)

    return CoverageReport(
        total_crl_entries=total_entries,
        crlset_entries_ever=len(ever_appeared),
        covered_crl_count=covered_count,
        total_crl_count=len(ecosystem.crls),
        parents_in_crlset=len(history.parents_ever),
        total_ca_certs=total_ca_certs,
        per_crl_coverage_all=sorted(per_all),
        per_crl_coverage_eligible=sorted(per_eligible),
        fully_covered_fraction=fully_fraction,
        alexa_1m_revocations=alexa_1m_revoked,
        alexa_1m_in_crlset=alexa_1m_in,
        alexa_1k_revocations=alexa_1k_revoked,
        alexa_1k_in_crlset=alexa_1k_in,
    )
