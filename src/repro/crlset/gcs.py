"""Golomb Compressed Sets.

Langley [25] suggests Golomb-coded sets as a more space-efficient Bloom
alternative for revocation dissemination: hash every item into a range of
size n/p, sort, and Golomb-Rice-code the deltas.  Queries decode the
stream; false-positive rate is ~p with ~n*(log2(1/p) + 1.5) bits versus a
Bloom filter's ~n*log2(1/p)*1.44 bits.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

__all__ = ["GolombCompressedSet"]


class _BitWriter:
    def __init__(self) -> None:
        self._bits: list[int] = []

    def write_unary(self, quotient: int) -> None:
        self._bits.extend([1] * quotient)
        self._bits.append(0)

    def write_binary(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        out = bytearray((len(self._bits) + 7) // 8)
        for i, bit in enumerate(self._bits):
            if bit:
                out[i >> 3] |= 1 << (7 - (i & 7))
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bits)


class _BitReader:
    def __init__(self, data: bytes, nbits: int) -> None:
        self._data = data
        self._nbits = nbits
        self._pos = 0

    def read_bit(self) -> int:
        if self._pos >= self._nbits:
            raise EOFError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_binary(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._nbits


class GolombCompressedSet:
    """An immutable GCS built from a set of byte-string items."""

    def __init__(self, items: Iterable[bytes], fp_rate: float = 0.01) -> None:
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        hashes = sorted({self._hash_item(item) for item in items})
        self.n = len(hashes)
        self.fp_rate = fp_rate
        # Map hashes into [0, n/p); Rice parameter ~ log2(1/p).
        self._divisor = max(1, round(1.0 / fp_rate))
        self._range = max(1, self.n * self._divisor)
        self._rice_bits = max(1, round(math.log2(self._divisor)))
        mapped = sorted({h % self._range for h in hashes})
        self._members = None  # decoded lazily on first query

        writer = _BitWriter()
        previous = 0
        for value in mapped:
            delta = value - previous
            previous = value
            quotient = delta >> self._rice_bits
            remainder = delta & ((1 << self._rice_bits) - 1)
            writer.write_unary(quotient)
            writer.write_binary(remainder, self._rice_bits)
        self._nbits = len(writer)
        self._data = writer.to_bytes()
        self._stored = len(mapped)

    @staticmethod
    def _hash_item(item: bytes) -> int:
        return int.from_bytes(hashlib.sha256(item).digest()[:8], "big")

    @property
    def size_bytes(self) -> int:
        return len(self._data)

    def _decode(self) -> set[int]:
        if self._members is None:
            reader = _BitReader(self._data, self._nbits)
            members: set[int] = set()
            previous = 0
            for _ in range(self._stored):
                quotient = reader.read_unary()
                remainder = reader.read_binary(self._rice_bits)
                previous += (quotient << self._rice_bits) | remainder
                members.add(previous)
            self._members = members
        return self._members

    def __contains__(self, item: bytes) -> bool:
        return (self._hash_item(item) % self._range) in self._decode()

    def bits_per_item(self) -> float:
        return (self._nbits / self.n) if self.n else 0.0
