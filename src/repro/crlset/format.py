"""CRLSet serialization.

A CRLSet (paper §7.1) is a list of key/value pairs: the key is the SHA-256
of the issuing certificate's public key (the *parent*), the values are the
serial numbers of revoked certificates signed by that parent.  A small
auxiliary list of *blocked SPKIs* blocks specific leaves by public key.

The wire format here mirrors Chrome's in spirit (sequence number, parent
blocks with length-prefixed serials) without replicating its exact JSON
header; what matters for the study is faithful byte-size accounting
against the 250 KB cap.
"""

from __future__ import annotations

import datetime
import struct
from dataclasses import dataclass, field

__all__ = ["CrlSetSnapshot", "serial_to_bytes", "serialized_size"]

_MAGIC = b"CRLS"


def serial_to_bytes(serial: int) -> bytes:
    """Minimal big-endian encoding of a serial number."""
    if serial < 0:
        raise ValueError("serial numbers are non-negative")
    return serial.to_bytes(max(1, (serial.bit_length() + 7) // 8), "big")


def serialized_size(parents: dict[bytes, set[int]]) -> int:
    """Exact byte size the snapshot would serialise to (cheap, no I/O)."""
    size = len(_MAGIC) + 4 + 4 + 4 + 4  # magic, sequence, date, #parents, #spkis
    for parent, serials in parents.items():
        size += 32 + 4
        for serial in serials:
            size += 1 + len(serial_to_bytes(serial))
    return size


@dataclass(frozen=True)
class CrlSetSnapshot:
    """One published CRLSet."""

    sequence: int
    date: datetime.date
    #: parent SPKI hash -> revoked serials under that parent.
    parents: dict[bytes, frozenset[int]]
    #: leaf certificates blocked outright by SPKI hash.
    blocked_spkis: frozenset[bytes] = field(default_factory=frozenset)

    @property
    def entry_count(self) -> int:
        return sum(len(serials) for serials in self.parents.values())

    @property
    def parent_count(self) -> int:
        return len(self.parents)

    def covers(self, parent_spki_hash: bytes) -> bool:
        return parent_spki_hash in self.parents

    def is_revoked(self, parent_spki_hash: bytes, serial: int) -> bool:
        serials = self.parents.get(parent_spki_hash)
        return serials is not None and serial in serials

    def is_blocked_spki(self, spki_hash: bytes) -> bool:
        return spki_hash in self.blocked_spkis

    def entries(self) -> set[tuple[bytes, int]]:
        return {
            (parent, serial)
            for parent, serials in self.parents.items()
            for serial in serials
        }

    # -- wire format ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(_MAGIC)
        out += struct.pack(">I", self.sequence)
        out += struct.pack(">I", self.date.toordinal())
        out += struct.pack(">I", len(self.parents))
        out += struct.pack(">I", len(self.blocked_spkis))
        for parent in sorted(self.parents):
            serials = self.parents[parent]
            out += parent
            out += struct.pack(">I", len(serials))
            for serial in sorted(serials):
                encoded = serial_to_bytes(serial)
                if len(encoded) > 255:
                    raise ValueError("serial too large for CRLSet encoding")
                out += bytes([len(encoded)]) + encoded
        for spki in sorted(self.blocked_spkis):
            out += spki
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CrlSetSnapshot":
        if data[:4] != _MAGIC:
            raise ValueError("bad CRLSet magic")
        sequence, ordinal, n_parents, n_spkis = struct.unpack_from(">IIII", data, 4)
        offset = 20
        parents: dict[bytes, frozenset[int]] = {}
        for _ in range(n_parents):
            parent = data[offset : offset + 32]
            offset += 32
            (count,) = struct.unpack_from(">I", data, offset)
            offset += 4
            serials = set()
            for _ in range(count):
                length = data[offset]
                offset += 1
                serials.add(int.from_bytes(data[offset : offset + length], "big"))
                offset += length
            parents[parent] = frozenset(serials)
        blocked = set()
        for _ in range(n_spkis):
            blocked.add(data[offset : offset + 32])
            offset += 32
        if offset != len(data):
            raise ValueError("trailing bytes in CRLSet encoding")
        return cls(
            sequence=sequence,
            date=datetime.date.fromordinal(ordinal),
            parents=parents,
            blocked_spkis=frozenset(blocked),
        )

    @property
    def size_bytes(self) -> int:
        return serialized_size(
            {parent: set(serials) for parent, serials in self.parents.items()}
        ) + 32 * len(self.blocked_spkis)
