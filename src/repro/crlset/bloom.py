"""Bloom filters (paper §7.4).

The paper proposes replacing CRLSets with a Bloom filter: no false
negatives (a revoked certificate always hits), a tunable false-positive
rate (a hit triggers a CRL check before blocking), and an order of
magnitude more revocations in the same 250 KB budget.  Figure 11 sweeps
filter size m, population n, and false-positive rate p with the optimal
hash count k = ceil(m/n * ln 2).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

__all__ = ["BloomFilter", "false_positive_rate", "optimal_k", "capacity_at_fp_rate"]


def optimal_k(m_bits: int, n_items: int) -> int:
    """The paper's formula: k = ceil(m/n * ln 2), at least 1."""
    if n_items <= 0:
        return 1
    return max(1, math.ceil(m_bits / n_items * math.log(2)))


def false_positive_rate(m_bits: int, n_items: int, k: int | None = None) -> float:
    """Analytic FP rate p = (1 - e^{-kn/m})^k."""
    if n_items <= 0:
        return 0.0
    if m_bits <= 0:
        return 1.0
    if k is None:
        k = optimal_k(m_bits, n_items)
    return (1.0 - math.exp(-k * n_items / m_bits)) ** k


def capacity_at_fp_rate(m_bits: int, p: float) -> int:
    """Largest n with FP rate <= p at optimal k: n = -m ln^2(2) / ln p."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    return int(-m_bits * (math.log(2) ** 2) / math.log(p))


class BloomFilter:
    """A classic Bloom filter over byte-string items.

    Hashing uses double hashing (Kirsch-Mitzenmauer) over SHA-256 halves,
    which preserves the asymptotic FP behaviour with two base hashes.
    """

    def __init__(self, m_bits: int, k: int) -> None:
        if m_bits < 8:
            raise ValueError("m_bits must be >= 8")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.m_bits = m_bits
        self.k = k
        self._bits = bytearray((m_bits + 7) // 8)
        self.count = 0

    @classmethod
    def for_items(cls, n_items: int, m_bits: int) -> "BloomFilter":
        return cls(m_bits=m_bits, k=optimal_k(m_bits, n_items))

    def _positions(self, item: bytes) -> Iterable[int]:
        digest = hashlib.sha256(item).digest()
        h1 = int.from_bytes(digest[:16], "big")
        h2 = int.from_bytes(digest[16:], "big") | 1
        for i in range(self.k):
            yield (h1 + i * h2) % self.m_bits

    def add(self, item: bytes) -> None:
        for position in self._positions(item):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.count += 1

    def update(self, items: Iterable[bytes]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(item)
        )

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    @property
    def fill_ratio(self) -> float:
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.m_bits

    def expected_fp_rate(self) -> float:
        return false_positive_rate(self.m_bits, self.count, self.k)

    def measured_fp_rate(self, probes: Iterable[bytes]) -> float:
        """Empirical FP rate over items known not to be members."""
        total = 0
        hits = 0
        for probe in probes:
            total += 1
            if probe in self:
                hits += 1
        return hits / total if total else 0.0
