"""CRLSet dynamics analysis (paper §7.3, Figures 8-10).

From a builder run: the entry-count time series, daily CRL-vs-CRLSet
additions, and the two vulnerability-window distributions -- days until a
revocation appears in the CRLSet, and days between a premature CRLSet
removal and the certificate's expiry.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.crlset.builder import CrlSetHistory
from repro.scan.crawler import CrlCrawler
from repro.scan.ecosystem import Ecosystem

__all__ = ["DynamicsReport", "analyze_dynamics"]


@dataclass(frozen=True)
class DynamicsReport:
    """§7.3's dynamics statistics."""

    #: Figure 8: CRLSet entry count per day.
    entry_count_series: dict[datetime.date, int]
    #: Figure 9: daily new CRL entries (all CRLs) vs new CRLSet entries.
    crl_daily_additions: dict[datetime.date, int]
    crlset_daily_additions: dict[datetime.date, int]
    #: Figure 10: per-entry days from revocation to CRLSet appearance.
    days_to_appear: list[int]
    #: Figure 10: days between premature removal and certificate expiry.
    removal_before_expiry_days: list[int]
    #: entries revoked in a covered CRL that never appeared (vulnerable).
    never_appeared_count: int

    @property
    def min_entries(self) -> int:
        return min(self.entry_count_series.values())

    @property
    def max_entries(self) -> int:
        return max(self.entry_count_series.values())

    def appear_within(self, days: int) -> float:
        if not self.days_to_appear:
            return 0.0
        return sum(1 for d in self.days_to_appear if d <= days) / len(
            self.days_to_appear
        )

    @property
    def median_removal_before_expiry(self) -> float:
        values = sorted(self.removal_before_expiry_days)
        if not values:
            return 0.0
        mid = len(values) // 2
        if len(values) % 2:
            return float(values[mid])
        return (values[mid - 1] + values[mid]) / 2.0

    def weekly_pattern_ratio(self) -> float:
        """Weekday/weekend mean CRL additions (>1 shows Fig 9's pattern)."""
        weekday_total, weekday_n, weekend_total, weekend_n = 0, 0, 0, 0
        for day, count in self.crl_daily_additions.items():
            if day.weekday() < 5:
                weekday_total += count
                weekday_n += 1
            else:
                weekend_total += count
                weekend_n += 1
        if not weekday_n or not weekend_n or not weekend_total:
            return float("inf")
        return (weekday_total / weekday_n) / (weekend_total / weekend_n)


def analyze_dynamics(
    ecosystem: Ecosystem,
    history: CrlSetHistory,
    crawl_window_only: bool = True,
    crawler: CrlCrawler | None = None,
) -> DynamicsReport:
    """``crawler`` lets callers share one :class:`CrlCrawler` (and its
    :class:`~repro.scan.crawl_index.CrawlIndex` timelines) instead of
    re-walking ``ecosystem.crls`` here."""
    cal = ecosystem.calibration
    crawler = crawler if crawler is not None else CrlCrawler(ecosystem)
    crl_additions = crawler.daily_total_additions()

    if crawl_window_only:
        window = set(cal.crawl_dates)
        crlset_additions = {
            day: count
            for day, count in history.daily_additions.items()
            if day in window
        }
    else:
        crlset_additions = dict(history.daily_additions)

    # Days-to-appear is only meaningful for revocations that happened
    # while the CRLSet pipeline was running (entries already revoked when
    # the builds began appear "late" only as a censoring artefact).
    days_to_appear = [
        h.days_to_appear
        for h in history.entry_histories
        if h.days_to_appear is not None
        and h.days_to_appear >= 0
        and h.revoked_at >= cal.crlset_build_start
    ]
    removal_days = [
        h.removed_before_expiry_days
        for h in history.entry_histories
        if h.removed_before_expiry_days is not None
    ]
    never = sum(
        1
        for h in history.entry_histories
        if h.eligible and h.first_appeared is None
    )
    return DynamicsReport(
        entry_count_series=dict(history.daily_entry_counts),
        crl_daily_additions=crl_additions,
        crlset_daily_additions=crlset_additions,
        days_to_appear=days_to_appear,
        removal_before_expiry_days=removal_days,
        never_appeared_count=never,
    )
