"""repro: a reproduction of "An End-to-End Measurement of Certificate
Revocation in the Web's PKI" (Liu et al., IMC 2015).

The package rebuilds the paper's entire measurement apparatus on a
deterministic synthetic Web-PKI ecosystem (DESIGN.md documents the data
substitutions):

* :mod:`repro.asn1`, :mod:`repro.pki`, :mod:`repro.revocation` -- X.509
  certificates, CRLs, and OCSP with real DER encodings;
* :mod:`repro.ca`, :mod:`repro.net` -- CA machinery and a simulated
  network;
* :mod:`repro.scan` -- the synthetic ecosystem plus Rapid7-style scans,
  daily CRL crawls, and TLS-handshake (stapling) scans;
* :mod:`repro.browsers` -- 30 browser/OS revocation-policy models and the
  244-case test suite behind Table 2;
* :mod:`repro.crlset` -- the CRLSet pipeline, Bloom filters, and GCS;
* :mod:`repro.core` -- the end-to-end analysis pipeline;
* :mod:`repro.experiments` -- one module per paper table/figure.

Quickstart::

    from repro import MeasurementStudy, run_experiment
    study = MeasurementStudy(scale=0.002)
    print(run_experiment("fig2", study).render())
"""

from repro.core.pipeline import MeasurementStudy
from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment
from repro.scan.calibration import Calibration, PaperTargets

__version__ = "1.0.0"

__all__ = [
    "ALL_EXPERIMENTS",
    "Calibration",
    "MeasurementStudy",
    "PaperTargets",
    "run_all",
    "run_experiment",
    "__version__",
]
