"""Command-line interface.

Usage::

    python -m repro list                     # available experiments
    python -m repro run fig2 [--scale S]     # regenerate one figure/table
    python -m repro run all [--scale S]      # regenerate everything
    python -m repro report [--scale S]       # EXPERIMENTS.md body to stdout
    python -m repro analyze [args...]        # static-analysis gate
    python -m repro trace trace.jsonl        # roll up a recorded trace
    python -m repro --fault-profile chaos    # run everything degraded

Fault injection (docs/ROBUSTNESS.md): ``--fault-profile`` names an entry
in :data:`repro.net.faults.PROFILES` and ``--fault-seed`` pins the fault
RNG, so two runs with the same seed produce byte-identical reports.

Observability (docs/OBSERVABILITY.md): ``run --trace-out trace.jsonl``
records spans and metrics while the experiments run and writes them as
JSONL; ``trace`` renders the roll-up (summary, top spans, per-experiment
flame-table).  Tracing never changes a report byte, and sequential
traces are byte-identical per seed.
"""

from __future__ import annotations

import argparse
import sys

from repro import ALL_EXPERIMENTS, MeasurementStudy, run_all, run_experiment


def _add_fault_arguments(
    parser: argparse.ArgumentParser, dest_prefix: str = ""
) -> None:
    parser.add_argument(
        "--fault-profile",
        dest=f"{dest_prefix}fault_profile",
        default=None,
        metavar="NAME",
        help="inject faults from this profile (none, flaky, chaos)",
    )
    parser.add_argument(
        "--fault-seed",
        dest=f"{dest_prefix}fault_seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed for the fault-injection RNG (default: the study seed)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An End-to-End Measurement of Certificate "
            "Revocation in the Web's PKI' (IMC 2015)"
        ),
    )
    _add_fault_arguments(parser)
    sub = parser.add_subparsers(dest="command", required=False)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig2, table2, all")
    run.add_argument("--scale", type=float, default=0.002)
    run.add_argument("--seed", type=int, default=20151028)
    run.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="run 'all' across N worker processes (results identical to sequential)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache generated ecosystems here, keyed on the calibration digest",
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record spans + metrics while running and write them as JSONL",
    )
    _add_fault_arguments(run, dest_prefix="run_")

    report = sub.add_parser("report", help="print the EXPERIMENTS.md body")
    report.add_argument("--scale", type=float, default=0.002)

    trace = sub.add_parser(
        "trace", help="roll up a trace recorded with run --trace-out"
    )
    trace.add_argument("trace_file", metavar="FILE", help="trace JSONL file")
    trace.add_argument(
        "--format", choices=("text", "json"), default="text", dest="trace_format"
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=15,
        metavar="N",
        help="rows in the top-spans table (default 15)",
    )

    sub.add_parser(
        "analyze",
        help="run the determinism & PKI-invariant linter "
        "(same as python -m repro.analysis; docs/STATIC_ANALYSIS.md)",
        add_help=False,
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        # Delegate verbatim so the linter owns its own flags (--format,
        # --baseline, ...) without colliding with the study parser's.
        from repro.analysis.cli import main as analyze_main

        return analyze_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    fault_profile = args.fault_profile
    fault_seed = args.fault_seed
    if args.command is None:
        # `python -m repro --fault-profile chaos` is the documented smoke
        # invocation: run everything under the named profile.
        if fault_profile is None and fault_seed is None:
            parser.error("a command is required (list, run, report)")
        args.command = "run"
        args.experiment = "all"
        args.scale = 0.002
        args.seed = 20151028
        args.parallel = None
        args.cache_dir = None
        args.trace_out = None
    else:
        # Flags given after `run` win over ones given before it.
        if getattr(args, "run_fault_profile", None) is not None:
            fault_profile = args.run_fault_profile
        if getattr(args, "run_fault_seed", None) is not None:
            fault_seed = args.run_fault_seed
    if args.command == "list":
        for experiment_id, module in ALL_EXPERIMENTS.items():
            print(f"{experiment_id:10s} {module.TITLE}")
        return 0
    if args.command == "run":
        if fault_profile is not None:
            from repro.net.faults import PROFILES

            if fault_profile not in PROFILES:
                print(
                    f"unknown fault profile {fault_profile!r}; "
                    f"known: {sorted(PROFILES)}",
                    file=sys.stderr,
                )
                return 2
        if args.cache_dir is not None:
            from pathlib import Path

            cache_dir = Path(args.cache_dir)
            if cache_dir.exists() and not cache_dir.is_dir():
                print(
                    f"--cache-dir {args.cache_dir!r} is not a directory",
                    file=sys.stderr,
                )
                return 2
        obs = None
        if args.trace_out is not None:
            from repro.obs import Observability

            obs = Observability(enabled=True)
        study = MeasurementStudy(
            scale=args.scale,
            seed=args.seed,
            cache_dir=args.cache_dir,
            fault_profile=fault_profile,
            fault_seed=fault_seed,
            obs=obs,
        )
        if args.experiment == "all":
            results = run_all(study, parallel=args.parallel)
        else:
            try:
                results = [run_experiment(args.experiment, study)]
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
        if args.trace_out is not None:
            study.obs.write_jsonl(
                args.trace_out,
                header={
                    "experiment": args.experiment,
                    "scale": args.scale,
                    "seed": args.seed,
                    "fault_profile": study.fault_profile,
                    "fault_seed": study.fault_seed,
                    "parallel": args.parallel or 1,
                },
            )
        failures = 0
        crashes = 0
        for result in results:
            print(result.render())
            print()
            failures += sum(1 for c in result.comparisons if not c.shape_holds)
            crashes += 0 if result.ok else 1
        if crashes:
            print(f"{crashes} experiment(s) CRASHED", file=sys.stderr)
        if failures:
            print(f"{failures} shape comparison(s) FAILED", file=sys.stderr)
        if crashes or failures:
            return 1
        return 0
    if args.command == "report":
        from repro.experiments import reportgen

        sys.argv = ["reportgen", str(args.scale)]
        reportgen.main()
        return 0
    if args.command == "trace":
        from repro.obs import report as trace_report

        try:
            records = trace_report.load_records(args.trace_file)
        except (OSError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.trace_format == "json":
            print(trace_report.render_json(records, limit=args.limit))
        else:
            print(trace_report.render_text(records, limit=args.limit))
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
