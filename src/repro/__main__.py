"""Command-line interface.

Usage::

    python -m repro list                     # available experiments
    python -m repro run fig2 [--scale S]     # regenerate one figure/table
    python -m repro run all [--scale S]      # regenerate everything
    python -m repro report [--scale S]       # EXPERIMENTS.md body to stdout
"""

from __future__ import annotations

import argparse
import sys

from repro import ALL_EXPERIMENTS, MeasurementStudy, run_all, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An End-to-End Measurement of Certificate "
            "Revocation in the Web's PKI' (IMC 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig2, table2, all")
    run.add_argument("--scale", type=float, default=0.002)
    run.add_argument("--seed", type=int, default=20151028)
    run.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="run 'all' across N worker processes (results identical to sequential)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache generated ecosystems here, keyed on the calibration digest",
    )

    report = sub.add_parser("report", help="print the EXPERIMENTS.md body")
    report.add_argument("--scale", type=float, default=0.002)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, module in ALL_EXPERIMENTS.items():
            print(f"{experiment_id:10s} {module.TITLE}")
        return 0
    if args.command == "run":
        if args.cache_dir is not None:
            from pathlib import Path

            cache_dir = Path(args.cache_dir)
            if cache_dir.exists() and not cache_dir.is_dir():
                print(
                    f"--cache-dir {args.cache_dir!r} is not a directory",
                    file=sys.stderr,
                )
                return 2
        study = MeasurementStudy(
            scale=args.scale, seed=args.seed, cache_dir=args.cache_dir
        )
        if args.experiment == "all":
            results = run_all(study, parallel=args.parallel)
        else:
            try:
                results = [run_experiment(args.experiment, study)]
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
        failures = 0
        for result in results:
            print(result.render())
            print()
            failures += sum(1 for c in result.comparisons if not c.shape_holds)
        if failures:
            print(f"{failures} shape comparison(s) FAILED", file=sys.stderr)
            return 1
        return 0
    if args.command == "report":
        from repro.experiments import reportgen

        sys.argv = ["reportgen", str(args.scale)]
        reportgen.main()
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
