"""Command-line interface.

Usage::

    python -m repro list                       # available experiments
    python -m repro run fig2 [--scale S]       # regenerate one figure/table
    python -m repro run all [--parallel N]     # regenerate everything
    python -m repro report [--scale S]         # EXPERIMENTS.md body to stdout
    python -m repro analyze [args...]          # static-analysis gate
    python -m repro trace trace.jsonl          # roll up a recorded trace
    python -m repro trace --diff A B [--check] # structural span-diff
    python -m repro corpus build DIR --shards 4  # persist the corpus store
    python -m repro corpus inspect FILE        # one store's meta
    python -m repro corpus stat DIR            # list stores in a directory
    python -m repro corpus verify FILE         # integrity-check a store
    python -m repro serve-bench --sessions 1000000  # serving-layer report
    python -m repro --fault-profile chaos      # run everything degraded
    python -m repro run all --supervise        # crash-recovering run
    python -m repro run all --resume           # continue an interrupted run

The CLI is a thin shell over :mod:`repro.api`, the stable programmatic
facade: every subcommand maps onto one facade call.

Shared flags: ``--fault-profile``/``--fault-seed`` may be given before
or after the subcommand, and ``run``/``report`` share the same
``--scale``/``--seed``/fault flags via a common parent parser.  When a
fault flag appears both before and after the subcommand, the
after-subcommand value wins -- a parser property, not hand-rolled
merging: the subcommand parsers inherit the flags with
``argparse.SUPPRESS`` defaults, so they only overwrite the top-level
value when the flag was actually given.

Fault injection (docs/ROBUSTNESS.md): ``--fault-profile`` names an entry
in :data:`repro.net.faults.PROFILES` and ``--fault-seed`` pins the fault
RNG, so two runs with the same seed produce byte-identical reports.

Observability (docs/OBSERVABILITY.md): ``run --trace-out trace.jsonl``
records spans and metrics while the experiments run and writes them as
JSONL; ``trace`` renders the roll-up (summary, top spans, per-experiment
flame-table with per-span counter attribution); ``trace --diff A B``
aligns two traces' span trees and reports the structural delta --
``--check`` exits 1 when the diff is non-empty, which is how CI asserts
"same seed, same behaviour".  Tracing never changes a report byte, and
sequential traces are byte-identical per seed.

Supervised execution (docs/ROBUSTNESS.md): ``run all --supervise`` runs
the experiments under the crash-recovering supervisor and journals each
completed leg under ``--checkpoint-dir`` (default
``.repro-checkpoints``); ``--exec-fault-profile`` injects deterministic
worker kills / hangs / aborts (:data:`repro.exec.faults.EXEC_PROFILES`).
An injected abort exits with code 3 (nothing on stdout); rerunning with
``--resume`` replays the journal and produces stdout byte-identical to
an uninterrupted run.  ``corpus build --supervise`` is the same
discipline for sharded corpus builds.

Exit codes: 0 success; 1 experiment crashes / shape failures (or a
non-empty ``trace --diff --check``, or a failed ``corpus verify``);
2 usage errors; 3 run interrupted (resume with ``--resume``).
"""

from __future__ import annotations

import argparse
import sys

from repro import api


def _fault_parent(suppress: bool) -> argparse.ArgumentParser:
    """The shared ``--fault-profile``/``--fault-seed`` flags.

    The top-level parser uses real ``None`` defaults (the attribute must
    always exist); subcommand parsers use ``argparse.SUPPRESS`` so an
    absent flag leaves the top-level value untouched and a present one
    overwrites it -- "after the subcommand wins" by construction.
    """
    parent = argparse.ArgumentParser(add_help=False)
    default = argparse.SUPPRESS if suppress else None
    parent.add_argument(
        "--fault-profile",
        default=default,
        metavar="NAME",
        help="inject faults from this profile (none, flaky, chaos)",
    )
    parent.add_argument(
        "--fault-seed",
        type=int,
        default=default,
        metavar="SEED",
        help="seed for the fault-injection RNG (default: the study seed)",
    )
    return parent


def _exec_parent() -> argparse.ArgumentParser:
    """The shared supervised-execution flags (run all / corpus build)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--supervise",
        action="store_true",
        help="run under the crash-recovering supervisor with checkpoints",
    )
    parent.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted supervised run from its checkpoints",
    )
    parent.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="checkpoint journal directory (default .repro-checkpoints)",
    )
    parent.add_argument(
        "--exec-fault-profile",
        default=None,
        metavar="NAME",
        help="inject process/storage faults (none, kill-worker, hang-worker, "
        "torn-write, chaos-proc)",
    )
    parent.add_argument(
        "--exec-fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed for the process-fault RNG (default: the study seed)",
    )
    return parent


def _calibration_parent() -> argparse.ArgumentParser:
    """The shared ``--scale``/``--seed`` calibration flags."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scale",
        type=float,
        default=0.002,
        help="ecosystem scale factor (default 0.002)",
    )
    parent.add_argument(
        "--seed",
        type=int,
        default=20151028,
        help="study seed (default 20151028)",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An End-to-End Measurement of Certificate "
            "Revocation in the Web's PKI' (IMC 2015)"
        ),
        parents=[_fault_parent(suppress=False)],
    )
    sub = parser.add_subparsers(dest="command", required=False)

    sub.add_parser("list", help="list available experiments")

    sub.add_parser(
        "mechanisms",
        help="list registered revocation mechanisms (docs/MECHANISMS.md)",
    )

    shared = [_fault_parent(suppress=True), _calibration_parent()]
    run = sub.add_parser(
        "run",
        parents=shared + [_exec_parent()],
        help="run one experiment (or 'all')",
    )
    run.add_argument("experiment", help="experiment id, e.g. fig2, table2, all")
    run.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="run 'all' across N worker processes (results identical to sequential)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache generated ecosystems here, keyed on the calibration digest",
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record spans + metrics while running and write them as JSONL",
    )
    run.add_argument(
        "--mechanism",
        default=None,
        metavar="NAME",
        help=(
            "restrict revocation-mechanism sweeps to one registered "
            "mechanism (see: python -m repro mechanisms)"
        ),
    )

    sub.add_parser(
        "report", parents=shared, help="print the EXPERIMENTS.md body"
    )

    trace = sub.add_parser(
        "trace", help="roll up or diff traces recorded with run --trace-out"
    )
    trace.add_argument(
        "trace_file", nargs="?", metavar="FILE", help="trace JSONL file"
    )
    trace.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="structurally diff two traces instead of rolling one up",
    )
    trace.add_argument(
        "--check",
        action="store_true",
        help="with --diff: exit 1 when the diff is non-empty",
    )
    trace.add_argument(
        "--format", choices=("text", "json"), default="text", dest="trace_format"
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=15,
        metavar="N",
        help="rows in the top-spans table (default 15)",
    )

    corpus = sub.add_parser(
        "corpus",
        help="build / inspect the on-disk corpus store (docs/PERFORMANCE.md)",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    build = corpus_sub.add_parser(
        "build",
        parents=[_calibration_parent(), _exec_parent()],
        help="generate the ecosystem (sharded) and persist it as a store",
    )
    build.add_argument("directory", help="store directory (created if missing)")
    build.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="generate across K brand shards (bytes identical for any K)",
    )
    build.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="generate shards across N worker processes",
    )
    build.add_argument(
        "--force",
        action="store_true",
        help="rebuild even when a readable store already exists",
    )
    inspect = corpus_sub.add_parser(
        "inspect", help="print one store file's meta (seed, scale, digest)"
    )
    inspect.add_argument("store", help="corpus-<digest>.sqlite file")
    stat = corpus_sub.add_parser(
        "stat", help="list every corpus store under a directory"
    )
    stat.add_argument("directory", help="store directory")
    verify = corpus_sub.add_parser(
        "verify",
        help="integrity-check a store (digests per brand); exit 1 if unsound",
    )
    verify.add_argument("store", help="corpus-<digest>.sqlite file")
    verify.add_argument(
        "--quarantine",
        action="store_true",
        help="move an unsound store aside (<name>.quarantined)",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        parents=shared,
        help="drive the revocation-status serving layer with a synthetic "
        "client fleet and print the per-mechanism serving report "
        "(docs/SERVING.md)",
    )
    serve_bench.add_argument(
        "--sessions",
        type=int,
        default=1_000_000,
        metavar="N",
        help="client sessions in the fleet (default 1000000)",
    )
    serve_bench.add_argument(
        "--ticks",
        type=int,
        default=48,
        metavar="N",
        help="simulated ticks (default 48)",
    )
    serve_bench.add_argument(
        "--tick-seconds",
        type=int,
        default=900,
        metavar="S",
        help="seconds per tick (default 900)",
    )
    serve_bench.add_argument(
        "--mechanism",
        default=None,
        metavar="NAME",
        help="serve one registered mechanism instead of all",
    )
    serve_bench.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record spans + metrics while serving and write them as JSONL",
    )

    sub.add_parser(
        "analyze",
        help="run the determinism & PKI-invariant linter "
        "(same as python -m repro.analysis; docs/STATIC_ANALYSIS.md)",
        add_help=False,
    )
    return parser


def _check_fault_profile(fault_profile: str | None) -> bool:
    if fault_profile is None:
        return True
    from repro.net.faults import PROFILES

    if fault_profile in PROFILES:
        return True
    print(
        f"unknown fault profile {fault_profile!r}; known: {sorted(PROFILES)}",
        file=sys.stderr,
    )
    return False


def _check_exec_fault_profile(profile: str | None) -> bool:
    if profile is None:
        return True
    from repro.exec.faults import EXEC_PROFILES

    if profile in EXEC_PROFILES:
        return True
    print(
        f"unknown exec fault profile {profile!r}; "
        f"known: {sorted(EXEC_PROFILES)}",
        file=sys.stderr,
    )
    return False


def _interrupted(exc) -> int:
    # Stdout stays untouched so a resumed run's combined stdout can be
    # byte-compared against an uninterrupted run's.
    print(exc, file=sys.stderr)
    return 3


def _cmd_run(args: argparse.Namespace) -> int:
    if args.cache_dir is not None:
        from pathlib import Path

        cache_dir = Path(args.cache_dir)
        if cache_dir.exists() and not cache_dir.is_dir():
            print(
                f"--cache-dir {args.cache_dir!r} is not a directory",
                file=sys.stderr,
            )
            return 2
    if (args.supervise or args.resume) and args.experiment != "all":
        print("--supervise/--resume apply to 'run all' only", file=sys.stderr)
        return 2
    from repro.exec.supervisor import RunInterrupted

    try:
        run = api.study.run_study(
            experiment=args.experiment,
            scale=args.scale,
            seed=args.seed,
            fault_profile=args.fault_profile,
            fault_seed=args.fault_seed,
            cache_dir=args.cache_dir,
            parallel=args.parallel,
            trace=args.trace_out is not None,
            supervise=args.supervise,
            resume=args.resume,
            checkpoint_dir=args.checkpoint_dir,
            exec_fault_profile=args.exec_fault_profile,
            exec_fault_seed=args.exec_fault_seed,
            mechanism=args.mechanism,
        )
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    except RunInterrupted as exc:
        return _interrupted(exc)
    if args.trace_out is not None:
        run.write_trace(
            args.trace_out, experiment=args.experiment, parallel=args.parallel
        )
    for result in run.results:
        print(result.render())
        print()
    if run.crashes:
        print(f"{run.crashes} experiment(s) CRASHED", file=sys.stderr)
    if run.shape_failures:
        print(
            f"{run.shape_failures} shape comparison(s) FAILED", file=sys.stderr
        )
    return 1 if (run.crashes or run.shape_failures) else 0


def _render_corpus_info(info: dict) -> str:
    order = (
        "path", "bytes", "format", "seed", "scale",
        "leaf_count", "crl_count", "entry_count", "corpus_digest",
    )
    lines = [f"{key:14s} {info[key]}" for key in order if key in info]
    lines += [
        f"{key:14s} {value}"
        for key, value in sorted(info.items())
        if key not in order
    ]
    return "\n".join(lines)


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.corpus_command == "build":
        if not _check_exec_fault_profile(args.exec_fault_profile):
            return 2
        from repro.exec.supervisor import RunInterrupted

        try:
            info = api.corpus.build(
                args.directory,
                scale=args.scale,
                seed=args.seed,
                shards=args.shards,
                workers=args.workers,
                force=args.force,
                supervise=args.supervise,
                resume=args.resume,
                checkpoint_dir=args.checkpoint_dir,
                exec_fault_profile=args.exec_fault_profile,
                exec_fault_seed=args.exec_fault_seed,
            )
        except RunInterrupted as exc:
            return _interrupted(exc)
        print(_render_corpus_info(info))
        return 0
    if args.corpus_command == "verify":
        problems = api.corpus.verify(args.store)
        if not problems:
            print(f"{args.store}: ok")
            return 0
        for problem in problems:
            print(f"{args.store}: {problem}")
        if args.quarantine:
            from repro.scan.corpus_store import quarantine_store

            try:
                target = quarantine_store(args.store)
            except OSError as exc:
                print(f"quarantine failed: {exc}", file=sys.stderr)
                return 2
            print(f"quarantined -> {target}")
        return 1
    if args.corpus_command == "inspect":
        try:
            info = api.corpus.info(args.store)
        except Exception as exc:
            print(f"unreadable store {args.store!r}: {exc}", file=sys.stderr)
            return 2
        print(_render_corpus_info(info))
        return 0
    if args.corpus_command == "stat":
        entries = api.corpus.list(args.directory)
        if not entries:
            print(f"no corpus stores under {args.directory}")
            return 0
        for info in entries:
            if "error" in info:
                print(f"{info['path']}: {info['error']}")
            else:
                print(
                    f"{info['path']}: scale {info['scale']} seed {info['seed']} "
                    f"leaves {info['leaf_count']} entries {info['entry_count']} "
                    f"({info['bytes']} bytes, digest {info['corpus_digest']})"
                )
        return 0
    return 2


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    if args.sessions < 0 or args.ticks < 1 or args.tick_seconds < 1:
        print(
            "--sessions must be >= 0, --ticks/--tick-seconds >= 1",
            file=sys.stderr,
        )
        return 2
    names = list(api.study.list_mechanisms())
    if args.mechanism is not None:
        if args.mechanism not in names:
            print(
                f"unknown mechanism {args.mechanism!r}; known: {names}",
                file=sys.stderr,
            )
            return 2
        names = [args.mechanism]
    plan = None
    if args.fault_profile is not None:
        from repro.net.faults import plan_from_profile

        fault_seed = (
            args.fault_seed if args.fault_seed is not None else args.seed
        )
        plan = plan_from_profile(args.fault_profile, fault_seed)
    study = api.study.new_study(
        scale=args.scale, seed=args.seed, trace=args.trace_out is not None
    )
    config = api.serve.FleetConfig(
        sessions=args.sessions,
        ticks=args.ticks,
        tick_seconds=args.tick_seconds,
        seed=args.seed,
        fault_plan=plan,
    )
    reports = [
        api.serve.run_fleet(study, name, config=config, obs=study.obs)
        for name in names
    ]
    print(api.serve.render_serving_report(reports))
    if args.trace_out is not None:
        study.obs.write_jsonl(
            args.trace_out,
            header={
                "experiment": "serve-bench",
                "scale": study.calibration.scale,
                "seed": study.calibration.seed,
                "fault_profile": args.fault_profile,
                "fault_seed": args.fault_seed,
                "sessions": args.sessions,
                "ticks": args.ticks,
            },
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.diff is not None and args.trace_file is not None:
        print("give either FILE or --diff A B, not both", file=sys.stderr)
        return 2
    if args.diff is None and args.trace_file is None:
        print("a trace FILE or --diff A B is required", file=sys.stderr)
        return 2
    if args.check and args.diff is None:
        print("--check requires --diff", file=sys.stderr)
        return 2
    try:
        if args.diff is not None:
            a_path, b_path = args.diff
            diff = api.trace.diff(api.trace.load(a_path), api.trace.load(b_path))
        else:
            records = api.trace.load(args.trace_file)
    except (OSError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.diff is not None:
        print(
            api.trace.render_diff(
                diff, fmt=args.trace_format, a_label=a_path, b_label=b_path
            )
        )
        return 1 if (args.check and not diff.is_empty) else 0
    print(api.trace.render(records, fmt=args.trace_format, limit=args.limit))
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        # Delegate verbatim so the linter owns its own flags (--format,
        # --baseline, ...) without colliding with the study parser's.
        return api.analysis.run(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        # `python -m repro --fault-profile chaos` is the documented smoke
        # invocation: run everything under the named profile.
        if args.fault_profile is None and args.fault_seed is None:
            parser.error(
                "a command is required "
                "(list, mechanisms, run, report, serve-bench, trace, corpus)"
            )
        args.command = "run"
        args.experiment = "all"
        args.scale = 0.002
        args.seed = 20151028
        args.parallel = None
        args.cache_dir = None
        args.trace_out = None
        args.mechanism = None
        args.supervise = False
        args.resume = False
        args.checkpoint_dir = None
        args.exec_fault_profile = None
        args.exec_fault_seed = None
    if args.command == "list":
        for experiment_id, title in api.study.list_experiments().items():
            print(f"{experiment_id:10s} {title}")
        return 0
    if args.command == "mechanisms":
        for name, title in api.study.list_mechanisms().items():
            print(f"{name:16s} {title}")
        return 0
    if args.command in ("run", "report", "serve-bench") and not _check_fault_profile(
        args.fault_profile
    ):
        return 2
    if args.command == "run" and not _check_exec_fault_profile(
        args.exec_fault_profile
    ):
        return 2
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        sys.stdout.write(
            api.study.render_report(
                args.scale,
                seed=args.seed,
                fault_profile=args.fault_profile,
                fault_seed=args.fault_seed,
            )
        )
        return 0
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
