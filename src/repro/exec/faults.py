"""Deterministic process/storage fault plans for the execution layer.

The sibling of :mod:`repro.net.faults`: where that module breaks the
*simulated network* the experiments measure, this one breaks the
*machinery running them* -- worker processes and the on-disk corpus
store -- so crash recovery is testable and seeded rather than something
that only shows up in week-long production runs.

Kinds:

- ``KILL`` -- the worker calls ``os._exit`` before running the task
  (a hard crash: no exception, no result, just a dead process).
- ``HANG`` -- the worker sleeps past the supervisor's task deadline
  (a wedged worker; the watchdog must terminate it).
- ``ABORT`` -- the *parent* stops the whole run after ``after_tasks``
  completed tasks (simulates the operator's machine dying mid-run;
  :class:`repro.exec.supervisor.RunInterrupted` is raised and the
  checkpoint journal is what makes ``--resume`` possible).
- ``TORN_WRITE`` -- the just-written store file is truncated
  (a torn write that survived the rename).
- ``FLIP_WRITE`` -- one byte of the just-written store file is flipped
  (silent media corruption).

Determinism: unlike the network plans (per-URL streams consumed in
request order), every decision here is a *pure function* of
``(plan seed, task id, attempt)`` -- no stream state.  That is what
makes resume exact: a run interrupted and resumed re-derives the very
same fault decisions for the tasks it re-runs, independent of how many
tasks the first run completed.
"""

from __future__ import annotations

import enum
import os
import random
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "EXEC_PROFILES",
    "ExecFaultKind",
    "ExecFaultPlan",
    "ExecFaultSpec",
    "plan_from_exec_profile",
]


class ExecFaultKind(enum.Enum):
    """Injectable process/storage failures."""

    #: worker process dies (``os._exit``) before running the task.
    KILL = "kill"
    #: worker sleeps past the supervisor's task deadline.
    HANG = "hang"
    #: parent aborts the run after N completed tasks.
    ABORT = "abort"
    #: store file is truncated right after the atomic rename.
    TORN_WRITE = "torn-write"
    #: one byte of the store file is flipped right after the rename.
    FLIP_WRITE = "flip-write"


_TASK_KINDS = (ExecFaultKind.KILL, ExecFaultKind.HANG)
_WRITE_KINDS = (ExecFaultKind.TORN_WRITE, ExecFaultKind.FLIP_WRITE)


@dataclass(frozen=True)
class ExecFaultSpec:
    """One fault rule.

    ``probability`` gates the kind per ``(task, attempt)``; ``attempts``
    restricts it to specific attempt numbers (the default ``(0,)`` --
    first try only -- guarantees a bounded-retry supervisor always
    converges, which the chaos-resume CI invariant depends on).
    ``after_tasks`` is what *defines* an ABORT; ``hang_seconds`` sizes a
    HANG (it must exceed the supervisor's ``task_timeout`` to matter).
    """

    kind: ExecFaultKind
    probability: float = 1.0
    attempts: tuple[int, ...] | None = (0,)
    after_tasks: int | None = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.kind is ExecFaultKind.ABORT and self.after_tasks is None:
            raise ValueError("ABORT requires after_tasks")
        if self.after_tasks is not None and self.after_tasks < 1:
            raise ValueError("after_tasks must be >= 1")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    def applies_to_attempt(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts


def _truncate_file(path: str | Path) -> None:
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(1, size // 2))


def _flip_byte(byte_pick: float, bit: int):
    def edit(path: str | Path) -> None:
        path = Path(path)
        size = path.stat().st_size
        if size == 0:
            return
        # Flip a byte in the back half of the file: sqlite's header and
        # meta pages sit at the front, and the interesting corruption --
        # the kind only a content digest catches -- lands in the column
        # blobs.
        index = size // 2 + min(int(byte_pick * (size // 2)), size // 2 - 1)
        with open(path, "r+b") as handle:
            handle.seek(index)
            original = handle.read(1)
            handle.seek(index)
            handle.write(bytes([original[0] ^ (1 << bit)]))

    return edit


class ExecFaultPlan:
    """An ordered list of :class:`ExecFaultSpec` rules under one seed.

    Process decisions (:meth:`decide_task`) are evaluated worker-side --
    the plan is pickled into each worker -- and storage decisions
    (:meth:`decide_write`) parent-side, at the store write.  Both are
    pure functions of ``(seed, identifier, attempt)``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: list[ExecFaultSpec] = []

    def add(self, spec: ExecFaultSpec) -> "ExecFaultPlan":
        self._rules.append(spec)
        return self

    @property
    def rules(self) -> tuple[ExecFaultSpec, ...]:
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def _draw(self, scope: str, identifier: str, attempt: int, index: int) -> float:
        key = f"{self.seed}/{scope}/{identifier}/{attempt}/{index}"
        return random.Random(key).random()

    @property
    def abort_after(self) -> int | None:
        """Completed-task count after which the parent aborts (or None)."""
        for spec in self._rules:
            if spec.kind is ExecFaultKind.ABORT:
                return spec.after_tasks
        return None

    @property
    def hang_seconds(self) -> float:
        for spec in self._rules:
            if spec.kind is ExecFaultKind.HANG:
                return spec.hang_seconds
        return 30.0

    def decide_task(self, task_id: str, attempt: int) -> ExecFaultKind | None:
        """First process fault that triggers for this (task, attempt)."""
        for index, spec in enumerate(self._rules):
            if spec.kind not in _TASK_KINDS:
                continue
            if not spec.applies_to_attempt(attempt):
                continue
            if self._draw("task", task_id, attempt, index) < spec.probability:
                return spec.kind
        return None

    def decide_write(self, label: str, attempt: int):
        """A file-corrupting callable for this store write, or None."""
        for index, spec in enumerate(self._rules):
            if spec.kind not in _WRITE_KINDS:
                continue
            if not spec.applies_to_attempt(attempt):
                continue
            draw = self._draw("write", label, attempt, index)
            if draw >= spec.probability:
                continue
            if spec.kind is ExecFaultKind.TORN_WRITE:
                return _truncate_file
            return _flip_byte(
                self._draw("flip-byte", label, attempt, index),
                int(self._draw("flip-bit", label, attempt, index) * 8) % 8,
            )
        return None

    def apply_kill(self) -> None:  # pragma: no cover - exits the process
        """Die the way a crashed worker dies: no unwind, no result."""
        os._exit(23)


#: Named profiles for the CLI (``--exec-fault-profile``) and the CI
#: chaos-resume job.  KILL/HANG fire on attempt 0 only, so a supervisor
#: with ``max_task_attempts >= 2`` always converges; ``kill-worker``
#: additionally aborts the parent partway through, which is what the
#: interrupt-then-resume invariant exercises.
EXEC_PROFILES: dict[str, list[ExecFaultSpec]] = {
    "none": [],
    "kill-worker": [
        ExecFaultSpec(ExecFaultKind.KILL, probability=0.4, attempts=(0,)),
        ExecFaultSpec(ExecFaultKind.ABORT, probability=1.0, after_tasks=6),
    ],
    "hang-worker": [
        ExecFaultSpec(
            ExecFaultKind.HANG,
            probability=0.3,
            attempts=(0,),
            hang_seconds=30.0,
        ),
    ],
    "torn-write": [
        ExecFaultSpec(ExecFaultKind.TORN_WRITE, probability=1.0, attempts=(0,)),
    ],
    "chaos-proc": [
        ExecFaultSpec(ExecFaultKind.KILL, probability=0.3, attempts=(0,)),
        ExecFaultSpec(ExecFaultKind.FLIP_WRITE, probability=1.0, attempts=(0,)),
        ExecFaultSpec(ExecFaultKind.ABORT, probability=1.0, after_tasks=4),
    ],
}


def plan_from_exec_profile(name: str, seed: int = 0) -> ExecFaultPlan:
    """Build the named :data:`EXEC_PROFILES` entry as a seeded plan."""
    try:
        specs = EXEC_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown exec fault profile {name!r}; known: {sorted(EXEC_PROFILES)}"
        ) from None
    plan = ExecFaultPlan(seed=seed)
    for spec in specs:
        plan.add(spec)
    return plan
