"""Atomic checkpoint journal for supervised runs.

A :class:`CheckpointJournal` records each completed unit of work (an
experiment leg, a built corpus shard) as one JSONL line and rewrites the
whole file through the temp+rename discipline of
:mod:`repro.scan.corpus_store`, so a crash at any instant leaves either
the previous journal or the new one -- never a torn file.  Defensively,
the *reader* also tolerates torn or tampered lines: every line carries a
sha256 over its canonical payload, and anything unparsable, mismatched,
or keyed to a different run is silently a miss (the work is simply
redone; checkpoints are an optimisation, never a correctness input).

Keying: the journal is bound to a ``run_key`` -- for experiment runs the
calibration digest plus the network-fault settings, for corpus builds
the calibration digest -- so a journal left behind by a different
scale/seed/profile can never leak results into a run (the
``corpus_store`` staleness discipline).

Payloads are JSON-safe dicts chosen by the caller: experiment legs embed
a base64 pickle of the :class:`ExperimentResult`
(:func:`pickle_payload` / :func:`unpickle_payload`); corpus shards point
at a sibling ``.npz`` parts file plus its content digest.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path

__all__ = [
    "CheckpointJournal",
    "pickle_payload",
    "unpickle_payload",
]

_VERSION = 1
#: reserved task id marking "this run was deliberately interrupted once".
_ABORT_MARK = "__aborted__"


def _line_digest(run_key: str, task: str, payload: dict) -> str:
    canonical = json.dumps(
        [_VERSION, run_key, task, payload], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def pickle_payload(obj) -> dict:
    """An arbitrary picklable object as a JSON-safe journal payload."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return {"pickle": base64.b64encode(blob).decode("ascii")}


def unpickle_payload(payload: dict):
    """Inverse of :func:`pickle_payload`; raises on malformed payloads."""
    return pickle.loads(base64.b64decode(payload["pickle"]))


class CheckpointJournal:
    """One run's completed-work journal (see module docstring).

    The journal loads eagerly on construction; :meth:`get`/:meth:`tasks`
    expose what survived validation.  :meth:`record` persists a new
    entry immediately (atomic full-file rewrite -- journals are small:
    one line per experiment leg or corpus shard).
    """

    def __init__(self, path: str | Path, run_key: str) -> None:
        self.path = Path(path)
        self.run_key = run_key
        self._entries: dict[str, dict] = {}
        self._load()

    # -- reading -----------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail line from a killed writer
            if not isinstance(record, dict):
                continue
            if record.get("v") != _VERSION:
                continue
            if record.get("run_key") != self.run_key:
                continue  # stale journal from another calibration/profile
            task = record.get("task")
            payload = record.get("payload")
            if not isinstance(task, str) or not isinstance(payload, dict):
                continue
            if record.get("sha256") != _line_digest(self.run_key, task, payload):
                continue  # tampered or bit-rotted line
            self._entries[task] = payload

    def get(self, task: str) -> dict | None:
        """The validated payload for a completed task, or None (a miss)."""
        return self._entries.get(task)

    def tasks(self) -> list[str]:
        """Completed task ids, insertion-ordered (abort mark excluded)."""
        return [task for task in self._entries if task != _ABORT_MARK]

    def __len__(self) -> int:
        return len(self.tasks())

    @property
    def aborted(self) -> bool:
        """True when this run was already interrupted once (the ABORT
        fault fires at most once per journal, so a resumed run completes)."""
        return _ABORT_MARK in self._entries

    # -- writing -----------------------------------------------------------

    def start_fresh(self) -> None:
        """Drop every entry (a non-resume run starts a new journal)."""
        self._entries.clear()
        self.path.unlink(missing_ok=True)

    def record(self, task: str, payload: dict) -> None:
        """Persist one completed task (atomic temp+rename rewrite)."""
        self._entries[task] = payload
        self._flush()

    def mark_aborted(self) -> None:
        self.record(_ABORT_MARK, {})

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        for task, payload in self._entries.items():
            lines.append(
                json.dumps(
                    {
                        "v": _VERSION,
                        "run_key": self.run_key,
                        "task": task,
                        "payload": payload,
                        "sha256": _line_digest(self.run_key, task, payload),
                    },
                    sort_keys=True,
                )
            )
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
