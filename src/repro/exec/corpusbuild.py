"""Supervised, checkpointed corpus builds.

:func:`build_corpus_supervised` is the robust sibling of
``repro.api.corpus.build``: each generation shard runs under the
:class:`~repro.exec.supervisor.Supervisor` (deadlines, retries, respawn,
degradation), and every completed shard's columnar parts are checkpointed
to disk -- an ``.npz`` parts file plus a journal line carrying its
content digest -- before the next shard starts.  A build interrupted at
any point (worker kills, an injected parent ABORT, a real Ctrl-C between
shards) resumes with ``resume=True``: validated checkpoints are loaded,
only the missing shards are regenerated, and because every brand is built
from seed-stable substreams the merged corpus is *byte-identical* to an
uninterrupted build (the chaos-resume CI invariant asserts this on the
``corpus_digest``).

Storage faults close the loop: the final store write accepts an injected
corruption (:meth:`ExecFaultPlan.decide_write`), after which the store is
re-verified (:func:`repro.scan.corpus_store.verify_store`); a corrupt
store is quarantined and rewritten, bounded by ``_WRITE_ATTEMPTS``.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np

from repro.ca.profiles import PAPER_CA_PROFILES
from repro.exec.checkpoint import CheckpointJournal
from repro.exec.faults import ExecFaultPlan
from repro.exec.supervisor import RunInterrupted, Supervisor, SupervisorConfig
from repro.obs import NULL_OBS, Observability
from repro.scan import corpus, corpus_store, shardgen
from repro.scan.calibration import Calibration
from repro.scan.datastore import calibration_digest
from repro.scan.ecosystem import Ecosystem

__all__ = ["build_corpus_supervised"]

#: total tries for the final store write (first + rewrites after
#: quarantine); injected write faults default to attempt 0 only, so one
#: rewrite normally suffices.
_WRITE_ATTEMPTS = 3


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()[:20]


def _build_shard(payload):
    """Worker entry: generate one shard group's brand parts."""
    calibration, group, profiles = payload
    return shardgen.build_shard_parts(calibration, group, profiles)


def _save_parts(path: Path, parts_by_brand: dict) -> None:
    """Atomically persist one shard's parts (brand|column flattened)."""
    flat = {
        f"{brand}|{column}": array
        for brand, arrays in parts_by_brand.items()
        for column, array in arrays.items()
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}.npz")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **flat)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_parts(path: Path) -> dict:
    parts_by_brand: dict[str, dict] = {}
    with np.load(path, allow_pickle=False) as bundle:
        for key in bundle.files:
            brand, column = key.split("|", 1)
            parts_by_brand.setdefault(brand, {})[column] = bundle[key]
    return parts_by_brand


def build_corpus_supervised(
    directory: str | Path,
    *,
    calibration: Calibration | None = None,
    scale: float = 0.002,
    seed: int = 20151028,
    shards: int = 4,
    config: SupervisorConfig | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    faults: ExecFaultPlan | None = None,
    obs: Observability | None = None,
    force: bool = False,
    profiles=PAPER_CA_PROFILES,
) -> dict:
    """Build (or resume building) a corpus store under supervision.

    Returns an info dict: ``path``, ``corpus_digest``, ``reused``,
    ``resumed_shards``, ``built_shards``, plus the supervision tallies.
    Raises :class:`RunInterrupted` when an injected ABORT stops the run
    (completed shards are already journaled; call again with
    ``resume=True``).
    """
    obs = obs if obs is not None else NULL_OBS
    calibration = calibration or Calibration(scale=scale, seed=seed)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = calibration_digest(calibration)
    store_path = directory / f"corpus-{digest}.sqlite"

    if store_path.exists() and not force:
        problems = corpus_store.verify_store(store_path)
        if not problems:
            meta = corpus_store.read_meta(store_path)
            return {
                "path": str(store_path),
                "corpus_digest": meta.get("corpus_digest"),
                "reused": True,
                "resumed_shards": 0,
                "built_shards": 0,
                "failures": [],
            }
        # A store that fails verification never satisfies a build: move
        # it aside and regenerate.
        corpus_store.quarantine_store(store_path)

    checkpoint_dir = Path(
        checkpoint_dir if checkpoint_dir is not None else directory / ".repro-checkpoints"
    )
    journal = CheckpointJournal(checkpoint_dir / f"corpus-{digest}.jsonl", digest)
    if not resume:
        journal.start_fresh()

    plan = [
        group
        for group in shardgen.plan_shards(calibration, profiles, shards)
        if group
    ]
    tasks = [
        (f"shard{index:02d}", (calibration, group, profiles))
        for index, group in enumerate(plan)
    ]

    parts_by_brand: dict[str, dict] = {}
    resumed = 0
    remaining: list[tuple[str, object]] = []
    for task_id, payload in tasks:
        entry = journal.get(task_id) if resume else None
        if entry is not None:
            parts_path = checkpoint_dir / str(entry.get("file", ""))
            try:
                if _file_digest(parts_path) != entry.get("sha256"):
                    raise ValueError("checkpoint digest mismatch")
                loaded = _load_parts(parts_path)
            except Exception:
                # Torn/corrupt/missing parts file: a miss, rebuild it.
                remaining.append((task_id, payload))
                if obs.enabled:
                    obs.metrics.counter("exec.checkpoint.misses").inc()
                continue
            parts_by_brand.update(loaded)
            resumed += 1
            if obs.enabled:
                obs.metrics.counter("exec.checkpoint.hits").inc()
        else:
            remaining.append((task_id, payload))
            if obs.enabled and resume:
                obs.metrics.counter("exec.checkpoint.misses").inc()

    def on_complete(task_id: str, shard_parts: dict) -> None:
        parts_by_brand.update(shard_parts)
        parts_path = checkpoint_dir / f"parts-{digest[:8]}-{task_id}.npz"
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
        _save_parts(parts_path, shard_parts)
        journal.record(
            task_id,
            {"file": parts_path.name, "sha256": _file_digest(parts_path)},
        )

    supervisor = Supervisor(
        config or SupervisorConfig(), obs=obs, faults=faults
    )
    try:
        outcome = supervisor.run(
            remaining,
            _build_shard,
            on_complete=on_complete,
            completed_before=resumed,
            allow_abort=not journal.aborted,
        )
    except RunInterrupted:
        journal.mark_aborted()
        raise

    ecosystem = Ecosystem.from_parts(calibration, parts_by_brand, profiles)
    arrays, meta = corpus.encode_corpus(ecosystem)

    problems: list[str] = ["store not written yet"]
    for attempt in range(_WRITE_ATTEMPTS):
        fault = faults.decide_write("corpus", attempt) if faults else None
        corpus_store.write_corpus(store_path, arrays, meta, fault=fault)
        problems = corpus_store.verify_store(store_path)
        if not problems:
            break
        corpus_store.quarantine_store(store_path)
        if obs.enabled:
            obs.tracer.event(
                "exec.store_corrupt", attempt=attempt, problems=len(problems)
            )
            obs.metrics.counter("exec.store_rewrites").inc()
    if problems:
        raise RuntimeError(
            f"corpus store failed verification after {_WRITE_ATTEMPTS} "
            f"write attempts: {problems[0]}"
        )

    return {
        "path": str(store_path),
        "corpus_digest": meta["corpus_digest"],
        "reused": False,
        "resumed_shards": resumed,
        "built_shards": len(outcome.results),
        "failures": [
            f"{record.kind}: {record.task_id} (attempt {record.attempt})"
            for record in outcome.failures
        ],
    }
