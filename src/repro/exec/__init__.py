"""Supervised execution layer (docs/ROBUSTNESS.md).

``repro.exec`` is the one home for process management in this codebase:
every worker pool, supervised run, and checkpointed build goes through
it.  The static-analysis rule RPR012 enforces that -- direct
``multiprocessing`` / ``concurrent.futures`` pool construction anywhere
else is a lint finding -- so process-level robustness (deadline
watchdogs, seeded-backoff retries, respawn budgets, checkpoint/resume,
fault injection) is a property of the whole pipeline, not of individual
call sites.

Layers:

- :mod:`repro.exec.pool` -- the plain, unsupervised pool primitive
  (order-preserving map over worker processes).
- :mod:`repro.exec.supervisor` -- :class:`Supervisor`: per-task deadline
  watchdog, seeded-backoff retries, bounded worker respawns, graceful
  degradation to in-process execution, structured
  :class:`FailureRecord`\\ s.
- :mod:`repro.exec.checkpoint` -- :class:`CheckpointJournal`: an atomic
  temp+rename JSONL journal of completed work, keyed so stale
  checkpoints are misses (the `corpus_store` discipline).
- :mod:`repro.exec.faults` -- deterministic process/storage fault plans
  (worker kills, hangs, parent aborts, corrupt store writes), modeled on
  :mod:`repro.net.faults` profiles.
- :mod:`repro.exec.corpusbuild` -- supervised sharded corpus builds with
  per-shard checkpoints (imported lazily; it pulls in numpy).

Determinism: fault decisions are keyed on ``(seed, task, attempt)``, so
an interrupted run resumed from its journal re-derives exactly the
decisions the uninterrupted run would have made -- which is why the
chaos-resume invariant (interrupt + resume == uninterrupted, byte for
byte) can be asserted in CI.
"""

from __future__ import annotations

from repro.exec.checkpoint import CheckpointJournal
from repro.exec.faults import (
    EXEC_PROFILES,
    ExecFaultKind,
    ExecFaultPlan,
    ExecFaultSpec,
    plan_from_exec_profile,
)
from repro.exec.pool import pool_map, run_pool
from repro.exec.supervisor import (
    FailureRecord,
    RunInterrupted,
    SupervisedOutcome,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "CheckpointJournal",
    "EXEC_PROFILES",
    "ExecFaultKind",
    "ExecFaultPlan",
    "ExecFaultSpec",
    "FailureRecord",
    "RunInterrupted",
    "SupervisedOutcome",
    "Supervisor",
    "SupervisorConfig",
    "plan_from_exec_profile",
    "pool_map",
    "run_pool",
]
