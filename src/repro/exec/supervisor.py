"""Worker supervision: deadline watchdog, retries, respawns, degradation.

:class:`Supervisor` runs a list of ``(task_id, payload)`` tasks across a
small fleet of worker processes and keeps the *parent* alive through
every worker failure mode the fault plans can inject (and the real ones
they model):

- **worker death** -- a worker that dies mid-task (``os._exit``, OOM
  kill, segfault) is detected by liveness polling; its task is retried
  and the worker respawned, up to a bounded ``respawn_budget``.
- **hang** -- a heartbeat-free deadline watchdog: each assignment gets
  ``task_timeout`` seconds of wall clock; past the deadline the worker
  is terminated and the task retried.  No cooperation from the worker
  is required (a truly wedged process can't send heartbeats anyway).
- **retry pacing** -- re-attempts are delayed by seeded exponential
  backoff (deterministic per ``(seed, task, attempt)``, jitter included,
  so two runs retry on the same schedule).
- **degradation** -- a task out of attempts, or a run out of workers
  and respawn budget, falls back to in-process execution in the parent
  (``local_fn``).  Slower, but the run *completes*; the experiments are
  deterministic, so a degraded run's results are identical.

Every recovery action is recorded as a structured :class:`FailureRecord`
instead of crashing the parent, and surfaced through
:class:`SupervisedOutcome` plus ``repro.obs`` counters/events
(``exec.retries``, ``exec.respawns``, ``exec.worker_deaths``,
``exec.timeouts``, ``exec.degraded``) so ``trace --diff`` localises
recovery cost.

This module is the one place in the codebase allowed to read the host
monotonic clock (pyproject per-path-ignores, RPR001): supervision
deadlines are about *real* elapsed time, unlike everything the
simulation measures, which flows through ``SimClock``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.exec.faults import ExecFaultPlan
from repro.obs import NULL_OBS, Observability

__all__ = [
    "FailureRecord",
    "RunInterrupted",
    "SupervisedOutcome",
    "Supervisor",
    "SupervisorConfig",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs for one supervised run."""

    workers: int = 2
    #: per-task wall-clock deadline in seconds (None disables the watchdog).
    task_timeout: float | None = 600.0
    #: total tries per task (first attempt included) before degradation.
    max_task_attempts: int = 3
    #: total worker respawns across the run before the fleet shrinks.
    respawn_budget: int = 16
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    #: seeds the backoff jitter (fault plans carry their own seed).
    seed: int = 0
    #: parent poll granularity for results/watchdog, in seconds.
    poll_interval: float = 0.05


@dataclass(frozen=True)
class FailureRecord:
    """One recovery action, structured (never a crashed parent).

    ``kind`` is one of ``worker-death``, ``timeout``, ``error`` (the
    task raised in the worker), or ``degraded`` (ran in-process after
    workers/attempts were exhausted).
    """

    task_id: str
    attempt: int
    kind: str
    detail: str
    worker: str

    def as_dict(self) -> dict:
        """Fixed-key export shape for reports and JSON dumps.

        Always serialise through this (never ``vars``/``asdict``) so
        key order stays pinned independent of field declaration order;
        RPR014 enforces the convention.
        """
        return {
            "task_id": self.task_id,
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
            "worker": self.worker,
        }


@dataclass
class SupervisedOutcome:
    """What a supervised run produced and what it took to get there."""

    results: dict[str, object] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    degraded: list[str] = field(default_factory=list)


class RunInterrupted(RuntimeError):
    """The run stopped partway (injected ABORT fault).

    Completed tasks are already checkpointed; the CLI maps this to exit
    code 3 and points at ``--resume``.
    """

    def __init__(self, completed: int, remaining: list[str]) -> None:
        self.completed = completed
        self.remaining = list(remaining)
        super().__init__(
            f"run interrupted after {completed} completed task(s); "
            f"{len(self.remaining)} remaining -- resume with --resume"
        )


_KILL_EXIT = 23


def _worker_main(
    label: str,
    task_q,
    result_q,
    worker_fn,
    initializer,
    initargs,
    faults: ExecFaultPlan | None,
):  # pragma: no cover - runs in worker processes
    if initializer is not None:
        initializer(*initargs)
    while True:
        item = task_q.get()
        if item is None:
            return
        task_id, payload, attempt = item
        if faults is not None:
            kind = faults.decide_task(task_id, attempt)
            if kind is not None and kind.value == "kill":
                os._exit(_KILL_EXIT)
            if kind is not None and kind.value == "hang":
                # A wedged worker: sleep past any sane deadline and let
                # the parent's watchdog terminate us.
                time.sleep(faults.hang_seconds)
        try:
            result = worker_fn(payload)
        except BaseException as exc:  # ship the failure, keep serving
            result_q.put(
                (label, task_id, attempt, False, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_q.put((label, task_id, attempt, True, result))


def _mp_context():
    # fork keeps worker_fn/initializer closures and a warm parent heap
    # cheap to inherit; fall back to the platform default elsewhere (all
    # functions we pass are module-level, so spawn works too).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Worker:
    """One supervised worker process and its dedicated task queue."""

    def __init__(self, ctx, label, result_q, worker_fn, initializer, initargs, faults):
        self.label = label
        self.task_q = ctx.Queue()
        #: (task_id, payload, attempt, deadline | None) while busy.
        self.current: tuple | None = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(
                label,
                self.task_q,
                result_q,
                worker_fn,
                initializer,
                initargs,
                faults,
            ),
            daemon=True,
        )
        self.process.start()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def assign(self, task_id, payload, attempt, timeout: float | None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        self.current = (task_id, payload, attempt, deadline)
        self.task_q.put((task_id, payload, attempt))

    def stop(self) -> None:
        try:
            self.task_q.put(None)
        except (ValueError, OSError):  # pragma: no cover - queue closed
            pass  # worker is being terminated below anyway
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.task_q.close()


class Supervisor:
    """Run tasks across supervised workers (see module docstring).

    ``faults`` injects deterministic process faults
    (:mod:`repro.exec.faults`); ``obs`` receives counters and events.
    """

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        *,
        obs: Observability | None = None,
        faults: ExecFaultPlan | None = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.faults = faults

    # -- deterministic backoff --------------------------------------------

    def _backoff(self, task_id: str, attempt: int) -> float:
        cfg = self.config
        jitter = random.Random(
            f"{cfg.seed}/backoff/{task_id}/{attempt}"
        ).random()
        return (
            cfg.backoff_base
            * (cfg.backoff_factor**attempt)
            * (1.0 + cfg.backoff_jitter * jitter)
        )

    # -- bookkeeping -------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter(name).inc()

    def _event(self, name: str, **attrs) -> None:
        if self.obs.enabled:
            self.obs.tracer.event(name, **attrs)

    def _failure(
        self, outcome: SupervisedOutcome, task_id, attempt, kind, detail, worker
    ) -> None:
        outcome.failures.append(
            FailureRecord(
                task_id=task_id,
                attempt=attempt,
                kind=kind,
                detail=detail,
                worker=worker,
            )
        )
        self._event(f"exec.{kind.replace('-', '_')}", task=task_id, attempt=attempt)

    # -- public entry ------------------------------------------------------

    def run(
        self,
        tasks: list[tuple[str, object]],
        worker_fn: Callable,
        *,
        initializer: Callable | None = None,
        initargs: tuple = (),
        local_fn: Callable | None = None,
        on_complete: Callable[[str, object], None] | None = None,
        completed_before: int = 0,
        allow_abort: bool = True,
    ) -> SupervisedOutcome:
        """Run every task; returns a :class:`SupervisedOutcome`.

        ``worker_fn(payload)`` runs in workers; ``local_fn(payload)``
        (default ``worker_fn``) is the in-process degradation path.
        ``on_complete(task_id, result)`` fires in the parent after each
        completion -- the checkpoint hook.  ``completed_before`` counts
        journal hits toward the ABORT fault's threshold so the fault
        models "the machine died N tasks into the run" regardless of
        how the run was split; ``allow_abort=False`` disables ABORT
        (resumed runs crash at most once per journal).
        """
        local_fn = local_fn or worker_fn
        abort_after = None
        if allow_abort and self.faults is not None:
            abort_after = self.faults.abort_after
        with self.obs.tracer.span(
            "exec.supervise",
            tasks=len(tasks),
            workers=min(self.config.workers, max(len(tasks), 1)),
        ):
            if self.config.workers <= 1 or len(tasks) <= 1:
                return self._run_serial(
                    tasks, local_fn, on_complete, completed_before, abort_after
                )
            return self._run_parallel(
                tasks,
                worker_fn,
                initializer,
                initargs,
                local_fn,
                on_complete,
                completed_before,
                abort_after,
            )

    # -- serial path -------------------------------------------------------

    def _run_serial(
        self, tasks, local_fn, on_complete, done_count, abort_after
    ) -> SupervisedOutcome:
        """In-process supervision: checkpoints and ABORT still apply
        (KILL/HANG need worker processes and are no-ops here)."""
        outcome = SupervisedOutcome()
        for index, (task_id, payload) in enumerate(tasks):
            if abort_after is not None and done_count >= abort_after:
                self._event("exec.abort", completed=done_count)
                raise RunInterrupted(
                    done_count, [tid for tid, _ in tasks[index:]]
                )
            attempt = 0
            while True:
                try:
                    result = local_fn(payload)
                except Exception as exc:
                    self._failure(
                        outcome,
                        task_id,
                        attempt,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        "local",
                    )
                    attempt += 1
                    if attempt >= self.config.max_task_attempts:
                        raise
                    outcome.retries += 1
                    self._count("exec.retries")
                    continue
                break
            outcome.results[task_id] = result
            done_count += 1
            self._count("exec.tasks.completed")
            if on_complete is not None:
                on_complete(task_id, result)
        if abort_after is not None and done_count >= abort_after:
            # The threshold can land exactly on the last task: the fault
            # still fires (the uninterrupted-vs-resumed invariant needs
            # the abort to be a function of completed count only).
            self._event("exec.abort", completed=done_count)
            raise RunInterrupted(done_count, [])
        return outcome

    # -- parallel path -----------------------------------------------------

    def _run_parallel(
        self,
        tasks,
        worker_fn,
        initializer,
        initargs,
        local_fn,
        on_complete,
        done_count,
        abort_after,
    ) -> SupervisedOutcome:
        cfg = self.config
        ctx = _mp_context()
        result_q = ctx.Queue()
        outcome = SupervisedOutcome()
        spawn = lambda label: _Worker(  # noqa: E731 - local factory
            ctx, label, result_q, worker_fn, initializer, initargs, self.faults
        )
        fleet: list[_Worker] = [
            spawn(f"w{i}") for i in range(min(cfg.workers, len(tasks)))
        ]
        spawned = len(fleet)
        #: (task_id, payload, attempt, ready_at)
        pending: list[tuple] = [(tid, payload, 0, 0.0) for tid, payload in tasks]

        def complete(task_id: str, result) -> None:
            nonlocal done_count
            outcome.results[task_id] = result
            done_count += 1
            self._count("exec.tasks.completed")
            if on_complete is not None:
                on_complete(task_id, result)
            if abort_after is not None and done_count >= abort_after:
                remaining = [t[0] for t in pending] + [
                    w.current[0] for w in fleet if w.current is not None
                ]
                self._event("exec.abort", completed=done_count)
                raise RunInterrupted(done_count, remaining)

        def degrade(task_id: str, payload, attempt: int) -> None:
            self._failure(
                outcome,
                task_id,
                attempt,
                "degraded",
                "worker attempts/respawns exhausted; ran in-process",
                "local",
            )
            outcome.degraded.append(task_id)
            self._count("exec.degraded")
            complete(task_id, local_fn(payload))

        def retry_or_degrade(task_id, payload, attempt) -> None:
            next_attempt = attempt + 1
            if next_attempt >= cfg.max_task_attempts:
                degrade(task_id, payload, next_attempt)
                return
            outcome.retries += 1
            self._count("exec.retries")
            ready_at = time.monotonic() + self._backoff(task_id, attempt)
            pending.append((task_id, payload, next_attempt, ready_at))

        def handle_worker_loss(worker: _Worker, kind: str, detail: str) -> None:
            nonlocal spawned
            task = worker.current
            worker.current = None
            worker.stop()
            fleet.remove(worker)
            self._count(f"exec.{'timeouts' if kind == 'timeout' else 'worker_deaths'}")
            if task is not None:
                task_id, payload, attempt, _ = task
                self._failure(outcome, task_id, attempt, kind, detail, worker.label)
                retry_or_degrade(task_id, payload, attempt)
            work_left = pending or any(w.current for w in fleet)
            if work_left and outcome.respawns < cfg.respawn_budget:
                outcome.respawns += 1
                self._count("exec.respawns")
                fleet.append(spawn(f"w{spawned}"))
                spawned += 1

        try:
            while pending or any(w.current is not None for w in fleet):
                now = time.monotonic()
                # Assign ready tasks to idle workers, submission order first.
                for worker in fleet:
                    if worker.current is not None or not worker.alive:
                        continue
                    ready = next(
                        (i for i, t in enumerate(pending) if t[3] <= now), None
                    )
                    if ready is None:
                        break
                    task_id, payload, attempt, _ = pending.pop(ready)
                    worker.assign(task_id, payload, attempt, cfg.task_timeout)
                # Collect one result (or tick the watchdog on timeout).
                try:
                    msg = result_q.get(timeout=cfg.poll_interval)
                except queue.Empty:
                    msg = None
                if msg is not None:
                    label, task_id, attempt, ok, value = msg
                    for worker in fleet:
                        if worker.current is not None and worker.current[0] == task_id:
                            worker.current = None
                            break
                    if task_id in outcome.results:
                        pass  # late duplicate from a timed-out worker
                    elif ok:
                        # Drop any requeued copy (terminated worker's
                        # result raced its own deadline).
                        pending[:] = [t for t in pending if t[0] != task_id]
                        complete(task_id, value)
                    else:
                        payload = dict(tasks)[task_id]
                        self._failure(
                            outcome, task_id, attempt, "error", value, label
                        )
                        retry_or_degrade(task_id, payload, attempt)
                # Watchdog: dead workers first, then blown deadlines.
                now = time.monotonic()
                for worker in list(fleet):
                    if not worker.alive:
                        code = worker.process.exitcode
                        handle_worker_loss(
                            worker,
                            "worker-death",
                            f"worker exited with code {code}",
                        )
                    elif (
                        worker.current is not None
                        and worker.current[3] is not None
                        and now > worker.current[3]
                    ):
                        worker.process.terminate()
                        handle_worker_loss(
                            worker,
                            "timeout",
                            f"task exceeded {cfg.task_timeout}s deadline",
                        )
                # No workers left and none can be spawned: finish inline.
                if not fleet and pending:
                    for task_id, payload, attempt, _ in list(pending):
                        pending.remove((task_id, payload, attempt, _))
                        degrade(task_id, payload, attempt)
        finally:
            for worker in fleet:
                worker.stop()
            result_q.close()
        return outcome
