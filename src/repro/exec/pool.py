"""The plain worker-pool primitive.

Every unsupervised fan-out in the codebase (``run_all(parallel=N)``'s
fast path, sharded ecosystem generation) routes its pool construction
through here instead of touching ``concurrent.futures`` directly; lint
rule RPR012 enforces that.  Centralising the construction keeps one
place to harden (and is why the supervised layer could be added without
hunting down stray pools).

Semantics match ``ProcessPoolExecutor`` + ``map``: submission order is
preserved, worker exceptions propagate to the caller, and the pool is
torn down before returning.  For crash recovery, retries, deadlines, and
checkpointing, use :class:`repro.exec.supervisor.Supervisor` instead.
"""

from __future__ import annotations

import concurrent.futures

__all__ = ["pool_map", "run_pool"]


def pool_map(
    fn,
    items,
    *,
    workers: int,
    initializer=None,
    initargs: tuple = (),
) -> list:
    """``[fn(item) for item in items]`` across ``workers`` processes.

    Results come back in submission order (``pool.map`` semantics), so
    callers that also have a sequential path stay order-identical.
    """
    items = list(items)
    if not items:
        return []
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(items)),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(fn, items))


def run_pool(fn, argtuples, *, workers: int) -> list:
    """``[fn(*args) for args in argtuples]`` across ``workers`` processes,
    in submission order."""
    argtuples = list(argtuples)
    if not argtuples:
        return []
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(argtuples))
    ) as pool:
        futures = [pool.submit(fn, *args) for args in argtuples]
        return [future.result() for future in futures]
