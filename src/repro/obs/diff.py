"""Structural diff of two deterministic traces.

``python -m repro trace --diff A.jsonl B.jsonl`` drives this module:
two traces recorded by ``run --trace-out`` -- typically the same
invocation twice (must be identical), or a healthy vs. degraded
revocation path (``none`` vs ``flaky`` fault profiles, the paper's §6
failure modes) -- are aligned span tree against span tree and the
*behavioral delta* is reported as a first-class, machine-checkable
artifact:

* spans **added**/**removed** (subtrees present in only one trace);
* matched spans whose **step counts or volatile attributes** changed
  (``latency_ms``, ``bytes``, ``outcome``, ...);
* matched siblings whose relative **order** changed;
* **counter movement attributed to the span that owned it**: the tracer
  snapshots counters at span open/close (docs/OBSERVABILITY.md), so the
  movement inside each span is recorded, not inferred, and the diff can
  say "the extra ``fetch.outcomes{outcome=timeout}`` increments happened
  inside *this* leg span";
* registry-level metric deltas (counters, gauges, histograms) as a
  roll-up safety net for movement outside any span.

Alignment is structural, not positional: siblings are keyed by span
name plus **identity attributes** (everything except
:data:`VOLATILE_ATTRS`), and the k-th occurrence of a key in trace A
matches the k-th occurrence in trace B, so one inserted span does not
cascade into spurious downstream mismatches.

The contract this makes checkable (``--check`` exits 1 on a non-empty
diff): same seed + same config => empty diff; a degraded fetch path
shows up as added/changed fetcher and circuit-breaker spans carrying
the counter deltas that moved inside them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import flat_key
from repro.obs.report import counters_inline, owned_counters, span_children

__all__ = [
    "TraceDiff",
    "VOLATILE_ATTRS",
    "diff_traces",
    "render_diff_json",
    "render_diff_text",
]

#: attributes that carry *cost or outcome*, not identity: two spans that
#: differ only here are the same logical span behaving differently, so
#: these are diffed on matched spans instead of keying the alignment.
VOLATILE_ATTRS = frozenset(
    {"attempts", "bytes", "error", "latency_ms", "outcome", "sim_start", "worker"}
)


@dataclass
class TraceDiff:
    """The structural delta between two traces.

    ``added``/``removed``/``changed``/``reordered`` are span-tree
    entries (each with a human-readable ``path``); ``metrics`` is the
    registry-level roll-up delta; ``meta`` maps differing header fields
    to their ``[a, b]`` values.  ``meta`` records *how the traces were
    produced* and deliberately does not count toward emptiness --
    :attr:`is_empty` is about behaviour.
    """

    added: list[dict] = field(default_factory=list)
    removed: list[dict] = field(default_factory=list)
    changed: list[dict] = field(default_factory=list)
    reordered: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (
            self.added
            or self.removed
            or self.changed
            or self.reordered
            or self.metrics
        )

    def span_names(self) -> list[str]:
        """Sorted names of every span the diff touches (for localizing
        a regression: a fetch-path delta names ``fetch``/``breaker.*``)."""
        names = set()
        for entry in self.added + self.removed + self.changed:
            names.add(entry["name"])
        return sorted(names)

    def to_dict(self) -> dict:
        return {
            "empty": self.is_empty,
            "meta": self.meta,
            "added": self.added,
            "removed": self.removed,
            "changed": self.changed,
            "reordered": self.reordered,
            "metrics": self.metrics,
        }


# -- record plumbing -------------------------------------------------------


def _spans(records: list[dict]) -> list[dict]:
    return [record for record in records if record.get("type") == "span"]


def _metric_records(records: list[dict]) -> list[dict]:
    return [record for record in records if record.get("type") == "metric"]


def _meta(records: list[dict]) -> dict:
    for record in records:
        if record.get("type") == "meta":
            return {k: v for k, v in record.items() if k != "type"}
    return {}


def _steps(span: dict) -> int:
    if span["end"] is None:
        return 0
    return span["end"] - span["start"]


def _identity(span: dict) -> tuple:
    """Alignment key: name + sorted non-volatile attributes."""
    attrs = tuple(
        sorted(
            (key, str(value))
            for key, value in span["attrs"].items()
            if key not in VOLATILE_ATTRS
        )
    )
    return (span["name"], attrs)


def _label(span: dict, occurrence: int) -> str:
    name, attrs = _identity(span)
    label = name
    if attrs:
        label += "[" + ",".join(f"{key}={value}" for key, value in attrs) + "]"
    if occurrence:
        label += f"#{occurrence}"
    return label


def _join(parent_path: str, label: str) -> str:
    return f"{parent_path}/{label}" if parent_path else label


# -- alignment -------------------------------------------------------------


def _keyed(siblings: list[dict]) -> list[tuple[tuple, dict]]:
    """Occurrence-numbered alignment keys, in sibling (start) order."""
    counts: dict[tuple, int] = {}
    keyed = []
    for span in siblings:
        key = _identity(span)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        keyed.append(((key, occurrence), span))
    return keyed


def _subtree_entry(span: dict, occurrence: int, parent_path: str) -> dict:
    """An added/removed subtree, reported at its root.

    The root's counter mark already covers every descendant's movement
    (marks nest), so no per-descendant entries are needed.
    """
    return {
        "path": _join(parent_path, _label(span, occurrence)),
        "name": span["name"],
        "steps": _steps(span),
        "counters": dict(span.get("counters") or {}),
    }


def _compare_matched(
    a_span: dict,
    b_span: dict,
    path: str,
    a_children: dict,
    b_children: dict,
    diff: TraceDiff,
) -> None:
    entry: dict = {}
    if _steps(a_span) != _steps(b_span):
        entry["steps"] = [_steps(a_span), _steps(b_span)]
    attr_changes = {}
    for key in sorted(set(a_span["attrs"]) | set(b_span["attrs"])):
        a_value = a_span["attrs"].get(key)
        b_value = b_span["attrs"].get(key)
        if a_value != b_value:
            attr_changes[key] = [a_value, b_value]
    if attr_changes:
        entry["attrs"] = attr_changes
    owned_a = owned_counters(a_span, a_children)
    owned_b = owned_counters(b_span, b_children)
    counter_deltas = {}
    for key in sorted(set(owned_a) | set(owned_b)):
        delta = owned_b.get(key, 0) - owned_a.get(key, 0)
        if delta:
            counter_deltas[key] = {
                "a": owned_a.get(key, 0),
                "b": owned_b.get(key, 0),
                "delta": delta,
            }
    if counter_deltas:
        entry["counters"] = counter_deltas
    if entry:
        diff.changed.append(
            {"path": path, "name": a_span["name"], **entry}
        )


def _align(
    a_siblings: list[dict],
    b_siblings: list[dict],
    parent_path: str,
    a_children: dict,
    b_children: dict,
    diff: TraceDiff,
) -> None:
    a_keyed = _keyed(a_siblings)
    b_keyed = _keyed(b_siblings)
    a_map = dict(a_keyed)
    b_map = dict(b_keyed)
    a_order = [key for key, _ in a_keyed]
    b_order = [key for key, _ in b_keyed]
    matched_a = [key for key in a_order if key in b_map]
    matched_b = [key for key in b_order if key in a_map]
    if matched_a != matched_b:
        diff.reordered.append(
            {
                "path": parent_path or "<root>",
                "a": [_label(a_map[key], key[1]) for key in matched_a],
                "b": [_label(b_map[key], key[1]) for key in matched_b],
            }
        )
    for key in a_order:
        if key not in b_map:
            diff.removed.append(_subtree_entry(a_map[key], key[1], parent_path))
    for key in b_order:
        if key not in a_map:
            diff.added.append(_subtree_entry(b_map[key], key[1], parent_path))
    for key in matched_a:
        a_span = a_map[key]
        b_span = b_map[key]
        path = _join(parent_path, _label(a_span, key[1]))
        _compare_matched(a_span, b_span, path, a_children, b_children, diff)
        _align(
            a_children.get(a_span["id"], []),
            b_children.get(b_span["id"], []),
            path,
            a_children,
            b_children,
            diff,
        )


# -- metrics / meta --------------------------------------------------------


def _metric_key(record: dict) -> tuple[str, str]:
    return (record["kind"], flat_key(record["name"], record["labels"]))


def _metric_value(record: dict | None) -> dict | int | float:
    if record is None:
        return 0
    if record["kind"] == "histogram":
        return {
            "count": record["count"],
            "sum": record["sum"],
            "min": record["min"],
            "max": record["max"],
        }
    return record["value"]


def _diff_metrics(a_records: list[dict], b_records: list[dict]) -> list[dict]:
    a_index = {_metric_key(record): record for record in a_records}
    b_index = {_metric_key(record): record for record in b_records}
    entries = []
    for kind, key in sorted(set(a_index) | set(b_index)):
        a_value = _metric_value(a_index.get((kind, key)))
        b_value = _metric_value(b_index.get((kind, key)))
        if a_value == b_value:
            continue
        entry = {"kind": kind, "metric": key, "a": a_value, "b": b_value}
        if kind == "histogram":
            a_hist = a_value if isinstance(a_value, dict) else {"count": 0, "sum": 0}
            b_hist = b_value if isinstance(b_value, dict) else {"count": 0, "sum": 0}
            entry["delta"] = {
                "count": b_hist["count"] - a_hist["count"],
                "sum": b_hist["sum"] - a_hist["sum"],
            }
        else:
            entry["delta"] = b_value - a_value
        entries.append(entry)
    return entries


def _diff_meta(a_meta: dict, b_meta: dict) -> dict:
    fields = {}
    for key in sorted(set(a_meta) | set(b_meta)):
        a_value = a_meta.get(key)
        b_value = b_meta.get(key)
        if a_value != b_value:
            fields[key] = [a_value, b_value]
    return fields


# -- public API ------------------------------------------------------------


def diff_traces(a_records: list[dict], b_records: list[dict]) -> TraceDiff:
    """Structurally diff two traces (record lists from ``load_records``)."""
    a_spans = _spans(a_records)
    b_spans = _spans(b_records)
    a_children = span_children(a_spans)
    b_children = span_children(b_spans)
    diff = TraceDiff(meta=_diff_meta(_meta(a_records), _meta(b_records)))
    _align(
        a_children.get(None, []),
        b_children.get(None, []),
        "",
        a_children,
        b_children,
        diff,
    )
    diff.metrics = _diff_metrics(
        _metric_records(a_records), _metric_records(b_records)
    )
    return diff


def render_diff_json(
    diff: TraceDiff, a_label: str = "A", b_label: str = "B"
) -> str:
    payload = {"a": a_label, "b": b_label, **diff.to_dict()}
    return json.dumps(payload, indent=2, sort_keys=True)


def _scalar_delta(value) -> str:
    return f"{value:+g}"


def render_diff_text(
    diff: TraceDiff, a_label: str = "A", b_label: str = "B"
) -> str:
    parts = [f"trace diff: {a_label} vs {b_label}"]
    if diff.meta:
        parts.append(
            "meta: "
            + ", ".join(
                f"{key}: {values[0]!r} -> {values[1]!r}"
                for key, values in sorted(diff.meta.items())
            )
        )
    if diff.is_empty:
        parts.append("traces are structurally identical (empty diff)")
        return "\n".join(parts)
    parts.append(
        f"{len(diff.added)} added, {len(diff.removed)} removed, "
        f"{len(diff.changed)} changed, {len(diff.reordered)} reordered, "
        f"{len(diff.metrics)} metric delta(s)"
    )
    for marker, entries in (("+", diff.added), ("-", diff.removed)):
        for entry in entries:
            inline = counters_inline(entry["counters"])
            parts.append(
                f"  {marker} {entry['path']} ({entry['steps']} steps)"
                + (f"  [{inline}]" if inline else "")
            )
    for entry in diff.changed:
        bits = []
        if "steps" in entry:
            bits.append(f"steps {entry['steps'][0]} -> {entry['steps'][1]}")
        for key, values in sorted(entry.get("attrs", {}).items()):
            bits.append(f"{key} {values[0]!r} -> {values[1]!r}")
        parts.append(f"  ~ {entry['path']}" + (": " + "; ".join(bits) if bits else ""))
        for key, movement in sorted(entry.get("counters", {}).items()):
            parts.append(
                f"      {key}: {movement['a']:g} -> {movement['b']:g} "
                f"({_scalar_delta(movement['delta'])})"
            )
    for entry in diff.reordered:
        parts.append(
            f"  ± {entry['path']}: order "
            + " ".join(entry["a"])
            + " -> "
            + " ".join(entry["b"])
        )
    if diff.metrics:
        parts.append("metric deltas:")
        for entry in diff.metrics:
            if entry["kind"] == "histogram":
                delta = entry["delta"]
                parts.append(
                    f"  histogram {entry['metric']}: "
                    f"count {_scalar_delta(delta['count'])}, "
                    f"sum {_scalar_delta(delta['sum'])}"
                )
            else:
                parts.append(
                    f"  {entry['kind']} {entry['metric']}: "
                    f"{entry['a']:g} -> {entry['b']:g} "
                    f"({_scalar_delta(entry['delta'])})"
                )
    return "\n".join(parts)
