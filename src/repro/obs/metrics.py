"""Counter/gauge/histogram metrics with a single registry.

One :class:`MetricsRegistry` per process (the study's, or a ``run_all``
worker's).  Instruments are keyed on ``(kind, name, sorted labels)`` and
export in sorted order, so a roll-up report is deterministic regardless
of the order instruments were touched.  Like the tracer, the registry is
zero-cost when disabled: every accessor returns a shared no-op
instrument.

Worker registries are merged into the parent's with :meth:`merge`:
counters and histogram count/sum add, histogram min/max combine, gauges
take the maximum -- all order-independent, so a parallel run rolls up to
the same totals as a sequential one.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "flat_key"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def flat_key(name: str, labels: dict) -> str:
    """Canonical ``name{label=value}...`` string for one instrument.

    Labels are sorted, so the key is independent of insertion order --
    the same convention the trace roll-up and the span-diff use, which
    is what lets a counter named in a diff be grepped in a summary.
    """
    return name + "".join(
        f"{{{key}={value}}}" for key, value in sorted(labels.items())
    )


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-set value (sizes, high-water marks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Distribution summary: count, sum, min, max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class _NullInstrument:
    """Shared no-op stand-in for every instrument when disabled."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}
        #: total mutation-capable accesses; lets run_all pick each
        #: worker's most recent (cumulative) export deterministically.
        self.op_count = 0

    def _get(self, kind: str, cls, name: str, labels: dict):
        if not self.enabled:
            return _NULL
        self.op_count += 1
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = cls()
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    # -- export / merge ----------------------------------------------------

    def counter_snapshot(self) -> dict[str, int | float]:
        """Cumulative counter values keyed by :func:`flat_key`.

        The tracer calls this at span open/close to stamp **counter
        marks** onto spans (docs/OBSERVABILITY.md): the close-minus-open
        delta is exactly the counter movement that happened inside the
        span, so per-span attribution is exact rather than inferred.
        Read-only -- it does not bump ``op_count``, so marking spans
        cannot perturb the parallel-merge bookkeeping.
        """
        snapshot: dict[str, int | float] = {}
        for (kind, name, labels), instrument in self._instruments.items():
            if kind == "counter":
                snapshot[flat_key(name, dict(labels))] = instrument.value
        return snapshot

    def export(self) -> list[dict]:
        """Sorted, JSON-ready records (``{"type": "metric", ...}``)."""
        records = []
        for (kind, name, labels) in sorted(self._instruments):
            instrument = self._instruments[(kind, name, labels)]
            record = {
                "type": "metric",
                "kind": kind,
                "name": name,
                "labels": dict(labels),
            }
            if kind == "histogram":
                record.update(
                    count=instrument.count,
                    sum=instrument.total,
                    min=instrument.min,
                    max=instrument.max,
                )
            else:
                record["value"] = instrument.value
            records.append(record)
        return records

    def merge(self, records: list[dict]) -> None:
        """Fold an exported registry into this one (order-independent)."""
        for record in records:
            kind = record["kind"]
            labels = record["labels"]
            if kind == "counter":
                self.counter(record["name"], **labels).inc(record["value"])
            elif kind == "gauge":
                gauge = self.gauge(record["name"], **labels)
                gauge.set(max(gauge.value, record["value"]))
            elif kind == "histogram":
                histogram = self.histogram(record["name"], **labels)
                histogram.count += record["count"]
                histogram.total += record["sum"]
                for bound in ("min", "max"):
                    value = record[bound]
                    if value is None:
                        continue
                    current = getattr(histogram, bound)
                    if current is None:
                        setattr(histogram, bound, value)
                    elif bound == "min":
                        histogram.min = min(current, value)
                    else:
                        histogram.max = max(current, value)
