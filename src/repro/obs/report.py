"""Roll-up analysis over a trace JSONL file.

``python -m repro trace trace.jsonl`` drives this module: a trace
written by ``--trace-out`` (spans + metrics + a meta header) is distilled
into a summary, a top-spans table (where the steps, simulated latency,
and bytes went, grouped by span name), and a per-experiment flame-table
(the span tree under each ``experiment`` root, aggregated by name at
each depth).  Everything is computed from the records alone, so the
report is as deterministic as the trace (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.report import format_table
from repro.obs.metrics import flat_key

__all__ = [
    "counters_inline",
    "flame_table",
    "load_records",
    "owned_counters",
    "render_json",
    "render_text",
    "span_children",
    "summarize",
    "top_spans",
]

#: span attributes understood as costs and summed into the roll-ups.
_COST_ATTRS = ("latency_ms", "bytes")


def load_records(path: str | Path) -> list[dict]:
    records = []
    for line_no, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
    return records


def _spans(records: list[dict]) -> list[dict]:
    return [record for record in records if record.get("type") == "span"]


def _steps(span: dict) -> int:
    if span["end"] is None:
        return 0
    return span["end"] - span["start"]


def span_children(spans: list[dict]) -> dict[int | None, list[dict]]:
    """Spans grouped by parent id, each sibling list in start order."""
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span["start"])
    return children


def owned_counters(span: dict, children: dict[int | None, list[dict]]) -> dict:
    """Counter movement *owned* by ``span``.

    A span's recorded ``counters`` mark (close-minus-open snapshot,
    stamped by the tracer) covers everything that moved while it was
    open -- including movement inside child spans.  Owned movement
    subtracts the direct children's recorded movement, leaving only what
    this span itself (its own code, plus zero-width events directly
    under it) caused.  Spans recorded before marks existed, or still
    open, simply have no ``counters`` and own nothing.
    """
    owned = dict(span.get("counters") or {})
    for child in children.get(span["id"], []):
        for key, delta in (child.get("counters") or {}).items():
            owned[key] = owned.get(key, 0) - delta
    return {key: value for key, value in sorted(owned.items()) if value}


def counters_inline(counters: dict, top: int = 3) -> str:
    """Compact one-line rendering of a counter-movement dict.

    The ``top`` movements by magnitude (ties broken by name), e.g.
    ``fetch.fetches{kind=crl}+36 fetch.attempts{kind=crl}+41``.
    """
    if not counters:
        return ""
    ranked = sorted(counters.items(), key=lambda item: (-abs(item[1]), item[0]))
    parts = [f"{key}{value:+g}" for key, value in ranked[:top]]
    if len(ranked) > top:
        parts.append(f"(+{len(ranked) - top} more)")
    return " ".join(parts)


def summarize(records: list[dict]) -> dict:
    spans = _spans(records)
    metrics = [record for record in records if record.get("type") == "metric"]
    meta = next(
        (record for record in records if record.get("type") == "meta"), None
    )
    experiments = {}
    for span in spans:
        if span["name"] != "experiment":
            continue
        experiment_id = span["attrs"].get("experiment", "?")
        experiments[experiment_id] = {
            "steps": _steps(span),
            "outcome": span["attrs"].get("outcome", "open"),
            "worker": span["attrs"].get("worker", "w0"),
        }
    counters = {}
    for record in metrics:
        if record["kind"] != "counter":
            continue
        counters[flat_key(record["name"], record["labels"])] = record["value"]
    return {
        "meta": {k: v for k, v in (meta or {}).items() if k != "type"},
        "spans": len(spans),
        "open_spans": sum(1 for span in spans if span["end"] is None),
        "total_steps": max(
            (span["end"] for span in spans if span["end"] is not None),
            default=0,
        ),
        "experiments": {k: experiments[k] for k in sorted(experiments)},
        "counters": {k: counters[k] for k in sorted(counters)},
    }


def top_spans(records: list[dict], limit: int = 15) -> list[dict]:
    """Aggregate spans by name: count, steps, and summed cost attributes."""
    groups: dict[str, dict] = {}
    for span in _spans(records):
        group = groups.setdefault(
            span["name"],
            {"name": span["name"], "count": 0, "steps": 0}
            | {attr: 0 for attr in _COST_ATTRS},
        )
        group["count"] += 1
        group["steps"] += _steps(span)
        for attr in _COST_ATTRS:
            value = span["attrs"].get(attr)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                group[attr] += value
    ranked = sorted(
        groups.values(), key=lambda g: (-g["steps"], -g["count"], g["name"])
    )
    return ranked[:limit]


def flame_table(records: list[dict]) -> list[dict]:
    """Per-experiment span trees, aggregated by name at each depth.

    Returns one entry per ``experiment`` root span (in trace order),
    each with ``frames``: depth-indented rows of (name, count, steps,
    latency_ms, bytes, counters) covering every descendant span.
    ``counters`` is the row's **owned counter movement** -- the counter
    marks of the row's spans minus their direct children's
    (:func:`owned_counters`), summed over the group -- so every counter
    increment in the trace is attributed to exactly one row.
    """
    spans = _spans(records)
    children = span_children(spans)

    def aggregate(parent_ids: list[int], depth: int, frames: list[dict]) -> None:
        mine = [
            span for pid in parent_ids for span in children.get(pid, [])
        ]
        by_name: dict[str, list[dict]] = {}
        for span in mine:
            by_name.setdefault(span["name"], []).append(span)
        for name in sorted(by_name):
            group = by_name[name]
            frame = {
                "depth": depth,
                "name": name,
                "count": len(group),
                "steps": sum(_steps(span) for span in group),
            }
            for attr in _COST_ATTRS:
                frame[attr] = sum(
                    span["attrs"][attr]
                    for span in group
                    if isinstance(span["attrs"].get(attr), (int, float))
                    and not isinstance(span["attrs"].get(attr), bool)
                )
            owned: dict = {}
            for span in group:
                for key, delta in owned_counters(span, children).items():
                    owned[key] = owned.get(key, 0) + delta
            frame["counters"] = {
                key: owned[key] for key in sorted(owned) if owned[key]
            }
            frames.append(frame)
            aggregate([span["id"] for span in group], depth + 1, frames)

    tables = []
    for span in spans:
        if span["name"] != "experiment":
            continue
        frames: list[dict] = []
        aggregate([span["id"]], 1, frames)
        tables.append(
            {
                "experiment": span["attrs"].get("experiment", "?"),
                "steps": _steps(span),
                "worker": span["attrs"].get("worker", "w0"),
                "outcome": span["attrs"].get("outcome", "open"),
                "counters": owned_counters(span, children),
                "frames": frames,
            }
        )
    return tables


def render_json(records: list[dict], limit: int = 15) -> str:
    return json.dumps(
        {
            "summary": summarize(records),
            "top_spans": top_spans(records, limit),
            "experiments": flame_table(records),
        },
        indent=2,
        sort_keys=True,
    )


def render_text(records: list[dict], limit: int = 15) -> str:
    summary = summarize(records)
    parts = []
    meta = summary["meta"]
    if meta:
        parts.append(
            "trace: "
            + ", ".join(f"{key}={meta[key]}" for key in sorted(meta))
        )
    parts.append(
        f"{summary['spans']} span(s), {summary['open_spans']} open, "
        f"{summary['total_steps']} step(s)"
    )
    if summary["experiments"]:
        parts.append("")
        parts.append(
            format_table(
                ["experiment", "steps", "outcome", "worker"],
                [
                    (eid, entry["steps"], entry["outcome"], entry["worker"])
                    for eid, entry in summary["experiments"].items()
                ],
                title="per-experiment spans",
            )
        )
    ranked = top_spans(records, limit)
    if ranked:
        parts.append("")
        parts.append(
            format_table(
                ["span", "count", "steps", "latency_ms", "bytes"],
                [
                    (
                        group["name"],
                        group["count"],
                        group["steps"],
                        f"{group['latency_ms']:,.0f}",
                        group["bytes"],
                    )
                    for group in ranked
                ],
                title=f"top spans by steps (limit {limit})",
            )
        )
    tables = flame_table(records)
    if tables:
        parts.append("")
        parts.append("flame-table (span tree per experiment)")
        for table in tables:
            parts.append(
                f"  {table['experiment']} [{table['outcome']}, "
                f"{table['steps']} steps, {table['worker']}]"
            )
            for frame in table["frames"]:
                indent = "    " * frame["depth"]
                owned = counters_inline(frame["counters"])
                parts.append(
                    f"  {indent}{frame['name']}  x{frame['count']}  "
                    f"{frame['steps']} steps  "
                    f"{frame['latency_ms']:,.0f} ms  {frame['bytes']} B"
                    + (f"  [{owned}]" if owned else "")
                )
    if summary["counters"]:
        parts.append("")
        parts.append(
            format_table(
                ["counter", "value"],
                [
                    (name, value)
                    for name, value in summary["counters"].items()
                ],
                title="counters",
            )
        )
    return "\n".join(parts)
