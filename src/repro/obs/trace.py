"""Deterministic span-based tracing.

Spans are clocked by a **monotonic step counter**, not the host clock:
every span start/end increments the tracer's counter, so a trace is a
pure function of the work performed and two runs with the same seed
produce byte-identical JSONL (docs/OBSERVABILITY.md).  Components that
own simulated time attach it as ordinary attributes (``sim_start`` /
``latency_ms``); the step counter is what orders and nests spans.

The tracer is **zero-cost when disabled**: ``span()`` and ``event()``
return/record nothing, and hot paths additionally guard on
``tracer.enabled`` so a disabled run does not even build attribute
dicts.  Tracing is observational only -- it never touches an RNG or a
report, so enabling it cannot change any artifact byte.

When wired to a metrics registry (``Observability`` passes the
registry's ``counter_snapshot`` as ``counter_marks``), the tracer
additionally records **counter marks**: every span is stamped at close
with ``counters``, the per-counter movement between its open and close
snapshots.  That is what makes per-span metrics attribution in the
trace roll-up and the span-diff exact rather than inferred
(docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["NullSpan", "SpanHandle", "Tracer"]

#: attribute values must serialise deterministically.
_ATTR_TYPES = (str, int, float, bool, type(None))


def _clean_attrs(attributes: dict) -> dict:
    for value in attributes.values():
        if not isinstance(value, _ATTR_TYPES):
            raise TypeError(
                f"span attribute values must be str/int/float/bool/None, "
                f"got {type(value).__name__}"
            )
    return attributes


class NullSpan:
    """No-op span handle returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = NullSpan()


def _copy_record(record: dict) -> dict:
    copied = {**record, "attrs": dict(record["attrs"])}
    if "counters" in copied:
        copied["counters"] = dict(copied["counters"])
    return copied


class SpanHandle:
    """A live span: a context manager that stamps start/end steps."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: dict) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "error" not in self.record["attrs"]:
            self.record["attrs"]["error"] = exc_type.__name__
        self._tracer._close(self.record)
        return False

    def set(self, key: str, value) -> None:
        self.record["attrs"].update(_clean_attrs({key: value}))


class Tracer:
    """Collects spans into an in-memory, deterministic event log.

    Single-threaded by design: each process (the main study, each
    ``run_all`` worker) owns exactly one tracer, and parallel workers'
    segments are merged deterministically by
    :meth:`import_segment`.
    """

    def __init__(self, enabled: bool = False, counter_marks=None) -> None:
        self.enabled = enabled
        self._records: list[dict] = []
        self._stack: list[dict] = []
        self._steps = 0
        #: optional zero-argument callable returning a cumulative counter
        #: snapshot (``MetricsRegistry.counter_snapshot``).  When set,
        #: every span is stamped at close with ``counters``: the
        #: close-minus-open delta, i.e. exactly the counter movement that
        #: happened while the span was open.  ``Observability`` wires
        #: this; a bare tracer records no marks.
        self._counter_marks = counter_marks
        self._open_marks: dict[int, dict] = {}

    # -- recording ---------------------------------------------------------

    def _tick(self) -> int:
        step = self._steps
        self._steps += 1
        return step

    def span(self, name: str, **attributes) -> SpanHandle | NullSpan:
        """Open a span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        record = {
            "type": "span",
            "id": len(self._records),
            "parent": self._stack[-1]["id"] if self._stack else None,
            "name": name,
            "start": self._tick(),
            "end": None,
            "attrs": _clean_attrs(attributes),
        }
        self._records.append(record)
        self._stack.append(record)
        if self._counter_marks is not None:
            self._open_marks[record["id"]] = self._counter_marks()
        return SpanHandle(self, record)

    def _close(self, record: dict) -> None:
        # Unwind to the closed span: an exception may skip inner exits.
        # The stack pops innermost-first, so children are stamped with
        # their counter marks before their parent -- a child's movement
        # is always a subset of its parent's.
        while self._stack:
            top = self._stack.pop()
            if top["end"] is None:
                top["end"] = self._tick()
                self._stamp_counters(top)
            if top is record:
                break

    def _stamp_counters(self, record: dict) -> None:
        opened = self._open_marks.pop(record["id"], None)
        if opened is None:
            return
        closed = self._counter_marks()
        moved = {
            key: value - opened.get(key, 0)
            for key, value in closed.items()
            if value != opened.get(key, 0)
        }
        if moved:
            record["counters"] = moved

    def event(self, name: str, **attributes) -> None:
        """A zero-duration span (state transitions, cache hits)."""
        if not self.enabled:
            return
        step = self._tick()
        self._records.append(
            {
                "type": "span",
                "id": len(self._records),
                "parent": self._stack[-1]["id"] if self._stack else None,
                "name": name,
                "start": step,
                "end": step,
                "attrs": _clean_attrs(attributes),
            }
        )

    # -- export ------------------------------------------------------------

    def mark(self) -> int:
        """Position marker for :meth:`records_since` / :meth:`export_segment`."""
        return len(self._records)

    def records_since(self, mark: int) -> list[dict]:
        """Deep-copied snapshot of records appended after ``mark``.

        Spans still open (e.g. captured mid-failure) have ``end: None``
        -- that is what makes a *partial* trace recognisable.
        """
        return [_copy_record(record) for record in self._records[mark:]]

    def records(self) -> list[dict]:
        return self.records_since(0)

    def export_segment(self, mark: int) -> list[dict]:
        """Records after ``mark``, rebased so ids and steps start at 0.

        Worker processes ship segments to the parent, whose tracer
        renumbers them onto its own counters via :meth:`import_segment`.
        """
        segment = self.records_since(mark)
        if not segment:
            return segment
        id_base = min(record["id"] for record in segment)
        step_base = min(record["start"] for record in segment)
        known = {record["id"] for record in segment}
        for record in segment:
            record["id"] -= id_base
            record["parent"] = (
                record["parent"] - id_base
                if record["parent"] in known
                else None
            )
            record["start"] -= step_base
            if record["end"] is not None:
                record["end"] -= step_base
        return segment

    def import_segment(
        self, segment: list[dict], worker: str | None = None
    ) -> None:
        """Splice a rebased segment into this tracer's log.

        Ids and steps are renumbered onto this tracer's counters, so a
        merged trace is totally ordered no matter which process produced
        each segment.  ``worker`` is stamped onto the segment's root
        spans (parent ``None``) for attribution.
        """
        if not segment:
            return
        id_base = len(self._records)
        step_span = 1 + max(
            max(record["start"] for record in segment),
            max(
                record["end"]
                for record in segment
                if record["end"] is not None
            )
            if any(record["end"] is not None for record in segment)
            else 0,
        )
        step_base = self._steps
        self._steps += step_span
        for record in segment:
            copied = _copy_record(record)
            copied["id"] += id_base
            if copied["parent"] is None:
                if worker is not None:
                    copied["attrs"]["worker"] = worker
            else:
                copied["parent"] += id_base
            copied["start"] += step_base
            if copied["end"] is not None:
                copied["end"] += step_base
            self._records.append(copied)

    def write_jsonl(self, path: str | Path, header: dict | None = None) -> Path:
        """One JSON object per line, keys sorted: byte-stable per seed."""
        path = Path(path)
        lines = []
        if header is not None:
            lines.append(json.dumps({"type": "meta", **header}, sort_keys=True))
        lines.extend(
            json.dumps(record, sort_keys=True) for record in self.records()
        )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path
