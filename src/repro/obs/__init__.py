"""``repro.obs`` -- deterministic tracing + metrics for the whole stack.

One :class:`Observability` object per process bundles the span tracer
(:mod:`repro.obs.trace`) and the metrics registry
(:mod:`repro.obs.metrics`).  :class:`~repro.core.pipeline.MeasurementStudy`
owns one and threads it through every instrumented component: the scan
simulator, :class:`~repro.net.fetcher.NetworkFetcher`, the circuit
breaker, the artifact cache, ``run_all``, and each experiment module.

Disabled (the default) it is a shared no-op -- report bytes are
identical with tracing on or off, and the overhead is one attribute
check per instrumentation site.  Enable it per study
(``MeasurementStudy(obs=Observability(enabled=True))``), via the CLI
(``python -m repro run all --trace-out trace.jsonl``), or for a whole
test run with ``REPRO_TRACE=1``.  See docs/OBSERVABILITY.md for the
span model and the determinism contract.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NullSpan, SpanHandle, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullSpan",
    "Observability",
    "SpanHandle",
    "Tracer",
    "obs_from_env",
]

#: set (to anything non-empty) to enable tracing on every study that is
#: not given an explicit Observability -- how CI traces the whole suite.
TRACE_ENV_VAR = "REPRO_TRACE"


class Observability:
    """A tracer plus a metrics registry sharing one enabled flag.

    The tracer is wired to the registry's ``counter_snapshot`` so every
    span carries its exact counter movement (``counters``, the
    close-minus-open delta) -- the basis for per-span attribution in the
    flame-table and the span-diff (docs/OBSERVABILITY.md).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(
            enabled=enabled,
            counter_marks=self.metrics.counter_snapshot if enabled else None,
        )

    def export_records(self) -> list[dict]:
        """Spans first (trace order), then metrics (sorted): the JSONL body."""
        return self.tracer.records() + self.metrics.export()

    def write_jsonl(self, path: str | Path, header: dict | None = None) -> Path:
        path = Path(path)
        lines = []
        if header is not None:
            lines.append(json.dumps({"type": "meta", **header}, sort_keys=True))
        lines.extend(
            json.dumps(record, sort_keys=True)
            for record in self.export_records()
        )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path


#: the shared disabled instance; instrumented components default to it.
NULL_OBS = Observability(enabled=False)


def obs_from_env() -> Observability:
    """A fresh enabled Observability if ``REPRO_TRACE`` is set, else NULL_OBS."""
    if os.environ.get(TRACE_ENV_VAR):
        return Observability(enabled=True)
    return NULL_OBS
