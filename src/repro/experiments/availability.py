"""Availability under failure: fault probability x retry policy sweep.

An extension of §6.1: the paper tests browsers against *static*
unavailability (NXDOMAIN, 404, no response, OCSP ``unknown``); follow-up
measurement work shows responder availability is probabilistic and
time-varying.  This experiment drives a dedicated PKI through the
seeded fault-injection layer (:mod:`repro.net.faults`) and reports, per
(fault probability, retry policy) cell:

* **success rate** -- fraction of connections that obtained a definitive
  (good/revoked) answer from OCSP or the CRL fallback;
* **added latency** -- mean revocation-checking latency per connection,
  including what failed attempts, timeouts, and backoff cost;
* **soft-fail exposure** -- fraction of *revoked* certificates whose
  checks came back non-definitive, i.e. connections a soft-fail browser
  (the common default, §6.1) would accept with a revoked certificate.

Everything is driven by ``study.fault_seed``, so runs are reproducible;
``study.fault_profile`` adds one extra row measured under the named
profile (the CLI's ``--fault-profile``).
"""

from __future__ import annotations

import datetime

from repro.ca.authority import CertificateAuthority
from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage
from repro.net.cache import ClientCache
from repro.net.clock import SimClock
from repro.net.endpoints import CrlEndpoint, OcspEndpoint
from repro.net.faults import FaultKind, FaultPlan, FaultSpec, plan_from_profile
from repro.net.fetcher import FetchStats, NetworkFetcher, RetryPolicy
from repro.obs import NULL_OBS, Observability
from repro.net.transport import FailureMode, Network
from repro.revocation.checker import FailureClass, RevocationChecker

EXPERIMENT_ID = "availability"
TITLE = "Revocation availability under fault injection (§6.1 extension)"

_UTC = datetime.timezone.utc
_NOW = datetime.datetime(2015, 4, 15, 9, 0, tzinfo=_UTC)
_NOT_BEFORE = datetime.datetime(2014, 6, 1, tzinfo=_UTC)
_NOT_AFTER = datetime.datetime(2016, 6, 1, tzinfo=_UTC)

#: fault probabilities swept (per-request chance of a transport fault).
PROBABILITIES = (0.0, 0.1, 0.3, 0.5)
#: seconds of simulated time between consecutive connections, so the
#: circuit breaker's reset window actually elapses during a leg.
_STEP = datetime.timedelta(seconds=30)
_N_LEAVES = 36
_N_REVOKED = 12


#: Could another attempt (retry, different URL, later re-fetch) plausibly
#: have turned this failure into an answer?  Transient transport and
#: endpoint faults: yes.  Local client refusals and missing pointers: no
#: -- retrying cannot conjure revocation info that was never pointed to,
#: and the breaker/negative cache exist precisely to stop retries.  The
#: RPR005 gate keeps this dispatch exhaustive as FailureClass grows.
# repro: exhaustive(FailureClass)
_RETRYABLE: dict[FailureClass, bool] = {
    FailureClass.NONE: False,
    FailureClass.TIMEOUT: True,
    FailureClass.DNS: True,
    FailureClass.HTTP: True,
    FailureClass.MALFORMED: True,
    FailureClass.STALE: True,
    FailureClass.BREAKER_OPEN: False,
    FailureClass.NEGATIVE_CACHED: False,
    FailureClass.NO_POINTER: False,
    FailureClass.UNCLASSIFIED: False,
}


def _build_pki(seed: int):
    """One root CA serving CRL + OCSP for ``_N_LEAVES`` leaves."""
    from repro.pki.keys import KeyPair

    ca = CertificateAuthority.create_root(
        common_name="Availability CA",
        seed=f"availability/{seed}/root",
        not_before=_NOT_BEFORE,
        not_after=_NOT_AFTER,
        crl_base_url="http://crl.availability.example",
        ocsp_url="http://ocsp.availability.example/q",
    )
    leaves = []
    for i in range(_N_LEAVES):
        keys = KeyPair.generate(f"availability/{seed}/leaf{i}")
        leaf = ca.issue_leaf(
            common_name=f"site{i}.availability.example",
            public_key=keys.public_key,
            not_before=_NOT_BEFORE,
            not_after=_NOT_AFTER,
        )
        leaves.append(leaf)
        if i < _N_REVOKED:
            ca.revoke(leaf.serial_number, _NOW - datetime.timedelta(days=30))
    return ca, leaves


def _wire_network(ca: CertificateAuthority, plan: FaultPlan | None) -> Network:
    network = Network(faults=plan, timeout=datetime.timedelta(seconds=5))
    publisher = ca.crl_publisher
    for url in publisher.urls:
        network.register(
            url,
            CrlEndpoint(
                lambda at, publisher=publisher, url=url: publisher.encode(
                    url, at
                ).to_der()
            ),
        )
    network.register(ca.ocsp_url, OcspEndpoint(ca.ocsp_responder.respond))
    return network


def _sweep_plan(probability: float, seed: int) -> FaultPlan | None:
    """Timeout-dominated flakiness with a sprinkle of 404s and slowness,
    matching the §6.1 mode mix but probabilistic."""
    if probability <= 0.0:
        return None
    plan = FaultPlan(seed=seed)
    plan.add(
        "*", FaultSpec(FaultKind.FLAKY, probability=probability * 0.7)
    )
    plan.add(
        "*",
        FaultSpec(
            FaultKind.FLAKY,
            probability=probability * 0.3,
            mode=FailureMode.HTTP_404,
        ),
    )
    plan.add(
        "*",
        FaultSpec(
            FaultKind.SLOW,
            probability=probability,
            extra_latency=datetime.timedelta(milliseconds=500),
        ),
    )
    return plan


def _run_leg(
    label: str,
    ca: CertificateAuthority,
    leaves,
    plan: FaultPlan | None,
    policy: RetryPolicy,
    fetcher_seed: int,
    chain,
    obs: Observability = NULL_OBS,
) -> dict:
    network = _wire_network(ca, plan)
    clock = SimClock(_NOW)
    definitive = 0
    exposed_revoked = 0
    recoverable = 0
    latency = datetime.timedelta(0)
    attempts = 0
    leg_stats = FetchStats()
    failure_categories: dict[str, int] = {}
    for i, leaf in enumerate(leaves):
        # Each connection is an independent client (fresh caches and
        # breaker state), as in a population of browsers: a warm shared
        # CRL cache would otherwise mask every later fault.
        fetcher = NetworkFetcher(
            network,
            clock_now=lambda: clock.now,
            cache=ClientCache(),
            retry_policy=policy,
            seed=fetcher_seed * 1_000 + i,
            obs=obs,
        )
        checker = RevocationChecker(fetcher)
        at = clock.advance(_STEP)
        # Walk the registry's active fallback chain (OCSP first, then
        # the CRL, as CRL-capable clients do, §6.1): each non-definitive
        # answer is paid for, then the next mechanism gets a try.
        result = None
        for mechanism in chain:
            check = mechanism.active_check(
                checker, leaf, at, issuer_key_hash=ca.issuer_key_hash
            )
            if check is None:
                continue
            if result is not None:
                latency += result.latency
                attempts += result.attempts
            result = check
            if check.is_definitive:
                break
        assert result is not None, "fallback chain produced no check"
        latency += result.latency
        attempts += result.attempts
        if result.is_definitive:
            definitive += 1
        else:
            category = result.failure_category
            failure_categories[category] = failure_categories.get(category, 0) + 1
            if _RETRYABLE[result.failure]:
                recoverable += 1
            if i < _N_REVOKED:
                exposed_revoked += 1
        leg_stats.merge(fetcher.stats)
    if obs.enabled:
        # One gauge family per leg: gauges are last-write, so the label
        # keeps the eight sweep cells (and the profile row) apart.
        leg_stats.publish(obs.metrics, leg=label)
    n = len(leaves)
    return {
        "label": label,
        "success_rate": definitive / n,
        "mean_latency_ms": (latency / n) / datetime.timedelta(milliseconds=1),
        "soft_fail_exposure": exposed_revoked / _N_REVOKED,
        "mean_attempts": attempts / n,
        "stats": leg_stats.as_dict(),
        "faulted_requests": network.faulted_requests,
        # Breakdown of non-definitive checks by the blamed layer
        # (checker.FAILURE_CATEGORY) and how many of them were transient
        # enough that more retrying could have recovered them.
        "failure_categories": dict(sorted(failure_categories.items())),
        "recoverable_failures": recoverable,
    }


def run(study: MeasurementStudy) -> ExperimentResult:
    seed = study.fault_seed
    ca, leaves = _build_pki(seed)
    policies = {
        "no-retry": RetryPolicy.no_retry(),
        "retry": RetryPolicy.aggressive(),
    }
    # The connection-time fetch chain comes from the mechanism registry
    # (docs/MECHANISMS.md), not a hard-coded protocol list: mechanisms
    # that opt into active fallback are tried in priority order.
    chain = sorted(
        (
            mechanism
            for mechanism in study.mechanism_suite
            if mechanism.fallback_priority is not None
        ),
        key=lambda mechanism: mechanism.fallback_priority,
    )

    cells: dict[tuple[float, str], dict] = {}
    for probability in PROBABILITIES:
        for name, policy in policies.items():
            plan = _sweep_plan(probability, seed)
            label = f"p={probability:.1f}/{name}"
            with stage(study, "leg", leg=label):
                cells[(probability, name)] = _run_leg(
                    label,
                    ca,
                    leaves,
                    plan,
                    policy,
                    fetcher_seed=seed,
                    chain=chain,
                    obs=study.obs,
                )

    profile_row = None
    if study.fault_profile != "none":
        label = f"profile={study.fault_profile}"
        with stage(study, "leg", leg=label):
            profile_row = _run_leg(
                label,
                ca,
                leaves,
                plan_from_profile(study.fault_profile, seed=seed),
                policies["retry"],
                fetcher_seed=seed,
                chain=chain,
                obs=study.obs,
            )

    rows = []
    for (probability, name), leg in cells.items():
        rows.append(
            (
                f"{probability:.1f}",
                name,
                f"{leg['success_rate']:.2f}",
                f"{leg['mean_latency_ms']:,.0f}",
                f"{leg['soft_fail_exposure']:.2f}",
                f"{leg['mean_attempts']:.1f}",
            )
        )
    if profile_row is not None:
        rows.append(
            (
                profile_row["label"],
                "retry",
                f"{profile_row['success_rate']:.2f}",
                f"{profile_row['mean_latency_ms']:,.0f}",
                f"{profile_row['soft_fail_exposure']:.2f}",
                f"{profile_row['mean_attempts']:.1f}",
            )
        )
    rendered = format_table(
        [
            "fault p",
            "policy",
            "success",
            "latency (ms)",
            "exposure",
            "attempts",
        ],
        rows,
        title=(
            f"Revocation-check availability, {_N_LEAVES} connections "
            f"({_N_REVOKED} revoked), fault seed {seed}"
        ),
    )
    rendered += (
        "\n\nsuccess = definitive good/revoked answer (OCSP, then CRL "
        "fallback);\nexposure = revoked certificates a soft-fail client "
        "would accept;\nlatency includes timeout budgets and retry backoff "
        "(docs/ROBUSTNESS.md)."
    )

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "cells": {
                f"{probability:.1f}/{name}": leg
                for (probability, name), leg in cells.items()
            },
            "profile": profile_row,
            "fault_seed": seed,
            "fault_profile": study.fault_profile,
        },
    )

    clean = cells[(0.0, "retry")]
    worst_nr = cells[(0.5, "no-retry")]
    mid_nr = cells[(0.3, "no-retry")]
    mid_r = cells[(0.3, "retry")]
    result.compare(
        "success rate with healthy endpoints",
        "1.00 (every check definitive)",
        f"{clean['success_rate']:.2f}",
        shape_holds=clean["success_rate"] >= 1.0,
    )
    result.compare(
        "availability degrades with fault probability",
        "monotone decrease (Korzhitskii & Carlsson)",
        f"{worst_nr['success_rate']:.2f} @ p=0.5 vs "
        f"{clean['success_rate']:.2f} @ p=0",
        shape_holds=worst_nr["success_rate"] < clean["success_rate"],
    )
    result.compare(
        "retries recover transient failures",
        "retry >= no-retry at p=0.3",
        f"{mid_r['success_rate']:.2f} vs {mid_nr['success_rate']:.2f}",
        shape_holds=mid_r["success_rate"] >= mid_nr["success_rate"],
    )
    result.compare(
        "failed fetches cost latency",
        "faulted runs slower than clean (timeouts are not free)",
        f"{mid_nr['mean_latency_ms']:,.0f} ms vs "
        f"{clean['mean_latency_ms']:,.0f} ms",
        shape_holds=mid_nr["mean_latency_ms"] > clean["mean_latency_ms"],
    )
    result.compare(
        "soft-fail exposure not worsened by retries",
        "retry exposure <= no-retry exposure at p=0.5",
        f"{cells[(0.5, 'retry')]['soft_fail_exposure']:.2f} vs "
        f"{worst_nr['soft_fail_exposure']:.2f}",
        shape_holds=(
            cells[(0.5, "retry")]["soft_fail_exposure"]
            <= worst_nr["soft_fail_exposure"]
        ),
    )
    return result
