"""Figure 11: Bloom-filter capacity vs false-positive rate vs CRLSets."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.crlset.bloom import (
    BloomFilter,
    capacity_at_fp_rate,
    false_positive_rate,
)
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig11"
TITLE = "Bloom filters as a CRLSet replacement (Figure 11, §7.4)"

_SIZES = {
    "256KB": 256 * 1024 * 8,
    "512KB": 512 * 1024 * 8,
    "1MB": 1024 * 1024 * 8,
    "2MB": 2 * 1024 * 1024 * 8,
    "16MB": 16 * 1024 * 1024 * 8,
}
_POPULATIONS = (10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000)


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "crlset_dynamics"):
        dynamics = study.crlset_dynamics()
    total_revocations = study.ecosystem.total_crl_entries(
        study.calibration.measurement_end
    )
    paper_total = study.targets.total_crl_entries

    rows = []
    curves: dict[str, list[tuple[int, float]]] = {}
    for label, m_bits in _SIZES.items():
        curve = []
        for n in _POPULATIONS:
            p = false_positive_rate(m_bits, n)
            curve.append((n, p))
        curves[label] = curve
        rows.append(
            [label]
            + [f"{p:.2e}" if p < 0.01 else f"{p:.3f}" for _, p in curve]
        )
    rendered = format_table(
        ["m \\ n"] + [f"{n:,}" for n in _POPULATIONS],
        rows,
        title="analytic false-positive rate at optimal k",
    )

    # The paper's headline points.
    cap_256k_1pct = capacity_at_fp_rate(_SIZES["256KB"], 0.01)
    cap_2m_1pct = capacity_at_fp_rate(_SIZES["2MB"], 0.01)
    crlset_band = (dynamics.min_entries, dynamics.max_entries)
    rendered += (
        f"\n\n256 KB filter at 1% FP holds {cap_256k_1pct:,} revocations "
        f"(CRLSet band in this run: {crlset_band[0]:,}-{crlset_band[1]:,})\n"
        f"2 MB filter at 1% FP holds {cap_2m_1pct:,} revocations "
        f"({cap_2m_1pct / paper_total:.0%} of the paper's 11.46M corpus)"
    )

    # Empirical validation of the analytic curve with a real filter.
    n_check = 20_000
    bloom = BloomFilter.for_items(n_check, _SIZES["256KB"])
    bloom.update(f"revoked-{i}".encode() for i in range(n_check))
    measured_fp = bloom.measured_fp_rate(
        f"fresh-{i}".encode() for i in range(30_000)
    )
    analytic_fp = false_positive_rate(_SIZES["256KB"], n_check)
    rendered += (
        f"\n\nempirical check: 256 KB filter with n={n_check:,}: "
        f"measured FP {measured_fp:.4f} vs analytic {analytic_fp:.4f}"
    )

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "curves": curves,
            "capacity_256k_1pct": cap_256k_1pct,
            "capacity_2m_1pct": cap_2m_1pct,
            "measured_fp": measured_fp,
            "analytic_fp": analytic_fp,
            "total_revocations_scaled": total_revocations,
        },
    )
    result.compare(
        "256 KB Bloom holds 10x more than CRLSet at 1% FP",
        ">10x CRLSet's ~25k",
        f"{cap_256k_1pct:,} vs CRLSet max {crlset_band[1]:,}",
        shape_holds=cap_256k_1pct > 8 * crlset_band[1],
    )
    result.compare(
        "2 MB covers ~15% of all revocations (1.7M)",
        "1.7M revocations",
        f"{cap_2m_1pct:,}",
        shape_holds=1_200_000 <= cap_2m_1pct <= 2_500_000,
    )
    result.compare(
        "analytic FP matches a real filter",
        "match",
        f"{measured_fp:.4f} vs {analytic_fp:.4f}",
        shape_holds=abs(measured_fp - analytic_fp) < max(0.01, analytic_fp),
    )
    return result
