"""Figure 7 + §7.2: CRLSet coverage of covered CRLs and of all revocations."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table, render_cdf
from repro.core.stats import Cdf
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig7"
TITLE = "CRLSet coverage (Figure 7, §7.2)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "crlset_coverage"):
        report = study.crlset_coverage()
    targets = study.targets

    cdf_all = Cdf.from_values(report.per_crl_coverage_all)
    cdf_eligible = Cdf.from_values(report.per_crl_coverage_eligible)
    rendered = (
        render_cdf(cdf_all, title="per-covered-CRL coverage, ALL entries",
                   value_format="{:.2f}")
        + "\n\n"
        + render_cdf(cdf_eligible,
                     title="per-covered-CRL coverage, CRLSet-reason-coded entries",
                     value_format="{:.2f}")
        + "\n\n"
        + format_table(
            ["metric", "paper", "measured"],
            [
                ("revocations in CRLSet",
                 f"{targets.crlset_coverage_fraction:.2%}",
                 f"{report.coverage_fraction:.2%}"),
                ("covered CRLs",
                 f"{targets.crlset_covered_crls}/{targets.unique_crls}",
                 f"{report.covered_crl_count}/{report.total_crl_count}"),
                ("CRLSet parents / CA certs",
                 f"{targets.crlset_parents}/2,168 (3.9%)",
                 f"{report.parents_in_crlset}/{report.total_ca_certs} "
                 f"({report.parent_coverage_fraction:.1%})"),
                ("covered CRLs fully covered (eligible)",
                 f"{targets.covered_crls_fully_covered_fraction:.1%}",
                 f"{report.fully_covered_fraction:.1%}"),
                ("Alexa-1M revocations in CRLSet",
                 f"{targets.alexa_1m_in_crlset}/{targets.alexa_1m_revocations} (3.9%)",
                 f"{report.alexa_1m_in_crlset}/{report.alexa_1m_revocations} "
                 f"({report.alexa_1m_fraction:.1%})"),
            ],
        )
    )

    result = ExperimentResult(
        EXPERIMENT_ID, TITLE, rendered, data={"report": report}
    )
    result.compare(
        "CRLSet covers a tiny fraction of revocations",
        f"{targets.crlset_coverage_fraction:.2%}",
        f"{report.coverage_fraction:.2%}",
        shape_holds=report.coverage_fraction < 0.02,
    )
    result.compare(
        "only a small share of CRLs covered", "10.5%",
        f"{report.covered_crl_count / report.total_crl_count:.1%}",
        shape_holds=report.covered_crl_count / report.total_crl_count < 0.45,
    )
    result.compare(
        "most covered CRLs fully covered (reason-coded)",
        f"{targets.covered_crls_fully_covered_fraction:.0%}",
        f"{report.fully_covered_fraction:.0%}",
        shape_holds=report.fully_covered_fraction >= 0.5,
    )
    result.compare(
        "'all entries' line lower than reason-coded line",
        "gap visible",
        f"median {cdf_all.median:.2f} vs {cdf_eligible.median:.2f}",
        shape_holds=cdf_all.median <= cdf_eligible.median,
    )
    result.compare(
        "popular-site revocations mostly uncovered", "3.9% of Alexa-1M",
        f"{report.alexa_1m_fraction:.1%}",
        shape_holds=report.alexa_1m_fraction < 0.25,
    )
    return result
