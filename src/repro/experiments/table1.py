"""Table 1: per-CA CRL statistics for the largest CAs."""

from __future__ import annotations

from repro.ca.profiles import PAPER_CA_PROFILES
from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "table1"
TITLE = "Per-CA CRL statistics (Table 1)"

#: the nine CAs the paper's Table 1 lists, in its order.
TABLE1_BRANDS = (
    "GoDaddy",
    "RapidSSL",
    "Comodo",
    "PositiveSSL",
    "GeoTrust",
    "Verisign",
    "Thawte",
    "GlobalSign",
    "StartCom",
)


def run(study: MeasurementStudy) -> ExperimentResult:
    at = study.calibration.measurement_end
    eco = study.ecosystem
    with stage(study, "crl_sizes"):
        sizes = study.crl_sizes(at)
    profiles = {p.name: p for p in PAPER_CA_PROFILES}

    rows = []
    data = {}
    for brand in TABLE1_BRANDS:
        leaves = [leaf for leaf in eco.leaves if leaf.brand == brand]
        revoked = sum(1 for leaf in leaves if leaf.is_revoked)
        brand_crls = [crl for crl in eco.crls if crl.brand == brand]
        # Average CRL size per certificate (each cert weighted by the
        # size of the CRL it points at), as in the paper.
        weighted_total = sum(
            sizes[crl.url] * crl.assigned_cert_count for crl in brand_crls
        )
        assigned = sum(crl.assigned_cert_count for crl in brand_crls)
        avg_kb = (weighted_total / assigned / 1024) if assigned else 0.0
        paper = profiles[brand]
        rows.append(
            (
                brand,
                len(brand_crls),
                f"{len(leaves):,}",
                f"{revoked:,}",
                f"{avg_kb:,.1f}",
                f"{paper.avg_crl_kb:,.1f}",
            )
        )
        data[brand] = {
            "crls": len(brand_crls),
            "total": len(leaves),
            "revoked": revoked,
            "avg_crl_kb": avg_kb,
            "paper_avg_crl_kb": paper.avg_crl_kb,
        }

    rendered = format_table(
        ["CA", "CRLs", "certs", "revoked", "avg CRL KB", "paper avg KB"],
        rows,
    )
    result = ExperimentResult(EXPERIMENT_ID, TITLE, rendered, data=data)

    # Shape checks: ordering phenomena the paper highlights.
    godaddy = data["GoDaddy"]
    rapidssl = data["RapidSSL"]
    globalsign = data["GlobalSign"]
    geotrust = data["GeoTrust"]
    result.compare(
        "GoDaddy shards the most CRLs", "322 CRLs",
        f"{godaddy['crls']} (scaled)",
        shape_holds=godaddy["crls"] == max(d["crls"] for d in data.values()),
    )
    result.compare(
        "GoDaddy avg CRL still >1 MB despite sharding", "1,184 KB",
        f"{godaddy['avg_crl_kb']:,.0f} KB",
        shape_holds=godaddy["avg_crl_kb"] > 400,
    )
    result.compare(
        "GlobalSign heaviest per-cert CRL", "2,050 KB",
        f"{globalsign['avg_crl_kb']:,.0f} KB",
        shape_holds=globalsign["avg_crl_kb"]
        == max(d["avg_crl_kb"] for d in data.values()),
    )
    result.compare(
        "GeoTrust lightest per-cert CRL", "12.9 KB",
        f"{geotrust['avg_crl_kb']:.1f} KB",
        shape_holds=geotrust["avg_crl_kb"]
        == min(d["avg_crl_kb"] for d in data.values()),
    )
    result.compare(
        "RapidSSL: many certs, few revocations", "626,774 / 2,153",
        f"{rapidssl['total']} / {rapidssl['revoked']}",
        shape_holds=rapidssl["revoked"] / max(1, rapidssl["total"]) < 0.02,
    )
    for brand in TABLE1_BRANDS:
        ratio = data[brand]["avg_crl_kb"] / profiles[brand].avg_crl_kb
        result.compare(
            f"{brand} avg CRL size vs paper",
            f"{profiles[brand].avg_crl_kb:,.1f} KB",
            f"{data[brand]['avg_crl_kb']:,.1f} KB",
            shape_holds=0.4 <= ratio <= 2.5,
        )
    return result
