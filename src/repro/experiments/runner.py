"""Run every experiment and render the paper-vs-measured report.

``run_all(parallel=N)`` fans the experiments out across a process pool.
Each worker builds its own :class:`MeasurementStudy` from the same
calibration (the substrate is deterministic for a fixed calibration, and
the one stateful RNG -- the stapling scanner's -- is seeded per study and
consumed by a single experiment), so the results are identical to the
sequential path regardless of worker count; a test enforces this.

Experiments are error-isolated: a crash in one figure is captured into a
structured failure record (:func:`repro.experiments.common.failure_result`)
and the remaining experiments still run.  Pass ``isolate_errors=False``
to re-raise instead (useful under a debugger).

``supervise=True`` additionally runs the fan-out under the
:class:`repro.exec.supervisor.Supervisor` (crash recovery, deadlines,
retries, degradation) and checkpoints every completed experiment leg to
a journal, so an interrupted run resumes (``resume=True``) instead of
restarting -- and, because each leg is deterministic for its
calibration, produces the identical report (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.core.pipeline import MeasurementStudy
from repro.experiments import (
    availability,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    mechanisms,
    section3,
    section42,
    serving,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult, failure_result
from repro.obs import NULL_OBS, Observability
from repro.scan.calibration import Calibration

__all__ = ["ALL_EXPERIMENTS", "run_all", "run_experiment", "run_supervised"]

ALL_EXPERIMENTS = {
    module.EXPERIMENT_ID: module
    for module in (
        section3,
        section42,
        fig2,
        fig3,
        fig4,
        fig5,
        fig6,
        table1,
        table2,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        availability,
        mechanisms,
        serving,
    )
}


def run_experiment(
    experiment_id: str, study: MeasurementStudy | None = None
) -> ExperimentResult:
    try:
        module = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    study = study or MeasurementStudy()
    return _run_raw(experiment_id, study)


def _run_raw(experiment_id: str, study: MeasurementStudy) -> ExperimentResult:
    """Run one experiment under an ``experiment`` span; errors propagate."""
    module = ALL_EXPERIMENTS[experiment_id]
    with study.obs.tracer.span("experiment", experiment=experiment_id) as span:
        result = module.run(study)
        span.set("outcome", "ok")
        return result


def _run_isolated(experiment_id: str, study: MeasurementStudy) -> ExperimentResult:
    module = ALL_EXPERIMENTS[experiment_id]
    obs = study.obs
    mark = obs.tracer.mark() if obs.enabled else 0
    with obs.tracer.span("experiment", experiment=experiment_id) as span:
        try:
            result = module.run(study)
        except Exception as exc:
            span.set("outcome", "error")
            # The experiment span is still open here, so the partial
            # trace shows exactly which spans the crash interrupted.
            partial = obs.tracer.records_since(mark) if obs.enabled else None
            return failure_result(
                experiment_id, module.TITLE, exc, partial_trace=partial
            )
        span.set("outcome", "ok")
        return result


# Per-worker study, built once by the pool initializer.  Each worker pays
# for the substrate once and then serves any number of experiments.
_WORKER_STUDY: MeasurementStudy | None = None


def _init_worker(
    calibration: Calibration,
    cache_dir: str | None,
    fault_profile: str,
    fault_seed: int | None,
    obs_enabled: bool,
) -> None:  # pragma: no cover - runs in worker processes
    global _WORKER_STUDY
    _WORKER_STUDY = MeasurementStudy(
        calibration=calibration,
        cache_dir=cache_dir,
        fault_profile=fault_profile,
        fault_seed=fault_seed,
        obs=Observability(enabled=True) if obs_enabled else NULL_OBS,
    )


def _run_in_worker(
    experiment_id: str,
):  # pragma: no cover - runs in worker processes
    """Run one experiment; ship its trace segment back with the result.

    The worker's tracer and metrics registry accumulate across every
    experiment it serves, so each call exports only the records since its
    own mark (the segment) plus the registry's *cumulative* state tagged
    with its mutation count -- the parent keeps the highest-count export
    per worker, which is that worker's complete contribution.
    """
    assert _WORKER_STUDY is not None, "pool initializer did not run"
    obs = _WORKER_STUDY.obs
    if not obs.enabled:
        return _run_isolated(experiment_id, _WORKER_STUDY), None, None, 0, 0
    mark = obs.tracer.mark()
    result = _run_isolated(experiment_id, _WORKER_STUDY)
    segment = obs.tracer.export_segment(mark)
    return result, segment, obs.metrics.export(), obs.metrics.op_count, os.getpid()


def _merge_worker_traces(
    obs: Observability, outputs: list[tuple]
) -> None:
    """Fold worker trace segments and metrics into the parent study's obs.

    Worker pids are normalised to ``w0``, ``w1``, ... in first-seen
    declaration order, and segments are imported in declaration order, so
    the merged trace depends on the scheduler only through which pid ran
    which experiment -- not through timing (docs/OBSERVABILITY.md).
    """
    workers: dict[int, str] = {}
    best_metrics: dict[int, tuple[int, list[dict]]] = {}
    for _, segment, metrics_export, op_count, token in outputs:
        label = workers.setdefault(token, f"w{len(workers)}")
        if segment:
            obs.tracer.import_segment(segment, worker=label)
        if metrics_export:
            seen = best_metrics.get(token)
            if seen is None or op_count > seen[0]:
                best_metrics[token] = (op_count, metrics_export)
    for token in sorted(best_metrics, key=lambda pid: workers[pid]):
        obs.metrics.merge(best_metrics[token][1])


def _prewarm_store(study: MeasurementStudy) -> str | None:
    """Warm the corpus store before spawning workers (or None without a
    cache_dir).

    The parent pays for (possibly sharded) generation once and each
    worker then loads the corpus out-of-core instead of rebuilding it.
    When the store is already warm the parent deliberately does NOT
    materialise the ecosystem: workers read the file themselves, and a
    small parent heap keeps forking the pool cheap.
    """
    if study.cache_dir is None:
        return None
    from repro.scan.datastore import ArtifactCache

    cache = ArtifactCache(study.cache_dir, obs=study.obs)
    if not cache.has_ecosystem(study.calibration):
        study.ecosystem
    return str(study.cache_dir)


def _run_key(study: MeasurementStudy) -> str:
    """Checkpoint identity for a run's results.

    Covers everything the *results* depend on: the full calibration and
    the network-fault settings.  Exec-fault settings are deliberately
    excluded -- they shape how the run executes, never what it computes
    -- so a run interrupted under an exec fault profile can resume under
    a different one (or none).
    """
    from repro.scan.datastore import calibration_digest

    return (
        f"{calibration_digest(study.calibration)}"
        f"/net={study.fault_profile}/{study.fault_seed}"
    )


def run_supervised(
    study: MeasurementStudy | None = None,
    parallel: int | None = None,
    *,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    config=None,
) -> list[ExperimentResult]:
    """``run_all`` under the supervisor, with checkpoint/resume.

    Every completed experiment leg is journaled (atomic JSONL keyed on
    the calibration + network-fault digest); ``resume=True`` replays
    validated checkpoints and runs only the missing legs.  The study's
    ``exec_fault_profile``/``exec_fault_seed`` select the injected
    process faults; an injected ABORT raises
    :class:`repro.exec.supervisor.RunInterrupted` after journaling.
    """
    from repro.exec.checkpoint import (
        CheckpointJournal,
        pickle_payload,
        unpickle_payload,
    )
    from repro.exec.faults import plan_from_exec_profile
    from repro.exec.supervisor import (
        RunInterrupted,
        Supervisor,
        SupervisorConfig,
    )

    study = study or MeasurementStudy()
    order = list(ALL_EXPERIMENTS)
    run_key = _run_key(study)
    directory = Path(checkpoint_dir or ".repro-checkpoints")
    journal_name = hashlib.sha256(run_key.encode()).hexdigest()[:12]
    journal = CheckpointJournal(directory / f"run-{journal_name}.jsonl", run_key)
    if not resume:
        journal.start_fresh()

    obs = study.obs
    checkpointed: dict[str, ExperimentResult] = {}
    remaining: list[tuple[str, str]] = []
    for eid in order:
        payload = journal.get(eid) if resume else None
        result = None
        if payload is not None:
            try:
                result = unpickle_payload(payload)
            except Exception:
                result = None  # torn/foreign payload: a miss
            if not isinstance(result, ExperimentResult) or (
                result.experiment_id != eid
            ):
                result = None
        if result is not None:
            checkpointed[eid] = result
            if obs.enabled:
                obs.metrics.counter("exec.checkpoint.hits").inc()
        else:
            remaining.append((eid, eid))
            if obs.enabled and resume:
                obs.metrics.counter("exec.checkpoint.misses").inc()

    faults = plan_from_exec_profile(
        study.exec_fault_profile, study.exec_fault_seed
    )

    def on_complete(eid: str, output: tuple) -> None:
        journal.record(eid, pickle_payload(output[0]))

    def local_fn(eid: str) -> tuple:
        # Degradation/serial path: run in the parent against the parent
        # study (deterministic, so identical to a worker's answer).
        return _run_isolated(eid, study), None, None, 0, 0

    workers = (
        1
        if parallel is None or parallel <= 1
        else min(parallel, len(order), os.cpu_count() or 1)
    )
    cache_dir = _prewarm_store(study) if workers > 1 else None
    supervisor = Supervisor(
        config or SupervisorConfig(workers=workers),
        obs=obs,
        faults=faults,
    )
    try:
        outcome = supervisor.run(
            remaining,
            _run_in_worker,
            initializer=_init_worker,
            initargs=(
                study.calibration,
                cache_dir,
                study.fault_profile,
                study.fault_seed,
                obs.enabled,
            ),
            local_fn=local_fn,
            on_complete=on_complete,
            completed_before=len(checkpointed),
            allow_abort=not (resume or journal.aborted),
        )
    except RunInterrupted:
        journal.mark_aborted()
        raise

    if obs.enabled:
        live = [outcome.results[eid] for eid in order if eid in outcome.results]
        _merge_worker_traces(obs, live)
    return [
        checkpointed[eid] if eid in checkpointed else outcome.results[eid][0]
        for eid in order
    ]


def run_all(
    study: MeasurementStudy | None = None,
    parallel: int | None = None,
    isolate_errors: bool = True,
) -> list[ExperimentResult]:
    """Run every experiment, in declaration order.

    ``parallel=N`` (N >= 2) uses a process pool of N workers.  When the
    study has a ``cache_dir`` the workers share its artifact cache, so
    the ecosystem is generated at most once across the pool.  For crash
    recovery and checkpoint/resume, see :func:`run_supervised`.
    """
    from repro.exec.pool import pool_map

    study = study or MeasurementStudy()
    order = list(ALL_EXPERIMENTS)
    if parallel is None or parallel <= 1:
        if isolate_errors:
            return [_run_isolated(eid, study) for eid in order]
        return [_run_raw(eid, study) for eid in order]

    workers = min(parallel, len(order), os.cpu_count() or 1)
    cache_dir = _prewarm_store(study)
    # pool_map preserves submission order, so results come back in the
    # same order the sequential path produces them.
    outputs = pool_map(
        _run_in_worker,
        order,
        workers=workers,
        initializer=_init_worker,
        initargs=(
            study.calibration,
            cache_dir,
            study.fault_profile,
            study.fault_seed,
            study.obs.enabled,
        ),
    )
    results = [output[0] for output in outputs]
    if study.obs.enabled:
        _merge_worker_traces(study.obs, outputs)
    return results


def main() -> None:  # pragma: no cover - CLI convenience
    study = MeasurementStudy()
    for result in run_all(study):
        print(result.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
