"""Run every experiment and render the paper-vs-measured report.

``run_all(parallel=N)`` fans the experiments out across a process pool.
Each worker builds its own :class:`MeasurementStudy` from the same
calibration (the substrate is deterministic for a fixed calibration, and
the one stateful RNG -- the stapling scanner's -- is seeded per study and
consumed by a single experiment), so the results are identical to the
sequential path regardless of worker count; a test enforces this.

Experiments are error-isolated: a crash in one figure is captured into a
structured failure record (:func:`repro.experiments.common.failure_result`)
and the remaining experiments still run.  Pass ``isolate_errors=False``
to re-raise instead (useful under a debugger).
"""

from __future__ import annotations

import concurrent.futures
import os

from repro.core.pipeline import MeasurementStudy
from repro.experiments import (
    availability,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    section3,
    section42,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult, failure_result
from repro.scan.calibration import Calibration

__all__ = ["ALL_EXPERIMENTS", "run_all", "run_experiment"]

ALL_EXPERIMENTS = {
    module.EXPERIMENT_ID: module
    for module in (
        section3,
        section42,
        fig2,
        fig3,
        fig4,
        fig5,
        fig6,
        table1,
        table2,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        availability,
    )
}


def run_experiment(
    experiment_id: str, study: MeasurementStudy | None = None
) -> ExperimentResult:
    try:
        module = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    study = study or MeasurementStudy()
    return module.run(study)


def _run_isolated(experiment_id: str, study: MeasurementStudy) -> ExperimentResult:
    module = ALL_EXPERIMENTS[experiment_id]
    try:
        return module.run(study)
    except Exception as exc:
        return failure_result(experiment_id, module.TITLE, exc)


# Per-worker study, built once by the pool initializer.  Each worker pays
# for the substrate once and then serves any number of experiments.
_WORKER_STUDY: MeasurementStudy | None = None


def _init_worker(
    calibration: Calibration,
    cache_dir: str | None,
    fault_profile: str,
    fault_seed: int | None,
) -> None:  # pragma: no cover - runs in worker processes
    global _WORKER_STUDY
    _WORKER_STUDY = MeasurementStudy(
        calibration=calibration,
        cache_dir=cache_dir,
        fault_profile=fault_profile,
        fault_seed=fault_seed,
    )


def _run_in_worker(
    experiment_id: str,
) -> ExperimentResult:  # pragma: no cover - runs in worker processes
    assert _WORKER_STUDY is not None, "pool initializer did not run"
    return _run_isolated(experiment_id, _WORKER_STUDY)


def run_all(
    study: MeasurementStudy | None = None,
    parallel: int | None = None,
    isolate_errors: bool = True,
) -> list[ExperimentResult]:
    """Run every experiment, in declaration order.

    ``parallel=N`` (N >= 2) uses a process pool of N workers.  When the
    study has a ``cache_dir`` the workers share its artifact cache, so
    the ecosystem is generated at most once across the pool.
    """
    study = study or MeasurementStudy()
    order = list(ALL_EXPERIMENTS)
    if parallel is None or parallel <= 1:
        if isolate_errors:
            return [_run_isolated(eid, study) for eid in order]
        return [ALL_EXPERIMENTS[eid].run(study) for eid in order]

    workers = min(parallel, len(order), os.cpu_count() or 1)
    cache_dir = str(study.cache_dir) if study.cache_dir is not None else None
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            study.calibration,
            cache_dir,
            study.fault_profile,
            study.fault_seed,
        ),
    ) as pool:
        # map() preserves submission order, so results come back in the
        # same order the sequential path produces them.
        return list(pool.map(_run_in_worker, order))


def main() -> None:  # pragma: no cover - CLI convenience
    study = MeasurementStudy()
    for result in run_all(study):
        print(result.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
