"""Run every experiment and render the paper-vs-measured report."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    section3,
    section42,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult

__all__ = ["ALL_EXPERIMENTS", "run_all", "run_experiment"]

ALL_EXPERIMENTS = {
    module.EXPERIMENT_ID: module
    for module in (
        section3,
        section42,
        fig2,
        fig3,
        fig4,
        fig5,
        fig6,
        table1,
        table2,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
    )
}


def run_experiment(
    experiment_id: str, study: MeasurementStudy | None = None
) -> ExperimentResult:
    try:
        module = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    study = study or MeasurementStudy()
    return module.run(study)


def run_all(study: MeasurementStudy | None = None) -> list[ExperimentResult]:
    study = study or MeasurementStudy()
    return [module.run(study) for module in ALL_EXPERIMENTS.values()]


def main() -> None:  # pragma: no cover - CLI convenience
    study = MeasurementStudy()
    for result in run_all(study):
        print(result.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
