"""Run every experiment and render the paper-vs-measured report.

``run_all(parallel=N)`` fans the experiments out across a process pool.
Each worker builds its own :class:`MeasurementStudy` from the same
calibration (the substrate is deterministic for a fixed calibration, and
the one stateful RNG -- the stapling scanner's -- is seeded per study and
consumed by a single experiment), so the results are identical to the
sequential path regardless of worker count; a test enforces this.

Experiments are error-isolated: a crash in one figure is captured into a
structured failure record (:func:`repro.experiments.common.failure_result`)
and the remaining experiments still run.  Pass ``isolate_errors=False``
to re-raise instead (useful under a debugger).
"""

from __future__ import annotations

import concurrent.futures
import os

from repro.core.pipeline import MeasurementStudy
from repro.experiments import (
    availability,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    section3,
    section42,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult, failure_result
from repro.obs import NULL_OBS, Observability
from repro.scan.calibration import Calibration

__all__ = ["ALL_EXPERIMENTS", "run_all", "run_experiment"]

ALL_EXPERIMENTS = {
    module.EXPERIMENT_ID: module
    for module in (
        section3,
        section42,
        fig2,
        fig3,
        fig4,
        fig5,
        fig6,
        table1,
        table2,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        availability,
    )
}


def run_experiment(
    experiment_id: str, study: MeasurementStudy | None = None
) -> ExperimentResult:
    try:
        module = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    study = study or MeasurementStudy()
    return _run_raw(experiment_id, study)


def _run_raw(experiment_id: str, study: MeasurementStudy) -> ExperimentResult:
    """Run one experiment under an ``experiment`` span; errors propagate."""
    module = ALL_EXPERIMENTS[experiment_id]
    with study.obs.tracer.span("experiment", experiment=experiment_id) as span:
        result = module.run(study)
        span.set("outcome", "ok")
        return result


def _run_isolated(experiment_id: str, study: MeasurementStudy) -> ExperimentResult:
    module = ALL_EXPERIMENTS[experiment_id]
    obs = study.obs
    mark = obs.tracer.mark() if obs.enabled else 0
    with obs.tracer.span("experiment", experiment=experiment_id) as span:
        try:
            result = module.run(study)
        except Exception as exc:
            span.set("outcome", "error")
            # The experiment span is still open here, so the partial
            # trace shows exactly which spans the crash interrupted.
            partial = obs.tracer.records_since(mark) if obs.enabled else None
            return failure_result(
                experiment_id, module.TITLE, exc, partial_trace=partial
            )
        span.set("outcome", "ok")
        return result


# Per-worker study, built once by the pool initializer.  Each worker pays
# for the substrate once and then serves any number of experiments.
_WORKER_STUDY: MeasurementStudy | None = None


def _init_worker(
    calibration: Calibration,
    cache_dir: str | None,
    fault_profile: str,
    fault_seed: int | None,
    obs_enabled: bool,
) -> None:  # pragma: no cover - runs in worker processes
    global _WORKER_STUDY
    _WORKER_STUDY = MeasurementStudy(
        calibration=calibration,
        cache_dir=cache_dir,
        fault_profile=fault_profile,
        fault_seed=fault_seed,
        obs=Observability(enabled=True) if obs_enabled else NULL_OBS,
    )


def _run_in_worker(
    experiment_id: str,
):  # pragma: no cover - runs in worker processes
    """Run one experiment; ship its trace segment back with the result.

    The worker's tracer and metrics registry accumulate across every
    experiment it serves, so each call exports only the records since its
    own mark (the segment) plus the registry's *cumulative* state tagged
    with its mutation count -- the parent keeps the highest-count export
    per worker, which is that worker's complete contribution.
    """
    assert _WORKER_STUDY is not None, "pool initializer did not run"
    obs = _WORKER_STUDY.obs
    if not obs.enabled:
        return _run_isolated(experiment_id, _WORKER_STUDY), None, None, 0, 0
    mark = obs.tracer.mark()
    result = _run_isolated(experiment_id, _WORKER_STUDY)
    segment = obs.tracer.export_segment(mark)
    return result, segment, obs.metrics.export(), obs.metrics.op_count, os.getpid()


def _merge_worker_traces(
    obs: Observability, outputs: list[tuple]
) -> None:
    """Fold worker trace segments and metrics into the parent study's obs.

    Worker pids are normalised to ``w0``, ``w1``, ... in first-seen
    declaration order, and segments are imported in declaration order, so
    the merged trace depends on the scheduler only through which pid ran
    which experiment -- not through timing (docs/OBSERVABILITY.md).
    """
    workers: dict[int, str] = {}
    best_metrics: dict[int, tuple[int, list[dict]]] = {}
    for _, segment, metrics_export, op_count, token in outputs:
        label = workers.setdefault(token, f"w{len(workers)}")
        if segment:
            obs.tracer.import_segment(segment, worker=label)
        if metrics_export:
            seen = best_metrics.get(token)
            if seen is None or op_count > seen[0]:
                best_metrics[token] = (op_count, metrics_export)
    for token in sorted(best_metrics, key=lambda pid: workers[pid]):
        obs.metrics.merge(best_metrics[token][1])


def run_all(
    study: MeasurementStudy | None = None,
    parallel: int | None = None,
    isolate_errors: bool = True,
) -> list[ExperimentResult]:
    """Run every experiment, in declaration order.

    ``parallel=N`` (N >= 2) uses a process pool of N workers.  When the
    study has a ``cache_dir`` the workers share its artifact cache, so
    the ecosystem is generated at most once across the pool.
    """
    study = study or MeasurementStudy()
    order = list(ALL_EXPERIMENTS)
    if parallel is None or parallel <= 1:
        if isolate_errors:
            return [_run_isolated(eid, study) for eid in order]
        return [_run_raw(eid, study) for eid in order]

    workers = min(parallel, len(order), os.cpu_count() or 1)
    cache_dir = str(study.cache_dir) if study.cache_dir is not None else None
    if cache_dir is not None:
        # Warm the corpus store before spawning workers: the parent pays
        # for (possibly sharded) generation once and each worker then
        # loads the corpus out-of-core instead of rebuilding it.  When
        # the store is already warm the parent deliberately does NOT
        # materialise the ecosystem: workers read the file themselves,
        # and a small parent heap keeps forking the pool cheap.
        from repro.scan.datastore import ArtifactCache

        cache = ArtifactCache(study.cache_dir, obs=study.obs)
        if not cache.has_ecosystem(study.calibration):
            study.ecosystem
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            study.calibration,
            cache_dir,
            study.fault_profile,
            study.fault_seed,
            study.obs.enabled,
        ),
    ) as pool:
        # map() preserves submission order, so results come back in the
        # same order the sequential path produces them.
        outputs = list(pool.map(_run_in_worker, order))
    results = [output[0] for output in outputs]
    if study.obs.enabled:
        _merge_worker_traces(study.obs, outputs)
    return results


def main() -> None:  # pragma: no cover - CLI convenience
    study = MeasurementStudy()
    for result in run_all(study):
        print(result.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
