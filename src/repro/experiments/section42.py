"""§4.2: reasons for revocation.

The paper repeats Zhang et al.'s [52] methodology: extract the CRL reason
code for every revocation and conclude that reason codes are mostly
absent and "should likely be viewed with caution" -- while still being
the basis of Google's CRLSet admission rule.
"""

from __future__ import annotations

from collections import Counter

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage
from repro.revocation.reason import is_crlset_eligible

EXPERIMENT_ID = "section42"
TITLE = "Reasons for revocation (paper §4.2)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "collect_revocations"):
        revocations = [
            leaf for leaf in study.ecosystem.leaves if leaf.is_revoked
        ]
    counts = Counter(
        "(no reason code)" if leaf.revocation_reason is None
        else leaf.revocation_reason.label
        for leaf in revocations
    )
    total = len(revocations)
    rows = [
        (label, count, f"{count / total:.1%}")
        for label, count in counts.most_common()
    ]
    rendered = format_table(
        ["reason code", "revocations", "fraction"],
        rows,
        title=f"reason codes across {total:,} revocations",
    )
    eligible = sum(
        1 for leaf in revocations if is_crlset_eligible(leaf.revocation_reason)
    )
    rendered += (
        f"\n\nCRLSet-eligible (no reason / Unspecified / KeyCompromise / "
        f"CACompromise / AACompromise): {eligible / total:.1%}"
    )

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={"counts": dict(counts), "total": total},
    )
    no_reason = counts.get("(no reason code)", 0) / total
    result.compare(
        "most revocations carry no reason code",
        "the vast majority",
        f"{no_reason:.0%}",
        shape_holds=no_reason > 0.5,
    )
    result.compare(
        "reason codes admit most entries to CRLSets",
        "the admission rule filters little",
        f"{eligible / total:.0%} eligible",
        shape_holds=eligible / total > 0.7,
    )
    return result
