"""Figure 10: vulnerability windows around CRLSet membership."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import render_cdf
from repro.core.stats import Cdf
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig10"
TITLE = "Days of vulnerability: appearance lag and early removal (Figure 10)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "crlset_dynamics"):
        dynamics = study.crlset_dynamics()
    targets = study.targets

    appear = Cdf.from_values(float(d) for d in dynamics.days_to_appear)
    removal = Cdf.from_values(
        float(d) for d in dynamics.removal_before_expiry_days
    )
    rendered = (
        render_cdf(appear, title="days from revocation to CRLSet appearance",
                   value_format="{:.0f}")
        + "\n\n"
        + render_cdf(removal,
                     title="days between CRLSet removal and certificate expiry",
                     value_format="{:.0f}")
        + f"\n\nappearance cases n={len(dynamics.days_to_appear)}, "
        f"early-removal cases n={len(dynamics.removal_before_expiry_days)}, "
        f"never appeared n={dynamics.never_appeared_count}"
    )

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "days_to_appear": dynamics.days_to_appear,
            "removal_before_expiry": dynamics.removal_before_expiry_days,
        },
    )
    within1 = dynamics.appear_within(1)
    within2 = dynamics.appear_within(2)
    result.compare(
        "revocations appear within 1 day",
        f"{targets.days_to_appear_within_one_day:.0%}",
        f"{within1:.0%}", shape_holds=0.4 <= within1 <= 0.85,
    )
    result.compare(
        "revocations appear within 2 days",
        f"{targets.days_to_appear_within_two_days:.0%}",
        f"{within2:.0%}", shape_holds=within2 >= 0.8,
    )
    result.compare(
        "entries removed long before expiry",
        f"median {targets.median_removal_before_expiry_days:.0f} days",
        f"median {dynamics.median_removal_before_expiry:.0f} days",
        shape_holds=dynamics.median_removal_before_expiry > 60,
    )
    return result
