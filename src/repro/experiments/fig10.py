"""Figure 10: vulnerability windows around CRLSet membership."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table, render_cdf
from repro.core.stats import Cdf
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig10"
TITLE = "Days of vulnerability: appearance lag and early removal (Figure 10)"


def mechanism_window_table(study: MeasurementStudy) -> str:
    """Mean/median vulnerability window per registered mechanism.

    The sweep comes from the study's mechanism suite (registry order,
    docs/MECHANISMS.md) -- never a hard-coded mechanism list -- so new
    mechanisms show up here without touching this module.
    """
    end = study.calibration.measurement_end
    revoked = [
        leaf
        for leaf in study.ecosystem.leaves
        if leaf.revoked_at is not None and leaf.revoked_at <= end
    ]
    rows = []
    for mechanism in study.mechanism_suite:
        windows = sorted(
            mechanism.vulnerability_window_days(leaf) for leaf in revoked
        )
        mean = sum(windows) / len(windows) if windows else 0.0
        median = windows[len(windows) // 2] if windows else 0.0
        rows.append(
            (
                mechanism.name,
                f"{mechanism.update_model().staleness_window_days:.1f}",
                f"{mean:.1f}",
                f"{median:.1f}",
            )
        )
    return format_table(
        ["mechanism", "staleness (days)", "mean window", "median window"],
        rows,
        title=f"vulnerability window per mechanism ({len(revoked)} revoked certs)",
    )


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "crlset_dynamics"):
        dynamics = study.crlset_dynamics()
    targets = study.targets

    appear = Cdf.from_values(float(d) for d in dynamics.days_to_appear)
    removal = Cdf.from_values(
        float(d) for d in dynamics.removal_before_expiry_days
    )
    rendered = (
        render_cdf(appear, title="days from revocation to CRLSet appearance",
                   value_format="{:.0f}")
        + "\n\n"
        + render_cdf(removal,
                     title="days between CRLSet removal and certificate expiry",
                     value_format="{:.0f}")
        + f"\n\nappearance cases n={len(dynamics.days_to_appear)}, "
        f"early-removal cases n={len(dynamics.removal_before_expiry_days)}, "
        f"never appeared n={dynamics.never_appeared_count}"
        + "\n\n"
        + mechanism_window_table(study)
    )

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "days_to_appear": dynamics.days_to_appear,
            "removal_before_expiry": dynamics.removal_before_expiry_days,
        },
    )
    within1 = dynamics.appear_within(1)
    within2 = dynamics.appear_within(2)
    result.compare(
        "revocations appear within 1 day",
        f"{targets.days_to_appear_within_one_day:.0%}",
        f"{within1:.0%}", shape_holds=0.4 <= within1 <= 0.85,
    )
    result.compare(
        "revocations appear within 2 days",
        f"{targets.days_to_appear_within_two_days:.0%}",
        f"{within2:.0%}", shape_holds=within2 >= 0.8,
    )
    result.compare(
        "entries removed long before expiry",
        f"median {targets.median_removal_before_expiry_days:.0f} days",
        f"median {dynamics.median_removal_before_expiry:.0f} days",
        shape_holds=dynamics.median_removal_before_expiry > 60,
    )
    return result
