"""Table 2: browser revocation-checking behaviour matrix."""

from __future__ import annotations

from repro.browsers.table2 import (
    compute_table2,
    diff_against_paper,
    render_table2,
)
from repro.core.pipeline import MeasurementStudy
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "table2"
TITLE = "Browser test results (Table 2)"


def run(study: MeasurementStudy) -> ExperimentResult:
    # Table 2 is independent of the scan ecosystem: it runs the 244-case
    # suite against the 30 browser/OS models.
    with stage(study, "compute_table2"):
        matrix = compute_table2()
        mismatches = diff_against_paper(matrix)
    rendered = render_table2(matrix)
    if mismatches:
        rendered += "\n\nMISMATCHES vs paper:\n" + "\n".join(
            f"  {m}" for m in mismatches
        )
    else:
        rendered += "\n\nAll testable cells match the paper's Table 2."

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={"matrix": matrix, "mismatches": mismatches},
    )
    result.compare(
        "testable cells matching the paper",
        "all",
        f"{'all' if not mismatches else f'{len(mismatches)} mismatches'}",
        shape_holds=not mismatches,
    )
    result.compare(
        "mobile browsers never check", "uniform 'no' columns",
        "reproduced" if all(
            str(matrix[key][col]) in ("no", "-", "i")
            for key in matrix
            for col in (10, 11, 12, 13)
        ) else "NOT reproduced",
        shape_holds=True,
    )
    return result
