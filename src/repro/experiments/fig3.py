"""Figure 3 + §4.3: OCSP Stapling support and repeated-probe measurement."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table, render_series
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig3"
TITLE = "OCSP Stapling deployment and probe experiment (Figure 3, §4.3)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "stapling_summary"):
        summary = study.stapling_summary
    with stage(study, "stapling_probes"):
        probes = study.stapling_probes()
    targets = study.targets

    probe_rendered = render_series(
        [
            (f"probe {i + 1}", fraction)
            for i, fraction in enumerate(probes.observed_fraction)
        ],
        title="fraction of stapling-capable servers observed stapling",
        value_format="{:.3f}",
    )
    stats_rendered = format_table(
        ["metric", "paper", "measured"],
        [
            ("servers supporting stapling",
             f"{targets.servers_supporting_stapling:.2%}",
             f"{summary.server_fraction:.2%}"),
            ("certs with >=1 stapling server",
             f"{targets.certs_with_any_stapling_server:.2%}",
             f"{summary.cert_any_fraction:.2%}"),
            ("certs with all servers stapling",
             f"{targets.certs_with_all_stapling_servers:.2%}",
             f"{summary.cert_all_fraction:.2%}"),
            ("EV certs with >=1 stapling server",
             f"{targets.ev_certs_with_any_stapling_server:.2%}",
             f"{summary.ev_any_fraction:.2%}"),
            ("EV certs with all servers stapling",
             f"{targets.ev_certs_with_all_stapling_servers:.2%}",
             f"{summary.ev_all_fraction:.2%}"),
            ("single-probe underestimate",
             f"~{targets.single_probe_underestimate:.0%}",
             f"{probes.single_probe_underestimate:.1%}"),
        ],
    )
    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        probe_rendered + "\n\n" + stats_rendered,
        data={
            "summary": summary,
            "probe_fractions": probes.observed_fraction,
        },
    )
    result.compare(
        "stapling is rare (servers)",
        f"{targets.servers_supporting_stapling:.1%}",
        f"{summary.server_fraction:.1%}",
        shape_holds=summary.server_fraction < 0.08,
    )
    result.compare(
        "certs any-stapling",
        f"{targets.certs_with_any_stapling_server:.1%}",
        f"{summary.cert_any_fraction:.1%}",
        shape_holds=0.02 <= summary.cert_any_fraction <= 0.09,
    )
    result.compare(
        "EV staples less than overall",
        "3.15% vs 5.19%",
        f"{summary.ev_any_fraction:.1%} vs {summary.cert_any_fraction:.1%}",
        shape_holds=summary.ev_any_fraction < summary.cert_any_fraction,
    )
    result.compare(
        "single-probe underestimate",
        f"~{targets.single_probe_underestimate:.0%}",
        f"{probes.single_probe_underestimate:.0%}",
        shape_holds=0.10 <= probes.single_probe_underestimate <= 0.25,
    )
    result.compare(
        "probe curve rises",
        "monotone toward 1.0",
        f"{probes.observed_fraction[0]:.2f} -> {probes.observed_fraction[-1]:.2f}",
        shape_holds=probes.observed_fraction[-1] > probes.observed_fraction[0],
    )
    return result
